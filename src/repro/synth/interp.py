"""Symbolic interpretation of the synthesizable subset.

This is the core of the OSSS *Synthesizer*: process and method bodies are
executed symbolically — locals and object members become RTL expressions
over carrier reads — and the OO constructs resolve exactly as the paper's
§8 describes:

* class member access becomes part-selects of the object's packed state
  vector (Fig. 7's ``_this_`` parameter);
* method calls inline the callee's resolved body at the call site, so
  classes and templates add **no** logic (claim R3);
* ``if``/``else`` without waits folds into multiplexers;
* SystemC signal semantics are preserved: a signal read always returns the
  *committed* value even after a write in the same activation, while object
  members read back immediately (C++ semantics).
"""

from __future__ import annotations

import ast
from typing import Any, Callable

from repro.osss.hwclass import HwClass
from repro.osss.state_layout import FieldSlot
from repro.rtl.ir import (
    BinOp,
    Concat,
    Const,
    Expr,
    Mux,
    Read,
    Register,
    Resize,
    ShiftConst,
    ShiftDyn,
    Slice,
    UnaryOp,
)
from repro.synth.common import (
    UNDEFINED,
    ObjectHandle,
    Static,
    SynthesisError,
    Undefined,
    is_power_of_two,
)
from repro.types.spec import TypeSpec, bit, bits, signed, spec_of, unsigned

Binding = Any  # Expr | Static | ObjectHandle | Undefined

_MISSING = object()


class _NotConstant(Exception):
    """Raised by the constant-folding valuation on any carrier read."""


def _no_carriers(carrier) -> int:
    raise _NotConstant(carrier)


class SignalRef:
    """A port or signal binding resolved from a module attribute."""

    __slots__ = ("signal", "direction", "name")

    def __init__(self, signal, direction: str, name: str) -> None:
        self.signal = signal
        self.direction = direction  # "in" | "out" | "internal"
        self.name = name

    def __repr__(self) -> str:
        return f"SignalRef({self.name}, {self.direction})"


class SharedPortRef:
    """A shared-object client port binding (``yield from p.call(...)``)."""

    __slots__ = ("client_port", "name")

    def __init__(self, client_port, name: str) -> None:
        self.client_port = client_port
        self.name = name

    def __repr__(self) -> str:
        return f"SharedPortRef({self.name})"


class PathEnv:
    """Mutable symbolic state along one execution path."""

    __slots__ = ("locals", "pending", "written")

    def __init__(self) -> None:
        self.locals: dict[str, Binding] = {}
        #: carrier uid -> pending next value
        self.pending: dict[int, Expr] = {}
        #: carrier uid -> Register (so the FSM can fold writes later)
        self.written: dict[int, Register] = {}

    def fork(self) -> "PathEnv":
        env = PathEnv()
        env.locals = dict(self.locals)
        env.pending = dict(self.pending)
        env.written = dict(self.written)
        return env

    def write_carrier(self, carrier: Register, value: Expr) -> None:
        self.pending[carrier.uid] = value
        self.written[carrier.uid] = carrier


class ReturnValue:
    """Signals a tail-position return out of exec_block."""

    __slots__ = ("binding",)

    def __init__(self, binding: Binding) -> None:
        self.binding = binding


class Interpreter:
    """Evaluates expressions and wait-free statement blocks symbolically.

    The *context* supplies name resolution and carrier services; see
    :class:`repro.synth.modulegen.ModuleContext`.
    """

    MAX_UNROLL = 4096

    def __init__(self, context) -> None:
        self.ctx = context
        self._call_stack: list[tuple[type, str]] = []

    # ==================================================================
    # bindings and coercions
    # ==================================================================
    def const_of_value(self, value: Any, node: ast.AST) -> Expr:
        """A hardware value → Const expression."""
        spec = spec_of(value)
        return Const(spec, spec.to_raw(value))

    def materialize(self, binding: Binding, spec: TypeSpec,
                    node: ast.AST) -> Expr:
        """Turn a binding into an Expr of exactly *spec*."""
        if isinstance(binding, Static):
            value = binding.value
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, int):
                try:
                    return self.const_of_value(value, node)
                except TypeError:
                    raise SynthesisError(
                        f"cannot use constant {value!r} as hardware value",
                        node, code="OSS102",
                    )
            if value < 0 and spec.kind not in ("signed", "fixed"):
                raise SynthesisError(
                    f"negative constant {value} for {spec.describe()}", node,
                    code="OSS102",
                )
            return Const(spec, value & ((1 << spec.width) - 1))
        if isinstance(binding, Expr):
            if binding.spec.width != spec.width:
                raise SynthesisError(
                    f"width mismatch: expression is {binding.spec.width} "
                    f"bits, target is {spec.describe()}; use .resized()",
                    node, code="OSS111",
                )
            if binding.spec != spec:
                return Resize(binding, spec)
            return binding
        if isinstance(binding, Undefined):
            raise SynthesisError(
                "value may be undefined on some path", node, code="OSS112"
            )
        raise SynthesisError(
            f"cannot use {binding!r} as a hardware value", node
        )

    def as_expr(self, binding: Binding, node: ast.AST,
                like: Expr | None = None) -> Expr:
        """Binding → Expr; statics adopt the spec of *like* when given."""
        if isinstance(binding, Expr):
            return binding
        if isinstance(binding, Static):
            value = binding.value
            if isinstance(value, bool):
                return Const(bit(), int(value))
            if isinstance(value, int):
                if like is not None:
                    return self.materialize(binding, like.spec, node)
                width = max(1, value.bit_length() + (1 if value < 0 else 0))
                kind = signed(width + 1) if value < 0 else unsigned(width)
                return Const(kind, value & ((1 << kind.width) - 1))
            try:
                return self.const_of_value(value, node)
            except TypeError:
                pass
        raise SynthesisError(f"expected a hardware value, got {binding!r}",
                             node)

    @staticmethod
    def fold_const(expr: Expr) -> Expr:
        """Evaluate an expression with no carrier reads down to a Const."""
        if isinstance(expr, Const):
            return expr
        try:
            raw = expr.evaluate(_no_carriers)
        except _NotConstant:
            return expr
        except RecursionError:
            raise SynthesisError(
                "expression grows without bound; is a loop missing a "
                "yield (wait)?", code="OSS103"
            )
        return Const(expr.spec, raw)

    def as_condition(self, binding: Binding, node: ast.AST) -> Binding:
        """Binding → Static(bool) or 1-bit Expr."""
        if isinstance(binding, Static):
            return Static(bool(binding.value))
        if isinstance(binding, Expr):
            binding = self.fold_const(binding)
            if isinstance(binding, Const):
                return Static(bool(binding.raw))
            if binding.width == 1:
                return binding
            raise SynthesisError(
                "condition must be 1 bit; compare explicitly "
                "(e.g. x.ne(0) / x != 0)",
                node, code="OSS110",
            )
        raise SynthesisError(f"invalid condition {binding!r}", node,
                             code="OSS110")

    @staticmethod
    def as_static_int(binding: Binding, node: ast.AST, what: str) -> int:
        if isinstance(binding, Static) and isinstance(binding.value, (int, bool)):
            return int(binding.value)
        raise SynthesisError(f"{what} must be a compile-time constant", node)

    # ==================================================================
    # object state access (paper §8 resolution)
    # ==================================================================
    def object_state(self, env: PathEnv, handle: ObjectHandle) -> Expr:
        return env.pending.get(handle.carrier.uid, Read(handle.carrier))

    def member_read(self, env: PathEnv, handle: ObjectHandle,
                    name: str, node: ast.AST) -> Expr:
        slot = handle.layout.slots.get(name)
        if slot is None:
            raise SynthesisError(
                f"{handle.cls.__name__} has no member {name!r}", node,
                code="OSS204",
            )
        state = self.object_state(env, handle)
        if slot.offset == 0 and slot.width == state.width:
            sliced = state
        else:
            sliced = Slice(state, slot.msb, slot.offset)
        if sliced.spec != slot.spec:
            return Resize(sliced, slot.spec)
        return sliced

    def member_write(self, env: PathEnv, handle: ObjectHandle, name: str,
                     value: Binding, node: ast.AST) -> None:
        slot = handle.layout.slots.get(name)
        if slot is None:
            raise SynthesisError(
                f"{handle.cls.__name__} has no member {name!r}", node,
                code="OSS204",
            )
        expr = self.materialize(value, slot.spec, node)
        state = self.object_state(env, handle)
        new_state = self._field_insert(state, slot, expr)
        env.write_carrier(handle.carrier, new_state)

    @staticmethod
    def _field_insert(state: Expr, slot: FieldSlot, value: Expr) -> Expr:
        total = state.width
        parts: list[Expr] = []
        if slot.msb < total - 1:
            parts.append(Slice(state, total - 1, slot.msb + 1))
        parts.append(value if value.spec.kind == "bv" else
                     Resize(value, bits(value.width)))
        if slot.offset > 0:
            parts.append(Slice(state, slot.offset - 1, 0))
        merged = parts[0] if len(parts) == 1 else Concat(parts)
        return Resize(merged, unsigned(total))

    # ==================================================================
    # expression evaluation
    # ==================================================================
    def eval(self, node: ast.AST, env: PathEnv) -> Binding:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise SynthesisError(
                f"{type(node).__name__} is outside the synthesizable subset",
                node, code="OSS101",
            )
        return method(node, env)

    # ---------------- leaves ----------------
    def _eval_Constant(self, node: ast.Constant, env: PathEnv) -> Binding:
        if isinstance(node.value, (int, bool, str)) or node.value is None:
            return Static(node.value)
        raise SynthesisError(
            f"constant {node.value!r} is not synthesizable", node,
            code="OSS102",
        )

    def _eval_Name(self, node: ast.Name, env: PathEnv) -> Binding:
        name = node.id
        if name in env.locals:
            value = env.locals[name]
            if isinstance(value, Undefined):
                raise SynthesisError(
                    f"{name!r} may be undefined on some path", node,
                    code="OSS112",
                )
            return value
        if name == "self":
            module = self.ctx.module_self()
            if module is not None:
                return Static(module)
        fallback = self.ctx.local_register(name)
        if fallback is not None:
            return Read(fallback)
        scope = self.ctx.static_scope()
        if name in scope:
            return Static(scope[name])
        raise SynthesisError(f"unknown name {name!r}", node, code="OSS116")

    def _eval_Attribute(self, node: ast.Attribute, env: PathEnv) -> Binding:
        base = self.eval(node.value, env)
        attr = node.attr
        from repro.synth.polygen import PolyHandle

        if isinstance(base, PolyHandle):
            if attr in ("assign", "call") or self.ctx.library.has_method(
                base.poly.base, attr
            ):
                return Static(("polymethod", base, attr))
            raise SynthesisError(
                f"PolyVar({base.poly.base.__name__}) has no interface "
                f"method {attr!r}",
                node, code="OSS207",
            )
        if isinstance(base, ObjectHandle):
            if attr in base.layout.slots:
                return self.member_read(env, base, attr, node)
            if self.ctx.library.has_method(base.cls, attr):
                return Static(("boundmethod", base, attr))
            class_attr = getattr(base.cls, attr, _MISSING)
            if isinstance(class_attr, (int, bool, str, type)):
                # Template parameters and class constants (paper Fig. 3).
                return Static(class_attr)
            return self.member_read(env, base, attr, node)
        if isinstance(base, Static):
            value = base.value
            if value is self.ctx.module_self():
                return self.ctx.resolve_attr(attr, env, node)
            from repro.hdl.module import Module as _HdlModule, Port as _Port
            from repro.hdl.signal import Signal as _Signal

            if isinstance(value, _HdlModule):
                return self.ctx.resolve_module_attr(value, attr, node)
            if isinstance(value, _Port):
                ref = SignalRef(value.signal, value.direction, value.name)
                return Static(("sigmethod", ref, attr))
            if isinstance(value, _Signal):
                ref = SignalRef(value, "internal", value.name)
                return Static(("sigmethod", ref, attr))
            if isinstance(value, type):
                return Static(getattr(value, attr))
            if hasattr(value, attr):
                return Static(getattr(value, attr))
        if isinstance(base, Expr):
            if attr == "width":
                return Static(base.width)
            if attr in self._VALUE_METHODS:
                return Static(("exprmethod", base, attr))
        if isinstance(base, (SignalRef, SharedPortRef)):
            # e.g. self.port.read — handled in Call; expose as bound pair
            return Static(("sigmethod", base, attr))
        raise SynthesisError(f"cannot access attribute {attr!r}", node,
                             code="OSS116")

    # ---------------- operators ----------------
    _BIN_OPS = {
        ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul",
        ast.BitAnd: "and", ast.BitOr: "or", ast.BitXor: "xor",
    }

    def _eval_BinOp(self, node: ast.BinOp, env: PathEnv) -> Binding:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        op_type = type(node.op)
        if isinstance(left, Static) and isinstance(right, Static):
            return self._static_binop(node, left.value, right.value)
        if op_type in (ast.LShift, ast.RShift):
            return self._shift(node, left, right)
        if op_type in (ast.FloorDiv, ast.Mod):
            return self._divmod(node, left, right)
        if op_type not in self._BIN_OPS:
            raise SynthesisError(
                f"operator {op_type.__name__} is not synthesizable", node,
                code="OSS101",
            )
        a = self.as_expr(left, node, like=right if isinstance(right, Expr) else None)
        b = self.as_expr(right, node, like=a)
        return self.fold_const(BinOp(self._BIN_OPS[op_type], a, b))

    def _static_binop(self, node: ast.BinOp, a: Any, b: Any) -> Static:
        import operator as op

        table = {
            ast.Add: op.add, ast.Sub: op.sub, ast.Mult: op.mul,
            ast.FloorDiv: op.floordiv, ast.Mod: op.mod,
            ast.LShift: op.lshift, ast.RShift: op.rshift,
            ast.BitAnd: op.and_, ast.BitOr: op.or_, ast.BitXor: op.xor,
            ast.Pow: op.pow,
        }
        fn = table.get(type(node.op))
        if fn is None:
            raise SynthesisError(
                f"operator {type(node.op).__name__} is not synthesizable",
                node, code="OSS101",
            )
        return Static(fn(a, b))

    def _shift(self, node: ast.BinOp, left: Binding,
               right: Binding) -> Binding:
        is_left = isinstance(node.op, ast.LShift)
        a = self.as_expr(left, node)
        if isinstance(right, Static):
            return ShiftConst(a, int(right.value), left=is_left)
        amount = self.as_expr(right, node)
        return ShiftDyn(a, amount, left=is_left)

    def _divmod(self, node: ast.BinOp, left: Binding,
                right: Binding) -> Binding:
        a = self.as_expr(left, node)
        divisor = self.as_static_int(right, node, "divisor")
        if not is_power_of_two(divisor):
            raise SynthesisError(
                "division/modulo only by constant powers of two is "
                "synthesizable; use a sequential divider otherwise",
                node, code="OSS105",
            )
        if a.spec.kind in ("signed", "fixed"):
            raise SynthesisError(
                "signed //, % are not synthesizable (floor vs shift "
                "semantics differ); convert to unsigned first",
                node, code="OSS105",
            )
        shift = divisor.bit_length() - 1
        if isinstance(node.op, ast.FloorDiv):
            return ShiftConst(a, shift, left=False)
        mask = Const(a.spec, divisor - 1)
        return BinOp("and", a, mask)

    _CMP_OPS = {
        ast.Eq: "eq", ast.NotEq: "ne", ast.Lt: "lt", ast.LtE: "le",
        ast.Gt: "gt", ast.GtE: "ge",
    }

    def _eval_Compare(self, node: ast.Compare, env: PathEnv) -> Binding:
        if len(node.ops) != 1:
            raise SynthesisError("chained comparisons are not synthesizable",
                                 node, code="OSS106")
        left = self.eval(node.left, env)
        right = self.eval(node.comparators[0], env)
        op_name = self._CMP_OPS.get(type(node.ops[0]))
        if op_name is None:
            raise SynthesisError(
                f"comparison {type(node.ops[0]).__name__} not synthesizable",
                node, code="OSS101",
            )
        if isinstance(left, Static) and isinstance(right, Static):
            import operator as op

            fn = {"eq": op.eq, "ne": op.ne, "lt": op.lt, "le": op.le,
                  "gt": op.gt, "ge": op.ge}[op_name]
            return Static(fn(left.value, right.value))
        if isinstance(left, ObjectHandle) or isinstance(right, ObjectHandle):
            return self._object_compare(node, env, left, right, op_name)
        a = self.as_expr(left, node,
                         like=right if isinstance(right, Expr) else None)
        b = self.as_expr(right, node, like=a)
        folded = self.fold_const(BinOp(op_name, a, b))
        if isinstance(folded, Const):
            return Static(bool(folded.raw))
        return folded

    def _object_compare(self, node: ast.Compare, env: PathEnv,
                        left: Binding, right: Binding,
                        op_name: str) -> Binding:
        if op_name not in ("eq", "ne"):
            raise SynthesisError("objects only support == and !=", node)
        if not (isinstance(left, ObjectHandle)
                and isinstance(right, ObjectHandle)):
            raise SynthesisError("cannot compare object with non-object",
                                 node)
        # User-overloaded operator == (paper Fig. 11) takes precedence.
        if "__eq__" in vars(left.cls) or any(
            "__eq__" in vars(k) for k in left.cls.__mro__
            if issubclass(k, HwClass) and k is not HwClass
        ):
            info_cls = next(
                k for k in left.cls.__mro__
                if "__eq__" in vars(k)
            )
            if issubclass(info_cls, HwClass) and info_cls is not HwClass:
                result = self.inline_method(
                    env, left, "__eq__", [right], node
                )
                expr = self.as_expr(result, node)
                if op_name == "ne":
                    return UnaryOp("not", expr)
                return expr
        a = self.object_state(env, left)
        b = self.object_state(env, right)
        return BinOp(op_name, a, b)

    def _eval_BoolOp(self, node: ast.BoolOp, env: PathEnv) -> Binding:
        op_name = "and" if isinstance(node.op, ast.And) else "or"
        result: Binding | None = None
        for value_node in node.values:
            value = self.as_condition(self.eval(value_node, env), value_node)
            if isinstance(value, Static):
                if op_name == "and" and not value.value:
                    return Static(False)
                if op_name == "or" and value.value:
                    return Static(True)
                continue  # neutral element
            if result is None:
                result = value
            else:
                result = BinOp(op_name, result, value)
        return result if result is not None else Static(op_name == "and")

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: PathEnv) -> Binding:
        operand = self.eval(node.operand, env)
        if isinstance(node.op, ast.Not):
            cond = self.as_condition(operand, node)
            if isinstance(cond, Static):
                return Static(not cond.value)
            return UnaryOp("not", cond)
        if isinstance(operand, Static):
            value = operand.value
            if isinstance(node.op, ast.USub):
                return Static(-value)
            if isinstance(node.op, ast.Invert):
                return Static(~value)
            if isinstance(node.op, ast.UAdd):
                return Static(+value)
        expr = self.as_expr(operand, node)
        if isinstance(node.op, ast.USub):
            return UnaryOp("neg", expr)
        if isinstance(node.op, ast.Invert):
            return UnaryOp("invert", expr)
        raise SynthesisError("unary + is not synthesizable on hardware "
                             "values", node, code="OSS101")

    def _eval_IfExp(self, node: ast.IfExp, env: PathEnv) -> Binding:
        cond = self.as_condition(self.eval(node.test, env), node.test)
        if isinstance(cond, Static):
            return self.eval(node.body if cond.value else node.orelse, env)
        a = self.eval(node.body, env)
        b = self.eval(node.orelse, env)
        a_expr = self.as_expr(a, node, like=b if isinstance(b, Expr) else None)
        b_expr = self.as_expr(b, node, like=a_expr)
        return Mux(cond, a_expr, b_expr)

    def _eval_Subscript(self, node: ast.Subscript, env: PathEnv) -> Binding:
        base = self.eval(node.value, env)
        index = self.eval(node.slice, env)
        if isinstance(base, Static) and isinstance(base.value, type):
            # Template specialization: Cls[args]
            if isinstance(index, Static):
                args = index.value
                return Static(base.value[args])
            raise SynthesisError("template arguments must be constants",
                                     node, code="OSS205")
        if isinstance(base, Static) and isinstance(index, Static):
            return Static(base.value[index.value])
        expr = self.as_expr(base, node)
        bit_index = self.as_static_int(index, node, "bit index")
        if bit_index < 0:
            bit_index += expr.width
        return Slice(expr, bit_index, bit_index, as_bit=True)

    def _eval_Tuple(self, node: ast.Tuple, env: PathEnv) -> Binding:
        values = [self.eval(el, env) for el in node.elts]
        if all(isinstance(v, Static) for v in values):
            return Static(tuple(v.value for v in values))
        raise SynthesisError("tuples of hardware values are not "
                             "synthesizable", node, code="OSS113")

    # ==================================================================
    # calls
    # ==================================================================
    def _eval_Call(self, node: ast.Call, env: PathEnv) -> Binding:
        if node.keywords:
            raise SynthesisError("keyword arguments are not synthesizable",
                                 node, code="OSS107")
        func = self.eval(node.func, env)
        args = [self.eval(arg, env) for arg in node.args]
        return self.apply(func, args, env, node)

    def apply(self, func: Binding, args: list[Binding], env: PathEnv,
              node: ast.Call) -> Binding:
        if isinstance(func, Static):
            target = func.value
            if isinstance(target, tuple) and len(target) == 3:
                kind, base, name = target
                if kind == "boundmethod":
                    return self.inline_method(env, base, name, args, node)
                if kind == "sigmethod":
                    return self._signal_method(env, base, name, args, node)
                if kind == "exprmethod":
                    return self._value_method(env, base, name, args, node)
                if kind == "polymethod":
                    from repro.synth.polygen import poly_assign, poly_dispatch

                    if name == "assign":
                        if len(args) != 1:
                            raise SynthesisError("assign takes one object",
                                                 node)
                        poly_assign(self, env, base, args[0], node)
                        return Static(None)
                    if name == "call":
                        if not args or not (isinstance(args[0], Static)
                                            and isinstance(args[0].value,
                                                           str)):
                            raise SynthesisError(
                                "call() needs a literal method name", node
                            )
                        return poly_dispatch(self, env, base,
                                             args[0].value, args[1:], node)
                    return poly_dispatch(self, env, base, name, args, node)
            if isinstance(target, type):
                return self._construct(target, args, env, node)
            if target in (int, bool):
                return self._int_bool_cast(args, node)
            if target is len:
                arg = args[0]
                if isinstance(arg, Static) and hasattr(arg.value,
                                                       "__len__"):
                    return Static(len(arg.value))
                expr = self.as_expr(arg, node)
                return Static(expr.width)
            if target is isinstance:
                if len(args) != 2 or not isinstance(args[1], Static):
                    raise SynthesisError(
                        "isinstance() needs a class constant", node
                    )
                subject = args[0]
                classes = args[1].value
                if isinstance(subject, ObjectHandle):
                    return Static(
                        issubclass(subject.cls, classes)
                    )
                if isinstance(subject, Static):
                    return Static(isinstance(subject.value, classes))
                if isinstance(subject, Expr):
                    return Static(False)
                raise SynthesisError(
                    "isinstance() on this value is not synthesizable", node
                )
            if target is abs and len(args) == 1 and isinstance(args[0], Static):
                return Static(abs(args[0].value))
            if target is min and all(isinstance(a, Static) for a in args):
                return Static(min(a.value for a in args))
            if target is max and all(isinstance(a, Static) for a in args):
                return Static(max(a.value for a in args))
            if callable(target) and all(isinstance(a, Static) for a in args):
                # Pure compile-time helper call (e.g. spec constructors or
                # module configuration methods like port selectors).
                result = target(*[a.value for a in args])
                return Static(result)
        if isinstance(func, Expr):
            raise SynthesisError("hardware values are not callable", node)
        raise SynthesisError(f"call target {func!r} is not synthesizable",
                             node)

    def _int_bool_cast(self, args: list[Binding], node: ast.Call) -> Binding:
        if len(args) != 1:
            raise SynthesisError("int()/bool() take one argument", node)
        arg = args[0]
        if isinstance(arg, Static):
            return Static(int(arg.value))
        expr = self.as_expr(arg, node)
        if expr.width == 1:
            return expr
        raise SynthesisError(
            "bool()/int() of multi-bit values is ambiguous; use "
            ".reduce_or() or an explicit comparison",
            node, code="OSS110",
        )

    def _construct(self, target: type, args: list[Binding], env: PathEnv,
                   node: ast.Call) -> Binding:
        from repro.types.bitvector import BitVector
        from repro.types.integer import Signed, Unsigned
        from repro.types.logic import Bit

        if target is Bit:
            if not args:
                return Const(bit(), 0)
            arg = args[0]
            if isinstance(arg, Static):
                return Const(bit(), int(arg.value) & 1)
            expr = self.as_expr(arg, node)
            if expr.width != 1:
                raise SynthesisError("Bit() of a multi-bit value", node)
            return expr if expr.spec.kind == "bit" else Resize(expr, bit())
        if target in (Unsigned, Signed, BitVector):
            width = self.as_static_int(args[0], node, "width")
            spec = {
                Unsigned: unsigned, Signed: signed, BitVector: bits,
            }[target](width)
            if len(args) == 1:
                return Const(spec, 0)
            value = args[1]
            if isinstance(value, Static):
                return Const(spec,
                             int(value.value) & ((1 << width) - 1))
            expr = self.as_expr(value, node)
            if expr.width == width:
                return Resize(expr, spec)
            raise SynthesisError(
                "constructing a hardware value from a dynamic expression "
                "of different width is not synthesizable; use .resized()",
                node, code="OSS111",
            )
        if isinstance(target, type) and issubclass(target, HwClass):
            if args:
                raise SynthesisError(
                    "hardware-class constructors take no arguments "
                    "(parameterize with templates)",
                    node, code="OSS203",
                )
            handle = self.ctx.new_local_object(target, node)
            instance = target()
            initial = handle.layout.pack(instance)
            env.write_carrier(
                handle.carrier,
                Const(unsigned(handle.layout.total_width), initial.raw),
            )
            return handle
        raise SynthesisError(
            f"constructor {getattr(target, '__name__', target)!r} is not "
            "synthesizable",
            node, code="OSS203",
        )

    # -------------- value methods on expressions --------------
    def _signal_method(self, env: PathEnv, ref: Binding, name: str,
                       args: list[Binding], node: ast.Call) -> Binding:
        if isinstance(ref, SignalRef):
            if name == "read":
                return self.ctx.signal_read_expr(ref, node)
            if name == "write":
                if len(args) != 1:
                    raise SynthesisError("write() takes one value", node)
                self.ctx.signal_write(env, ref, args[0], node, self)
                return Static(None)
            raise SynthesisError(
                f"signal method {name!r} is not synthesizable", node
            )
        raise SynthesisError(
            "shared-object ports are only usable as "
            "'result = yield from port.call(...)'",
            node, code="OSS302",
        )

    _VALUE_METHODS = {
        "range", "bit", "concat", "resized", "to_unsigned", "to_signed",
        "as_unsigned", "as_signed", "as_bits", "to_bits", "reduce_or",
        "reduce_and", "reduce_xor", "with_bit", "with_range", "eq", "ne",
        "lt", "le", "gt", "ge",
    }

    def inline_method(self, env: PathEnv, base: Binding, name: str,
                      args: list[Binding], node: ast.Call) -> Binding:
        if isinstance(base, Expr):
            return self._value_method(env, base, name, args, node)
        if not isinstance(base, ObjectHandle):
            raise SynthesisError(f"cannot call method on {base!r}", node)
        if name in ("copy",):
            raise SynthesisError("object copy() is not synthesizable inside "
                                 "processes", node, code="OSS204")
        key = (base.cls, name)
        if key in self._call_stack:
            raise SynthesisError(
                f"recursive call of {base.cls.__name__}.{name} is not "
                "synthesizable",
                node, code="OSS201",
            )
        info = self.ctx.library.method(base.cls, name)
        defaults = info.defaults()
        if len(args) > len(info.params):
            raise SynthesisError(
                f"{base.cls.__name__}.{name} expects at most "
                f"{len(info.params)} argument(s), got {len(args)}",
                node,
            )
        full_args = list(args)
        for param in info.params[len(args):]:
            if param not in defaults:
                raise SynthesisError(
                    f"{base.cls.__name__}.{name}: missing argument "
                    f"{param!r}",
                    node,
                )
            full_args.append(Static(defaults[param]))
        saved_locals = env.locals
        env.locals = {"self": base}
        for param, value in zip(info.params, full_args):
            spec = info.param_specs.get(param)
            if spec == "static":
                if not isinstance(value, Static):
                    raise SynthesisError(
                        f"{base.cls.__name__}.{name}: parameter {param!r} "
                        "must be a compile-time constant",
                        node,
                    )
            elif spec is not None:
                value = self.materialize(value, spec, node)
            env.locals[param] = value
        self._call_stack.append(key)
        saved_scope = self.ctx.push_scope(info.func)
        try:
            result = self.exec_block(info.tree.body, env)
        finally:
            self._call_stack.pop()
            self.ctx.pop_scope(saved_scope)
            env.locals = saved_locals
        if isinstance(result, ReturnValue):
            value = result.binding
            if info.return_spec is not None and not isinstance(value, Static):
                value = self.materialize(value, info.return_spec, node)
            return value
        return Static(None)

    def _value_method(self, env: PathEnv, expr: Expr, name: str,
                      args: list[Binding], node: ast.Call) -> Binding:
        if name not in self._VALUE_METHODS:
            raise SynthesisError(
                f"method {name!r} on hardware values is not synthesizable",
                node,
            )
        if name == "range":
            hi = self.as_static_int(args[0], node, "range hi")
            lo = self.as_static_int(args[1], node, "range lo")
            return Slice(expr, hi, lo)
        if name == "bit":
            index = self.as_static_int(args[0], node, "bit index")
            return Slice(expr, index, index, as_bit=True)
        if name == "concat":
            low = self.as_expr(args[0], node)
            return Concat(
                [expr if expr.spec.kind == "bv" else Resize(expr, bits(expr.width)),
                 low if low.spec.kind == "bv" or low.spec.kind == "bit"
                 else Resize(low, bits(low.width))]
            )
        if name == "resized":
            width = self.as_static_int(args[0], node, "resize width")
            kind = expr.spec.kind
            if kind == "bit":
                kind = "unsigned"
            return Resize(expr, TypeSpec(kind, width,
                                         expr.spec.frac_bits
                                         if kind == "fixed" else 0))
        if name in ("to_unsigned", "as_unsigned"):
            return Resize(expr, unsigned(expr.width))
        if name in ("to_signed", "as_signed"):
            return Resize(expr, signed(expr.width))
        if name in ("as_bits", "to_bits"):
            return Resize(expr, bits(expr.width))
        if name in ("reduce_or", "reduce_and", "reduce_xor"):
            return UnaryOp(name, expr)
        if name == "with_bit":
            index = self.as_static_int(args[0], node, "bit index")
            value = self.materialize(args[1], bit(), node)
            slot = FieldSlot("bit", bit(), index)
            inserted = self._field_insert(
                expr if expr.spec.kind != "bit" else Resize(expr, bits(1)),
                slot, value,
            )
            return Resize(inserted, expr.spec)
        if name == "with_range":
            hi = self.as_static_int(args[0], node, "range hi")
            lo = self.as_static_int(args[1], node, "range lo")
            value = self.materialize(args[2], bits(hi - lo + 1), node)
            slot = FieldSlot("rng", bits(hi - lo + 1), lo)
            return Resize(self._field_insert(expr, slot, value), expr.spec)
        # comparisons-as-methods
        other = self.as_expr(args[0], node, like=expr)
        return BinOp(name, expr, other)

    # ==================================================================
    # statement blocks without waits
    # ==================================================================
    def exec_block(self, stmts: list[ast.stmt],
                   env: PathEnv) -> ReturnValue | None:
        for index, stmt in enumerate(stmts):
            is_last = index == len(stmts) - 1
            result = self.exec_stmt(stmt, env, tail=is_last)
            if isinstance(result, ReturnValue):
                # A definite return: any remaining statements are dead code.
                # (Conditional returns under a dynamic guard are restricted
                # to tail position inside _exec_if.)
                return result
        return None

    def exec_stmt(self, stmt: ast.stmt, env: PathEnv,
                  tail: bool = False) -> ReturnValue | None:
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return ReturnValue(Static(None))
            return ReturnValue(self.eval(stmt.value, env))
        if isinstance(stmt, (ast.Pass, ast.Assert)):
            return None
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Constant):
                return None  # docstring
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                raise SynthesisError(
                    "wait() inside a class method or combinational method "
                    "is not synthesizable",
                    stmt, code="OSS202",
                )
            self.eval(stmt.value, env)
            return None
        if isinstance(stmt, ast.Assign):
            self._do_assign(stmt.targets, stmt.value, env, stmt)
            return None
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                raise SynthesisError("declarations need an initializer",
                                     stmt, code="OSS101")
            self._do_assign([stmt.target], stmt.value, env, stmt)
            return None
        if isinstance(stmt, ast.AugAssign):
            synthetic = ast.BinOp(left=self._target_as_expr(stmt.target),
                                  op=stmt.op, right=stmt.value)
            ast.copy_location(synthetic, stmt)
            ast.fix_missing_locations(synthetic)
            self._do_assign([stmt.target], synthetic, env, stmt,
                            pre_evaluated=self.eval(synthetic, env))
            return None
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, env, tail)
        if isinstance(stmt, ast.For):
            self._exec_static_for(stmt, env)
            return None
        if isinstance(stmt, ast.While):
            raise SynthesisError(
                "while loops without wait() are not synthesizable here",
                stmt, code="OSS103",
            )
        raise SynthesisError(
            f"{type(stmt).__name__} is outside the synthesizable subset",
            stmt, code="OSS101",
        )

    @staticmethod
    def _target_as_expr(target: ast.expr) -> ast.expr:
        # AugAssign targets are expression contexts too; reuse the tree.
        import copy

        clone = copy.deepcopy(target)
        for sub in ast.walk(clone):
            if isinstance(sub, (ast.Name, ast.Attribute, ast.Subscript)):
                sub.ctx = ast.Load()
        return clone

    def _do_assign(self, targets: list[ast.expr], value_node: ast.expr,
                   env: PathEnv, stmt: ast.stmt,
                   pre_evaluated: Binding | None = None) -> None:
        if len(targets) != 1:
            raise SynthesisError("chained assignment is not synthesizable",
                                 stmt, code="OSS101")
        target = targets[0]
        value = (pre_evaluated if pre_evaluated is not None
                 else self.eval(value_node, env))
        if isinstance(target, ast.Name):
            self._assign_local(target.id, value, env, stmt)
            return
        if isinstance(target, ast.Attribute):
            base = self.eval(target.value, env)
            if isinstance(base, ObjectHandle):
                self.member_write(env, base, target.attr, value, stmt)
                return
            if isinstance(base, Static) and base.value is self.ctx.module_self():
                raise SynthesisError(
                    "assigning module attributes inside a process is not "
                    "synthesizable; use a signal",
                    stmt,
                )
        raise SynthesisError("unsupported assignment target", stmt,
                             code="OSS101")

    def _assign_local(self, name: str, value: Binding, env: PathEnv,
                      stmt: ast.stmt) -> None:
        if isinstance(value, (Static, ObjectHandle, Undefined)):
            env.locals[name] = value
            return
        if not isinstance(value, Expr):
            raise SynthesisError(f"cannot assign {value!r}", stmt)
        previous = env.locals.get(name)
        if previous is None:
            reg = self.ctx.local_register(name)
            if reg is not None:
                previous = Read(reg)
        if isinstance(previous, Expr) and previous.spec != value.spec:
            if previous.spec.width != value.spec.width:
                raise SynthesisError(
                    f"local {name!r} changes width "
                    f"({previous.spec.width} -> {value.spec.width}); "
                    "use .resized() to keep a fixed register width",
                    stmt, code="OSS111",
                )
            value = Resize(value, previous.spec)
        env.locals[name] = value

    # -------------- structured control flow (wait-free) --------------
    def _exec_if(self, stmt: ast.If, env: PathEnv,
                 tail: bool) -> ReturnValue | None:
        cond = self.as_condition(self.eval(stmt.test, env), stmt.test)
        if isinstance(cond, Static):
            branch = stmt.body if cond.value else stmt.orelse
            if not branch:
                return None
            return self.exec_block(branch, env)
        then_env = env.fork()
        else_env = env.fork()
        then_ret = self.exec_block(stmt.body, then_env)
        else_ret = (self.exec_block(stmt.orelse, else_env)
                    if stmt.orelse else None)
        if (then_ret is None) != (else_ret is None):
            raise SynthesisError(
                "either both or neither branch of a dynamic if may return",
                stmt, code="OSS109",
            )
        self.merge_into(env, cond, then_env, else_env, stmt)
        if then_ret is not None:
            if not tail:
                raise SynthesisError(
                    "returning inside a dynamic if is only synthesizable in "
                    "tail position",
                    stmt, code="OSS109",
                )
            a = self.as_expr(then_ret.binding, stmt,
                             like=else_ret.binding
                             if isinstance(else_ret.binding, Expr) else None)
            b = self.as_expr(else_ret.binding, stmt, like=a)
            return ReturnValue(Mux(cond, a, b))
        return None

    def merge_into(self, env: PathEnv, cond: Expr, then_env: PathEnv,
                   else_env: PathEnv, stmt: ast.stmt) -> None:
        """Fold two branch environments back into *env* with muxes."""
        # locals — in sorted order: set iteration follows the randomized
        # string hash, and the merge order decides downstream mux/register
        # emission order (reports must be byte-identical across processes).
        names = sorted(set(then_env.locals) | set(else_env.locals))
        merged_locals: dict[str, Binding] = {}
        for name in names:
            a = then_env.locals.get(name, env.locals.get(name))
            b = else_env.locals.get(name, env.locals.get(name))
            merged_locals[name] = self._merge_binding(cond, a, b, stmt, name)
        env.locals = merged_locals
        # carriers (int uids hash to themselves, but keep the order
        # explicit rather than relying on set internals)
        uids = sorted(set(then_env.pending) | set(else_env.pending))
        for uid in uids:
            carrier = then_env.written.get(uid) or else_env.written.get(uid)
            base = env.pending.get(uid, Read(carrier))
            a = then_env.pending.get(uid, base)
            b = else_env.pending.get(uid, base)
            if a is b:
                env.pending[uid] = a
            else:
                env.pending[uid] = Mux(cond, a, b)
            env.written[uid] = carrier

    def _merge_binding(self, cond: Expr, a: Binding, b: Binding,
                       stmt: ast.stmt, name: str) -> Binding:
        if a is None and b is None:
            return UNDEFINED

        def hold_side(x: Binding, other: Binding) -> Binding:
            if x is not None and not isinstance(x, Undefined):
                return x
            reg = self.ctx.local_register(name)
            if reg is not None:
                return Read(reg)
            if isinstance(other, Expr):
                # The local will persist in a register; the untaken side
                # holds the previous contents (matching generator locals
                # that survive across activations).
                reg = self.ctx.ensure_local_register(name, other.spec)
                return Read(reg)
            return UNDEFINED

        a = hold_side(a, b)
        b = hold_side(b, a)
        if isinstance(a, Undefined) or isinstance(b, Undefined):
            if isinstance(a, Undefined) and isinstance(b, Undefined):
                return UNDEFINED
            # Defined on one path only with no register backing: reading it
            # later is an error, but the assignment itself is fine.
            return UNDEFINED
        if isinstance(a, Static) and isinstance(b, Static):
            if a.value == b.value:
                return a
            if isinstance(a.value, (int, bool)) and isinstance(
                b.value, (int, bool)
            ):
                raise SynthesisError(
                    f"local {name!r} holds different compile-time constants "
                    "on the two branches; assign typed hardware values "
                    "instead",
                    stmt, code="OSS112",
                )
            raise SynthesisError(
                f"local {name!r} diverges at a dynamic branch", stmt,
                code="OSS112",
            )
        if isinstance(a, ObjectHandle) and isinstance(b, ObjectHandle):
            if a.carrier.uid == b.carrier.uid:
                return a
            raise SynthesisError(
                f"object variable {name!r} binds different objects on the "
                "two branches",
                stmt, code="OSS112",
            )
        a_expr = self.as_expr(a, stmt, like=b if isinstance(b, Expr) else None)
        b_expr = self.as_expr(b, stmt, like=a_expr)
        if a_expr is b_expr:
            return a_expr
        return Mux(cond, a_expr, b_expr)

    def _exec_static_for(self, stmt: ast.For, env: PathEnv) -> None:
        if not (isinstance(stmt.iter, ast.Call)
                and isinstance(stmt.iter.func, ast.Name)
                and stmt.iter.func.id == "range"):
            raise SynthesisError(
                "for loops must iterate over constant range(...)", stmt,
                code="OSS104",
            )
        if not isinstance(stmt.target, ast.Name):
            raise SynthesisError("for target must be a simple name", stmt,
                                 code="OSS104")
        bounds = [
            self.as_static_int(self.eval(arg, env), stmt, "range bound")
            for arg in stmt.iter.args
        ]
        iterations = list(range(*bounds))
        if len(iterations) > self.MAX_UNROLL:
            raise SynthesisError(
                f"loop unrolls to {len(iterations)} iterations "
                f"(limit {self.MAX_UNROLL})",
                stmt, code="OSS103",
            )
        for value in iterations:
            env.locals[stmt.target.id] = Static(value)
            result = self.exec_block(stmt.body, env)
            if result is not None:
                raise SynthesisError("return inside a for loop is not "
                                     "synthesizable", stmt, code="OSS109")
        if stmt.orelse:
            self.exec_block(stmt.orelse, env)
