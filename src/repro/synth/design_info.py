"""The design library — output of the OSSS *Analyzer* (paper Fig. 6).

The ODETTE flow runs an analyzer that *"parses OSSS source code and
generates a library where it holds information of the whole design
structure"*; the synthesizer then works from that library.  This module is
that analyzer: it extracts and caches the ASTs of hardware-class methods
and module processes, resolves parameter/return type annotations, and
answers structural questions (method tables, template bindings) for the
rest of the synthesis pipeline.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable

from repro.osss.hwclass import HwClass
from repro.osss.template import is_template, template_binding
from repro.synth.common import SynthesisError
from repro.types.spec import TypeSpec


class MethodInfo:
    """Analyzed form of one hardware-class method (per specialization)."""

    def __init__(self, cls: type, name: str, func: Callable) -> None:
        self.cls = cls
        self.name = name
        self.func = func
        self.tree = parse_function(func)
        self.params = [a.arg for a in self.tree.args.args[1:]]  # skip self
        self.param_specs = self._annotation_specs()
        self.return_spec = self._return_spec()

    def _resolve_annotation(self, annotation):
        """Evaluate stringified annotations (PEP 563) in the right scope."""
        if isinstance(annotation, str):
            scope = dict(vars(__import__("builtins")))
            scope.update(DesignLibrary.globals_of(self.func))
            scope.setdefault("self", None)
            try:
                annotation = eval(annotation, scope)  # noqa: S307
            except Exception as exc:
                raise SynthesisError(
                    f"{self.cls.__name__}.{self.name}: cannot evaluate "
                    f"annotation {annotation!r}: {exc}"
                )
        return annotation

    def _annotation_specs(self) -> dict[str, TypeSpec | None]:
        specs: dict[str, TypeSpec | None] = {}
        hints = {}
        try:
            hints = dict(inspect.signature(self.func).parameters)
        except (TypeError, ValueError):  # pragma: no cover - builtins
            pass
        for param in self.params:
            annotation = None
            if param in hints:
                annotation = hints[param].annotation
                if annotation is inspect.Parameter.empty:
                    annotation = None
                else:
                    annotation = self._resolve_annotation(annotation)
            if annotation in (int, bool):
                # Compile-time constant parameter (template-style).
                annotation = "static"
            elif annotation is not None and not isinstance(annotation,
                                                           TypeSpec):
                raise SynthesisError(
                    f"{self.cls.__name__}.{self.name}: parameter {param!r} "
                    "annotation must be a TypeSpec (e.g. unsigned(8)) or "
                    "int/bool for compile-time parameters"
                )
            specs[param] = annotation
        return specs

    def defaults(self) -> dict[str, object]:
        """Default values of trailing parameters (compile-time only)."""
        try:
            signature = inspect.signature(self.func)
        except (TypeError, ValueError):  # pragma: no cover
            return {}
        found = {}
        for param in self.params:
            default = signature.parameters[param].default
            if default is not inspect.Parameter.empty:
                found[param] = default
        return found

    def _return_spec(self) -> TypeSpec | None:
        try:
            annotation = inspect.signature(self.func).return_annotation
        except (TypeError, ValueError):  # pragma: no cover
            return None
        if annotation is inspect.Signature.empty or annotation is None:
            return None
        annotation = self._resolve_annotation(annotation)
        if annotation is None:
            return None
        if not isinstance(annotation, TypeSpec):
            raise SynthesisError(
                f"{self.cls.__name__}.{self.name}: return annotation must "
                "be a TypeSpec"
            )
        return annotation

    @property
    def fully_annotated(self) -> bool:
        """True when every parameter has a declared TypeSpec."""
        return all(isinstance(spec, TypeSpec)
                   for spec in self.param_specs.values())

    def __repr__(self) -> str:
        return f"MethodInfo({self.cls.__name__}.{self.name})"


def parse_function(func: Callable) -> ast.FunctionDef:
    """Parse *func*'s source into its ``FunctionDef`` node."""
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError) as exc:
        raise SynthesisError(
            f"cannot retrieve source of {func!r} for synthesis: {exc}"
        )
    source = textwrap.dedent(source)
    module = ast.parse(source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise SynthesisError(f"no function definition found in {func!r}")


class DesignLibrary:
    """Caches analyzed methods and process bodies across the design."""

    def __init__(self) -> None:
        self._methods: dict[tuple[type, str], MethodInfo] = {}
        self._functions: dict[Any, ast.FunctionDef] = {}

    def method(self, cls: type, name: str) -> MethodInfo:
        """Analyzed method *name* as seen by class *cls* (MRO lookup)."""
        key = (cls, name)
        info = self._methods.get(key)
        if info is not None:
            return info
        func = getattr(cls, name, None)
        if func is None or not callable(func):
            raise SynthesisError(f"{cls.__name__} has no method {name!r}")
        info = MethodInfo(cls, name, func)
        self._methods[key] = info
        return info

    def has_method(self, cls: type, name: str) -> bool:
        """True if *cls* defines (or inherits) a callable *name*."""
        attr = getattr(cls, name, None)
        return callable(attr) and not name.startswith("__")

    def process_ast(self, bound_method: Callable) -> ast.FunctionDef:
        """Parsed body of a module process (cached per function object)."""
        func = getattr(bound_method, "__func__", bound_method)
        tree = self._functions.get(func)
        if tree is None:
            tree = parse_function(func)
            self._functions[func] = tree
        return tree

    @staticmethod
    def globals_of(func: Callable) -> dict[str, Any]:
        """The globals (plus closure bindings) visible to *func*."""
        raw = getattr(func, "__func__", func)
        scope = dict(raw.__globals__)
        if raw.__closure__:
            for name, cell in zip(raw.__code__.co_freevars, raw.__closure__):
                try:
                    scope[name] = cell.cell_contents
                except ValueError:  # pragma: no cover - empty cell
                    pass
        return scope

    @staticmethod
    def describe_class(cls: type) -> dict[str, Any]:
        """Structural record of a hardware class (for reports/tests)."""
        if not (isinstance(cls, type) and issubclass(cls, HwClass)):
            raise SynthesisError(f"{cls!r} is not a hardware class")
        from repro.osss.state_layout import StateLayout

        layout = StateLayout.of(cls)
        methods = sorted(
            name
            for name in dir(cls)
            if not name.startswith("_")
            and callable(getattr(cls, name))
            and name not in ("layout", "full_layout", "member_specs",
                             "construct", "copy", "hw_members", "specialize")
        )
        return {
            "name": cls.__name__,
            "state_bits": layout.total_width,
            "members": {
                name: slot.spec.describe()
                for name, slot in layout.slots.items()
            },
            "methods": methods,
            "template": template_binding(cls) if is_template(cls) else {},
        }
