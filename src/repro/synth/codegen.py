"""Readable procedural intermediate code (paper Fig. 7–8).

The ODETTE synthesizer emitted *standard SystemC* as a human-readable,
simulatable intermediate: class methods became non-member functions over a
flat ``sc_biguint`` state vector (Fig. 7) and modules called those
functions on plain vectors (Fig. 8).  ``resolve_class_text`` reproduces
that artifact in Python: for every synthesizable method of a hardware
class it emits an executable non-member function

    def _ClassName_method_(_this_, arg, ...):
        ...
        return _this_, result

operating on raw integers, derived from the *same* symbolic execution the
RTL generator uses.  ``generated_functions`` executes the text and returns
the callables, so tests can check the resolution is behaviour-preserving —
the mechanical form of the paper's claim that resolution adds nothing.
"""

from __future__ import annotations

import ast
from typing import Any, Callable

from repro.osss.hwclass import HwClass
from repro.osss.state_layout import StateLayout
from repro.rtl.ir import (
    BinOp,
    Concat,
    Const,
    Expr,
    Mux,
    Read,
    Register,
    Resize,
    ShiftConst,
    ShiftDyn,
    Slice,
    UnaryOp,
)
from repro.synth.common import Static, SynthesisError
from repro.synth.design_info import DesignLibrary
from repro.synth.interp import Interpreter, PathEnv
from repro.synth.sharedgen import _ArbiterContext
from repro.types.spec import unsigned

_HELPERS = '''\
def _mask(value, width):
    return value & ((1 << width) - 1)


def _sx(value, width):
    """Reinterpret a raw pattern as a signed (two's complement) value."""
    value &= (1 << width) - 1
    if value >> (width - 1):
        return value - (1 << width)
    return value
'''


class _Printer:
    """Prints an expression DAG as Python statements over raw ints."""

    def __init__(self, names: dict[int, str]) -> None:
        self.names = names
        self.lines: list[str] = []
        self._temp = 0
        self._cache: dict[int, str] = {}
        self._uses: dict[int, int] = {}

    def count_uses(self, expr: Expr) -> None:
        self._uses[id(expr)] = self._uses.get(id(expr), 0) + 1
        if self._uses[id(expr)] == 1:
            for child in expr.children():
                self.count_uses(child)

    def print_expr(self, expr: Expr) -> str:
        key = id(expr)
        if key in self._cache:
            return self._cache[key]
        text = self._render(expr)
        if self._uses.get(key, 0) > 1 and not isinstance(expr,
                                                         (Const, Read)):
            name = f"_t{self._temp}"
            self._temp += 1
            self.lines.append(f"{name} = {text}")
            text = name
        self._cache[key] = text
        return text

    # ------------------------------------------------------------------
    def _numeric(self, expr: Expr) -> str:
        raw = self.print_expr(expr)
        if expr.spec.kind in ("signed", "fixed"):
            return f"_sx({raw}, {expr.width})"
        return raw

    def _render(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return hex(expr.raw)
        if isinstance(expr, Read):
            return self.names.get(expr.carrier.uid, expr.carrier.name)
        if isinstance(expr, Slice):
            inner = self.print_expr(expr.a)
            if expr.lo == 0:
                return f"_mask({inner}, {expr.width})"
            return f"_mask({inner} >> {expr.lo}, {expr.width})"
        if isinstance(expr, Concat):
            parts = []
            offset = expr.width
            for part in expr.parts:
                offset -= part.width
                rendered = self.print_expr(part)
                if offset:
                    parts.append(f"({rendered} << {offset})")
                else:
                    parts.append(rendered)
            return "(" + " | ".join(parts) + ")"
        if isinstance(expr, Resize):
            value = self._numeric(expr.a)
            return f"_mask({value}, {expr.width})"
        if isinstance(expr, Mux):
            cond = self.print_expr(expr.cond)
            a = self.print_expr(expr.if_true)
            b = self.print_expr(expr.if_false)
            return f"({a} if {cond} else {b})"
        if isinstance(expr, UnaryOp):
            inner = self.print_expr(expr.a)
            if expr.op == "invert":
                return f"_mask(~{inner}, {expr.width})"
            if expr.op == "not":
                return f"({inner} ^ 1)"
            if expr.op == "neg":
                return f"_mask(-{self._numeric(expr.a)}, {expr.width})"
            if expr.op == "reduce_or":
                return f"(1 if {inner} else 0)"
            if expr.op == "reduce_and":
                return f"(1 if {inner} == {hex((1 << expr.a.width) - 1)} else 0)"
            if expr.op == "reduce_xor":
                return f"(bin({inner}).count('1') & 1)"
        if isinstance(expr, ShiftConst):
            if expr.left:
                return (f"_mask({self.print_expr(expr.a)} << {expr.amount}, "
                        f"{expr.width})")
            return (f"_mask({self._numeric(expr.a)} >> {expr.amount}, "
                    f"{expr.width})")
        if isinstance(expr, ShiftDyn):
            amount = self.print_expr(expr.amount)
            if expr.left:
                return (f"_mask({self.print_expr(expr.a)} << {amount}, "
                        f"{expr.width})")
            return (f"_mask({self._numeric(expr.a)} >> {amount}, "
                    f"{expr.width})")
        if isinstance(expr, BinOp):
            op = expr.op
            if op in ("and", "or", "xor"):
                sym = {"and": "&", "or": "|", "xor": "^"}[op]
                return (f"({self.print_expr(expr.a)} {sym} "
                        f"{self.print_expr(expr.b)})")
            if op in ("add", "sub", "mul"):
                sym = {"add": "+", "sub": "-", "mul": "*"}[op]
                return (f"_mask({self._numeric(expr.a)} {sym} "
                        f"{self._numeric(expr.b)}, {expr.width})")
            sym = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                   "gt": ">", "ge": ">="}[op]
            return (f"(1 if {self._numeric(expr.a)} {sym} "
                    f"{self._numeric(expr.b)} else 0)")
        raise SynthesisError(f"cannot print expression {expr!r}")


def _method_names(cls: type, library: DesignLibrary) -> list[str]:
    skip = {"layout", "full_layout", "member_specs", "construct", "copy",
            "hw_members", "specialize"}
    names = []
    for name in sorted(dir(cls)):
        if name.startswith("_") or name in skip:
            continue
        if callable(getattr(cls, name, None)):
            names.append(name)
    return names


def resolve_method(cls: type, name: str,
                   library: DesignLibrary | None = None) -> tuple[str, str]:
    """Resolve one method to (function_name, source_text) — Fig. 7.

    Unannotated parameters default to the layout-packed state width; use
    TypeSpec annotations for exact argument types.
    """
    library = library or DesignLibrary()
    layout = StateLayout.of(cls)
    info = library.method(cls, name)
    ctx = _ArbiterContext(library, f"codegen_{cls.__name__}")
    interp = Interpreter(ctx)
    state_reg = Register("_this_", unsigned(layout.total_width), 0)
    from repro.synth.common import ObjectHandle

    handle = ObjectHandle(state_reg, cls)
    env = PathEnv()
    names = {state_reg.uid: "_this_"}
    args = []
    params = []
    defaults = info.defaults()
    for param in info.params:
        spec = info.param_specs.get(param)
        if spec == "static":
            if param not in defaults:
                raise SynthesisError(
                    f"{cls.__name__}.{name}: static parameter {param!r} "
                    "needs a default for code generation"
                )
            args.append(Static(defaults[param]))
            continue
        if spec is None:
            raise SynthesisError(
                f"{cls.__name__}.{name}: annotate parameter {param!r} with "
                "a TypeSpec to generate code"
            )
        carrier = Register(param, spec, 0)
        names[carrier.uid] = param
        args.append(Read(carrier))
        params.append(param)
    fake_call = ast.parse(f"self.{name}()").body[0].value
    result = interp.inline_method(env, handle, name, args, fake_call)
    new_state = env.pending.get(state_reg.uid, Read(state_reg))
    func_name = f"_{cls.__name__}_{name}_"
    printer = _Printer(names)
    printer.count_uses(new_state)
    has_result = not (isinstance(result, Static) and result.value is None)
    result_expr = None
    if has_result:
        result_expr = interp.as_expr(result, fake_call)
        printer.count_uses(result_expr)
    state_text = printer.print_expr(new_state)
    result_text = printer.print_expr(result_expr) if has_result else "None"
    lines = [f"def {func_name}({', '.join(['_this_'] + params)}):"]
    doc = (f"{cls.__name__}.{name} resolved to a non-member function over "
           f"the {layout.total_width}-bit state vector (paper Fig. 7).")
    lines.append(f'    """{doc}"""')
    for line in printer.lines:
        lines.append(f"    {line}")
    lines.append(f"    _this_ = {state_text}")
    lines.append(f"    return _this_, {result_text}")
    return func_name, "\n".join(lines) + "\n"


def resolve_class_text(cls: type,
                       library: DesignLibrary | None = None) -> str:
    """Full Fig.-7-style module text for every resolvable method of *cls*."""
    library = library or DesignLibrary()
    layout = StateLayout.of(cls)
    header = [
        f'"""Generated by the OSSS synthesizer: {cls.__name__} resolved.',
        "",
        layout.describe(),
        '"""',
        "",
        _HELPERS,
        "",
    ]
    chunks = []
    for name in _method_names(cls, library):
        try:
            _fn, text = resolve_method(cls, name, library)
        except SynthesisError:
            chunks.append(f"# {name}: not resolvable "
                          "(outside the synthesizable subset)\n")
            continue
        chunks.append(text)
    return "\n".join(header) + "\n\n".join(chunks)


def generated_functions(cls: type,
                        library: DesignLibrary | None = None
                        ) -> dict[str, Callable]:
    """Execute the generated text; returns ``{method: callable}``.

    Each callable takes ``(state_raw, *arg_raws)`` and returns
    ``(new_state_raw, result_raw_or_None)`` — directly comparable against
    the live object, which is how tests check claim R3.
    """
    library = library or DesignLibrary()
    namespace: dict[str, Any] = {}
    exec(compile(resolve_class_text(cls, library), f"<osss:{cls.__name__}>",
                 "exec"), namespace)
    functions = {}
    for name in _method_names(cls, library):
        fn = namespace.get(f"_{cls.__name__}_{name}_")
        if fn is not None:
            functions[name] = fn
    return functions
