"""Shared-object synthesis: client interfaces and generated arbiters.

Paper §8: *"When global objects are being instantiated and accessed, some
scheduling logic of course has to be added."*  This module generates that
logic.  Each module whose threads access a :class:`SharedObject` gains a
request interface (request/method/args/ack outputs, done/result inputs);
at the synthesis root one arbiter module per shared object is instantiated
and wired to every client.  The arbiter implements the same scheduling
policies as the simulation model (:mod:`repro.osss.shared`) with identical
cycle timing, so OSSS-level and RTL simulations agree cycle for cycle.

Interface timing (matching ``ClientPort.call``):

* client registers request+method+args in cycle *t*;
* arbiter picks a winner among requests visible in cycle *t+1*, executes
  the guarded method combinationally and registers done+result;
* client sees ``done`` in cycle *t+2*, captures the result, clears the
  request and pulses ``ack`` (which lets the arbiter clear ``done``).
"""

from __future__ import annotations

import ast
from typing import Any

from repro.osss.shared import Fcfs, RoundRobin, SharedObject, StaticPriority
from repro.osss.state_layout import StateLayout
from repro.rtl.ir import (
    BinOp,
    Const,
    Expr,
    Mux,
    Read,
    Register,
    Resize,
    RtlModule,
    Slice,
    UnaryOp,
)
from repro.synth.common import ObjectHandle, Static, SynthesisError
from repro.synth.design_info import DesignLibrary
from repro.synth.interp import Interpreter, PathEnv
from repro.types.spec import TypeSpec, bit, unsigned


class SharedMethodTable:
    """Callable-method metadata of one shared object (table order fixed)."""

    def __init__(self, shared: SharedObject, library: DesignLibrary) -> None:
        self.shared = shared
        self.library = library
        cls = type(shared.instance)
        names = []
        for name in sorted(dir(cls)):
            if name.startswith("_"):
                continue
            if name in ("layout", "full_layout", "member_specs", "construct",
                        "copy", "hw_members", "specialize"):
                continue
            attr = getattr(cls, name, None)
            if not callable(attr):
                continue
            info = library.method(cls, name)
            if info.fully_annotated:
                names.append(name)
        if not names:
            raise SynthesisError(
                f"shared object {shared.name!r}: no synthesizable methods "
                "(annotate parameters and return with TypeSpecs)"
            )
        self.methods = names
        self.cls = cls
        self.method_width = max(1, (len(names) - 1).bit_length())
        self.args_width = 1
        self.result_width = 1
        for name in names:
            info = library.method(cls, name)
            total = sum(spec.width for spec in info.param_specs.values())
            self.args_width = max(self.args_width, max(total, 1))
            if info.return_spec is not None:
                self.result_width = max(self.result_width,
                                        info.return_spec.width)

    def method_id(self, name: str) -> int:
        try:
            return self.methods.index(name)
        except ValueError:
            raise SynthesisError(
                f"shared object {self.shared.name!r} has no synthesizable "
                f"method {name!r} (available: {self.methods})"
            )

    def return_spec(self, name: str) -> TypeSpec | None:
        return self.library.method(self.cls, name).return_spec

    def param_specs(self, name: str) -> list[TypeSpec]:
        info = self.library.method(self.cls, name)
        return [info.param_specs[p] for p in info.params]


class SharedClientIface:
    """One module-side client interface onto a shared object."""

    def __init__(self, mctx, client_port, table: SharedMethodTable) -> None:
        self.mctx = mctx
        self.client_port = client_port
        self.table = table
        rtl = mctx.rtl
        prefix = f"__shared_{table.shared.name}_c{client_port.index}"
        self.prefix = prefix
        self.req_reg = rtl.add_register(f"{prefix}_req", bit(), 0)
        self.method_reg = rtl.add_register(
            f"{prefix}_method", unsigned(table.method_width), 0
        )
        self.args_reg = rtl.add_register(
            f"{prefix}_args", unsigned(table.args_width), 0
        )
        self.ack_reg = rtl.add_register(f"{prefix}_ack", bit(), 0)
        # Inbound values arrive through deferred wires so the router can
        # later bind them to either module inputs (non-root) or arbiter
        # outputs (root).
        self.done_wire = rtl.add_wire(f"{prefix}_done_w", Const(bit(), 0))
        self.result_wire = rtl.add_wire(
            f"{prefix}_result_w", Const(unsigned(table.result_width), 0)
        )

    # -- used by the FSM builder ---------------------------------------
    def request_writes(self, method_name: str, args: list[Any],
                       interp: Interpreter, node: ast.AST):
        method_id = self.table.method_id(method_name)
        specs = self.table.param_specs(method_name)
        if len(args) != len(specs):
            raise SynthesisError(
                f"{method_name} expects {len(specs)} argument(s), got "
                f"{len(args)}",
                node,
            )
        packed: Expr = Const(unsigned(self.table.args_width), 0)
        offset = 0
        parts: list[tuple[int, Expr]] = []
        for spec, arg in zip(specs, args):
            expr = interp.materialize(arg, spec, node)
            parts.append((offset, expr))
            offset += spec.width
        packed = _pack_parts(parts, self.table.args_width)
        return [
            (self.req_reg, Const(bit(), 1)),
            (self.method_reg,
             Const(unsigned(self.table.method_width), method_id)),
            (self.args_reg, packed),
        ]

    def done_expr(self) -> Expr:
        return Read(self.done_wire)

    def complete_writes(self):
        return [
            (self.req_reg, Const(bit(), 0)),
            (self.ack_reg, Const(bit(), 1)),
        ]

    def result_expr(self, method_name: str):
        spec = self.table.return_spec(method_name)
        if spec is None:
            return Static(None)
        sliced = Slice(Read(self.result_wire), spec.width - 1, 0)
        return Resize(sliced, spec)

    def descriptor(self) -> dict[str, Any]:
        return {
            "shared": self.table.shared,
            "index": self.client_port.index,
            "prefix": self.prefix,
        }


def _pack_parts(parts: list[tuple[int, Expr]], width: int) -> Expr:
    """Assemble LSB-first (offset, expr) fields into one unsigned bus."""
    from repro.rtl.ir import Concat
    from repro.types.spec import bits

    if not parts:
        return Const(unsigned(width), 0)
    pieces: list[Expr] = []
    cursor = 0
    for offset, expr in sorted(parts, key=lambda p: p[0]):
        if offset > cursor:
            pieces.append(Const(bits(offset - cursor), 0))
        pieces.append(expr if expr.spec.kind == "bv"
                      else Resize(expr, bits(expr.width)))
        cursor = offset + expr.width
    if cursor < width:
        pieces.append(Const(bits(width - cursor), 0))
    pieces.reverse()  # Concat is MSB-first
    merged = pieces[0] if len(pieces) == 1 else Concat(pieces)
    return Resize(merged, unsigned(width))


# ======================================================================
# hierarchy routing
# ======================================================================
def route_shared(mctx, instances: dict[int, Any], is_root: bool) -> None:
    """Close or re-export shared-object interfaces at this level."""
    rtl = mctx.rtl
    open_ifaces: list[dict[str, Any]] = []
    # Own threads' interfaces.
    for iface in mctx._shared_ifaces.values():
        desc = iface.descriptor()
        desc["kind"] = "local"
        desc["iface"] = iface
        open_ifaces.append(desc)
    # Children's exported interfaces.
    for inst in rtl.instances:
        for child_desc in inst.module.attributes.get("shared_clients", []):
            open_ifaces.append({
                "shared": child_desc["shared"],
                "index": child_desc["index"],
                "prefix": child_desc["prefix"],
                "kind": "child",
                "instance": inst,
            })

    if not open_ifaces:
        return

    if not is_root:
        _reexport(mctx, open_ifaces)
        return

    # Root: one arbiter per shared object.
    by_shared: dict[int, list[dict[str, Any]]] = {}
    shared_objects: dict[int, SharedObject] = {}
    for desc in open_ifaces:
        by_shared.setdefault(id(desc["shared"]), []).append(desc)
        shared_objects[id(desc["shared"])] = desc["shared"]
    for key, descs in by_shared.items():
        shared = shared_objects[key]
        table = mctx.session.method_table(shared)
        arbiter = build_arbiter(shared, table, mctx.session.library)
        inst = rtl.add_instance(f"arbiter_{shared.name}", arbiter)
        if mctx.reset_input is None:
            mctx.ensure_reset()
        inst.connect("reset", Read(mctx.reset_input))
        present = {d["index"]: d for d in descs}
        for index in range(max(shared.num_clients, 1)):
            desc = present.get(index)
            if desc is None:
                inst.connect(f"c{index}_req", Const(bit(), 0))
                inst.connect(f"c{index}_ack", Const(bit(), 0))
                inst.connect(f"c{index}_method",
                             Const(unsigned(table.method_width), 0))
                inst.connect(f"c{index}_args",
                             Const(unsigned(table.args_width), 0))
                continue
            if desc["kind"] == "local":
                iface = desc["iface"]
                inst.connect(f"c{index}_req", Read(iface.req_reg))
                inst.connect(f"c{index}_ack", Read(iface.ack_reg))
                inst.connect(f"c{index}_method", Read(iface.method_reg))
                inst.connect(f"c{index}_args", Read(iface.args_reg))
                iface.done_wire.expr = inst.output(f"c{index}_done")
                iface.result_wire.expr = inst.output(f"c{index}_result")
            else:
                child_inst = desc["instance"]
                prefix = desc["prefix"]
                inst.connect(f"c{index}_req",
                             child_inst.output(f"{prefix}_req"))
                inst.connect(f"c{index}_ack",
                             child_inst.output(f"{prefix}_ack"))
                inst.connect(f"c{index}_method",
                             child_inst.output(f"{prefix}_method"))
                inst.connect(f"c{index}_args",
                             child_inst.output(f"{prefix}_args"))
                child_inst.connect(f"{prefix}_done",
                                   inst.output(f"c{index}_done"))
                child_inst.connect(f"{prefix}_result",
                                   inst.output(f"c{index}_result"))


def _reexport(mctx, open_ifaces: list[dict[str, Any]]) -> None:
    rtl = mctx.rtl
    exported = rtl.attributes.setdefault("shared_clients", [])
    for desc in open_ifaces:
        prefix = desc["prefix"]
        table_shared = desc["shared"]
        table = mctx.session.method_table(table_shared)
        if desc["kind"] == "local":
            iface = desc["iface"]
            rtl.add_output(f"{prefix}_req", Read(iface.req_reg))
            rtl.add_output(f"{prefix}_ack", Read(iface.ack_reg))
            rtl.add_output(f"{prefix}_method", Read(iface.method_reg))
            rtl.add_output(f"{prefix}_args", Read(iface.args_reg))
            done_in = rtl.add_input(f"{prefix}_done", bit())
            result_in = rtl.add_input(
                f"{prefix}_result", unsigned(table.result_width)
            )
            iface.done_wire.expr = Read(done_in)
            iface.result_wire.expr = Read(result_in)
        else:
            inst = desc["instance"]
            rtl.add_output(f"{prefix}_req", inst.output(f"{prefix}_req"))
            rtl.add_output(f"{prefix}_ack", inst.output(f"{prefix}_ack"))
            rtl.add_output(f"{prefix}_method",
                           inst.output(f"{prefix}_method"))
            rtl.add_output(f"{prefix}_args", inst.output(f"{prefix}_args"))
            done_in = rtl.add_input(f"{prefix}_done", bit())
            result_in = rtl.add_input(
                f"{prefix}_result", unsigned(table.result_width)
            )
            inst.connect(f"{prefix}_done", Read(done_in))
            inst.connect(f"{prefix}_result", Read(result_in))
        exported.append({
            "shared": desc["shared"],
            "index": desc["index"],
            "prefix": prefix,
        })


# ======================================================================
# arbiter generation
# ======================================================================
class _ArbiterContext:
    """Minimal interpreter context for inlining guarded methods."""

    def __init__(self, library: DesignLibrary, name: str) -> None:
        self.library = library
        self.process_name = name
        self._scope_stack: list[dict] = [{}]

    def static_scope(self):
        scope = dict(__builtins__) if isinstance(__builtins__, dict) else {
            key: getattr(__builtins__, key) for key in dir(__builtins__)
        }
        scope.update(self._scope_stack[-1])
        return scope

    def push_scope(self, func):
        self._scope_stack.append(DesignLibrary.globals_of(func))
        return len(self._scope_stack) - 1

    def pop_scope(self, token):
        del self._scope_stack[token:]

    def module_self(self):
        return None

    def resolve_attr(self, name, env, node):
        raise SynthesisError(
            f"guarded methods cannot access module state ({name!r})", node
        )

    def resolve_module_attr(self, module, name, node):
        raise SynthesisError("guarded methods cannot access modules", node)

    def signal_read_expr(self, ref, node):
        raise SynthesisError("guarded methods cannot read signals", node)

    def signal_write(self, env, ref, binding, node, interp):
        raise SynthesisError("guarded methods cannot write signals", node)

    def local_register(self, name):
        return None

    def ensure_local_register(self, name, spec):
        raise SynthesisError(
            "guarded methods cannot create persistent locals"
        )

    def new_local_object(self, cls, node):
        raise SynthesisError(
            "guarded methods cannot construct objects", node
        )

    def shared_interface(self, ref):
        raise SynthesisError("guarded methods cannot access shared objects")


def build_arbiter(shared: SharedObject, table: SharedMethodTable,
                  library: DesignLibrary) -> RtlModule:
    """Generate the arbiter RTL module for one shared object."""
    n = max(shared.num_clients, 1)
    rtl = RtlModule(f"arbiter_{shared.name}")
    reset = rtl.add_input("reset", bit())
    rtl.attributes["reset_port"] = "reset"
    layout = StateLayout.of(type(shared.instance))
    state_reg = rtl.add_register(
        "obj_state", unsigned(layout.total_width),
        layout.pack(shared.instance).raw,
    )

    req, method_in, args_in, ack = [], [], [], []
    for i in range(n):
        req.append(Read(rtl.add_input(f"c{i}_req", bit())))
        method_in.append(
            Read(rtl.add_input(f"c{i}_method",
                               unsigned(table.method_width)))
        )
        args_in.append(
            Read(rtl.add_input(f"c{i}_args", unsigned(table.args_width)))
        )
        ack.append(Read(rtl.add_input(f"c{i}_ack", bit())))

    done_regs = [rtl.add_register(f"done{i}", bit(), 0) for i in range(n)]
    result_regs = [
        rtl.add_register(f"result{i}", unsigned(table.result_width), 0)
        for i in range(n)
    ]

    eligible = [
        BinOp("and", req[i], UnaryOp("not", Read(done_regs[i])))
        for i in range(n)
    ]
    win, policy_updates = _policy_logic(shared, rtl, eligible, n)
    any_win = win[0]
    for i in range(1, n):
        any_win = BinOp("or", any_win, win[i])

    method_sel: Expr = method_in[0]
    args_sel: Expr = args_in[0]
    for i in range(1, n):
        method_sel = Mux(win[i], method_in[i], method_sel)
        args_sel = Mux(win[i], args_in[i], args_sel)

    # Inline every guarded method on the current object state.
    ctx = _ArbiterContext(library, rtl.name)
    interp = Interpreter(ctx)
    handle = ObjectHandle(state_reg, type(shared.instance))
    new_state: Expr = Read(state_reg)
    result_value: Expr = Const(unsigned(table.result_width), 0)
    for method_id, name in enumerate(table.methods):
        env = PathEnv()
        info = library.method(table.cls, name)
        args: list[Any] = []
        offset = 0
        for param in info.params:
            spec = info.param_specs[param]
            sliced = Slice(args_sel, offset + spec.width - 1, offset)
            args.append(Resize(sliced, spec))
            offset += spec.width
        fake_call = ast.parse(f"self.{name}()").body[0].value
        ret = interp.inline_method(env, handle, name, args, fake_call)
        updated = env.pending.get(state_reg.uid, Read(state_reg))
        is_this = BinOp(
            "eq", method_sel, Const(unsigned(table.method_width), method_id)
        )
        new_state = Mux(is_this, updated, new_state)
        if info.return_spec is not None:
            ret_expr = interp.materialize(ret, info.return_spec, fake_call)
            padded = Resize(
                ret_expr if ret_expr.spec.kind != "bit"
                else Resize(ret_expr, unsigned(1)),
                unsigned(table.result_width),
            )
            result_value = Mux(is_this, padded, result_value)

    def with_reset(next_expr: Expr, reset_raw: int, spec: TypeSpec) -> Expr:
        return Mux(Read(reset), Const(spec, reset_raw), next_expr)

    state_reg.next = with_reset(
        Mux(any_win, new_state, Read(state_reg)),
        state_reg.reset_raw, state_reg.spec,
    )
    for i in range(n):
        done_regs[i].next = with_reset(
            BinOp("or", win[i],
                  BinOp("and", Read(done_regs[i]), UnaryOp("not", ack[i]))),
            0, bit(),
        )
        result_regs[i].next = with_reset(
            Mux(win[i], result_value, Read(result_regs[i])),
            0, result_regs[i].spec,
        )
        rtl.add_output(f"c{i}_done", Read(done_regs[i]))
        rtl.add_output(f"c{i}_result", Read(result_regs[i]))
    for reg, next_expr in policy_updates:
        reg.next = with_reset(next_expr, reg.reset_raw, reg.spec)
    rtl.attributes["policy"] = shared.scheduler.policy_name
    return rtl


def _policy_logic(shared: SharedObject, rtl: RtlModule,
                  eligible: list[Expr], n: int):
    """Winner one-hot expressions + policy register updates."""
    scheduler = shared.scheduler
    if isinstance(scheduler, StaticPriority):
        win = _priority_onehot(eligible, list(range(n)))
        return win, []
    if isinstance(scheduler, RoundRobin):
        ptr_width = max(1, (n - 1).bit_length())
        ptr = rtl.add_register("rr_ptr", unsigned(ptr_width),
                               scheduler.pointer)
        win: list[Expr] = [Const(bit(), 0)] * n
        for start in range(n):
            order = [(start + k) % n for k in range(n)]
            rotated = _priority_onehot(eligible, order)
            at_start = BinOp("eq", Read(ptr),
                             Const(unsigned(ptr_width), start))
            for i in range(n):
                win[i] = Mux(at_start, rotated[i], win[i])
        # pointer advances past the winner
        next_ptr: Expr = Read(ptr)
        for i in range(n):
            next_ptr = Mux(win[i],
                           Const(unsigned(ptr_width), (i + 1) % n),
                           next_ptr)
        return win, [(ptr, next_ptr)]
    if isinstance(scheduler, Fcfs):
        age_bits = scheduler.age_bits
        cap = (1 << age_bits) - 1
        ages = [
            rtl.add_register(f"age{i}", unsigned(age_bits), 0)
            for i in range(n)
        ]
        eff: list[Expr] = []
        for i in range(n):
            saturated = Mux(
                BinOp("eq", Read(ages[i]), Const(unsigned(age_bits), cap)),
                Const(unsigned(age_bits), cap),
                BinOp("add", Read(ages[i]),
                      Const(unsigned(age_bits), 1)).resized(age_bits),
            )
            eff.append(Mux(eligible[i], saturated,
                           Const(unsigned(age_bits), 0)))
        idx_width = max(1, (n - 1).bit_length())
        best_age: Expr = eff[0]
        best_idx: Expr = Const(unsigned(idx_width), 0)
        for i in range(1, n):
            better = BinOp("gt", eff[i], best_age)
            best_age = Mux(better, eff[i], best_age)
            best_idx = Mux(better, Const(unsigned(idx_width), i), best_idx)
        win = []
        any_elig: Expr = eligible[0]
        for i in range(1, n):
            any_elig = BinOp("or", any_elig, eligible[i])
        for i in range(n):
            hit = BinOp("eq", best_idx, Const(unsigned(idx_width), i))
            win.append(BinOp("and", hit, any_elig))
        updates = [
            (ages[i], Mux(win[i], Const(unsigned(age_bits), 0), eff[i]))
            for i in range(n)
        ]
        return win, updates
    raise SynthesisError(
        f"scheduler {type(scheduler).__name__} has no synthesis support; "
        "use StaticPriority, RoundRobin or Fcfs"
    )


def _priority_onehot(eligible: list[Expr], order: list[int]) -> list[Expr]:
    """One-hot winner with fixed priority given by *order*."""
    win: list[Expr | None] = [None] * len(eligible)
    blocked: Expr | None = None
    for index in order:
        if blocked is None:
            win[index] = eligible[index]
            blocked = eligible[index]
        else:
            win[index] = BinOp("and", eligible[index],
                               UnaryOp("not", blocked))
            blocked = BinOp("or", blocked, eligible[index])
    return list(win)
