"""The OSSS synthesis flow: analyzer, synthesizer, behavioral synthesis.

``synthesize(module)`` lowers an elaborated kernel-level module (with OSSS
objects, templates, polymorphism and shared objects) to RTL; the RTL then
feeds :mod:`repro.netlist` for gates, area and timing.
"""

from repro.synth.behavioral import Fsm, FsmBuilder
from repro.synth.common import SynthesisError
from repro.synth.design_info import DesignLibrary, MethodInfo
from repro.synth.modulegen import SynthesisSession, synthesize
from repro.synth.report import class_inventory, design_report, rtl_inventory

__all__ = [
    "DesignLibrary",
    "Fsm",
    "FsmBuilder",
    "MethodInfo",
    "SynthesisError",
    "SynthesisSession",
    "class_inventory",
    "design_report",
    "rtl_inventory",
    "synthesize",
]
