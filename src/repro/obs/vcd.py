"""VCD document writing and cycle-based waveform adapters.

:class:`VcdWriter` is the low-level VCD renderer extracted from
:mod:`repro.hdl.trace` so that every simulation stage — kernel, RTL and
gate level — can dump waveforms through one implementation.  It adds
two capabilities the kernel-only tracer never needed:

* **scopes** — variables are grouped into ``$scope module <name>``
  blocks, which is how the equivalence harness renders its three-stage
  side-by-side dump (one scope per stage);
* **windows** — :meth:`VcdWriter.render` accepts an inclusive
  ``(t0, t1)`` window: each variable's value *at* ``t0`` is emitted as
  the initial dump, then only the changes inside the window follow.
  Used to cut a small waveform around a
  :class:`~repro.eval.equivalence.Mismatch`.

:class:`RtlTrace` and :class:`GateTrace` adapt the two cycle-based
simulators onto the writer: they register a sampling hook on the
simulator's ``step_hooks`` list (the cycle-based counterpart of the
kernel's ``cycle_hooks``, also used by the cosim shell) and record one
sample per committed cycle, timestamped with the cycle index.  Both
support :meth:`detach` and are idempotent about it.
"""

from __future__ import annotations

import io
from typing import Any, Mapping, Sequence

_IDENT_CHARS = "".join(chr(c) for c in range(33, 127))


def vcd_ident(index: int) -> str:
    """Short printable VCD identifier for variable *index*."""
    ident = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_IDENT_CHARS))
        ident = _IDENT_CHARS[rem] + ident
    return ident


class VcdWriter:
    """Collects value changes and renders a VCD document.

    Parameters
    ----------
    timescale:
        VCD timescale string (``"1ps"`` for the kernel's picosecond
        base, ``"1ns"`` as the nominal unit of cycle-based traces).
    """

    def __init__(self, timescale: str = "1ps") -> None:
        self.timescale = timescale
        #: (scope, name, width, ident) in declaration order.
        self._vars: list[tuple[str, str, int, str]] = []
        self._widths: dict[str, int] = {}
        self._changes: list[tuple[int, str, int, int]] = []
        self._last: dict[str, int] = {}

    # ------------------------------------------------------------------
    # declaration / recording
    # ------------------------------------------------------------------
    def add_var(self, name: str, width: int, scope: str = "top") -> str:
        """Declare a variable; returns its short VCD identifier."""
        ident = vcd_ident(len(self._vars))
        self._vars.append((scope, name, width, ident))
        self._widths[ident] = width
        return ident

    def record(self, time: int, ident: str, raw: int) -> bool:
        """Record a value change (deduplicated); True if it was new."""
        if self._last.get(ident) == raw:
            return False
        self._last[ident] = raw
        self._changes.append((time, ident, self._widths.get(ident, 1), raw))
        return True

    @property
    def change_count(self) -> int:
        """Number of recorded value changes (for tests)."""
        return len(self._changes)

    @property
    def var_count(self) -> int:
        """Number of declared variables."""
        return len(self._vars)

    def last_value(self, ident: str) -> int | None:
        """The most recently recorded value of *ident*, if any."""
        return self._last.get(ident)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    @staticmethod
    def _emit(out: io.StringIO, ident: str, width: int, raw: int) -> None:
        if width == 1:
            out.write(f"{raw}{ident}\n")
        else:
            out.write(f"b{raw:b} {ident}\n")

    def render(self, window: tuple[int, int] | None = None) -> str:
        """The complete VCD document as a string.

        With *window* ``(t0, t1)`` (inclusive), emit each variable's
        value as of ``t0`` followed by only the changes in ``(t0, t1]``.
        """
        out = io.StringIO()
        out.write(f"$timescale {self.timescale} $end\n")
        current_scope = None
        for scope, name, width, ident in self._vars:
            if scope != current_scope:
                if current_scope is not None:
                    out.write("$upscope $end\n")
                out.write(f"$scope module {scope} $end\n")
                current_scope = scope
            safe = name.replace(" ", "_")
            out.write(f"$var wire {width} {ident} {safe} $end\n")
        if current_scope is not None:
            out.write("$upscope $end\n")
        out.write("$enddefinitions $end\n")

        changes = sorted(self._changes, key=lambda c: (c[0],))
        if window is not None:
            t0, t1 = window
            initial: dict[str, tuple[int, int]] = {}
            tail: list[tuple[int, str, int, int]] = []
            for time, ident, width, raw in changes:
                if time <= t0:
                    initial[ident] = (width, raw)
                elif time <= t1:
                    tail.append((time, ident, width, raw))
            out.write(f"#{t0}\n")
            for _, _, width, ident in self._vars:
                if ident in initial:
                    width, raw = initial[ident]
                    self._emit(out, ident, width, raw)
            changes = tail
        current_time = None
        for time, ident, width, raw in changes:
            if time != current_time:
                out.write(f"#{time}\n")
                current_time = time
            self._emit(out, ident, width, raw)
        return out.getvalue()

    def write(self, path: str, window: tuple[int, int] | None = None) -> None:
        """Write the VCD document to *path*."""
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.render(window))


class _CycleTrace:
    """Shared machinery of :class:`RtlTrace` and :class:`GateTrace`."""

    def __init__(self, sim: Any, scope: str, timescale: str) -> None:
        self.sim = sim
        self.scope = scope
        self.writer = VcdWriter(timescale)
        self._idents: dict[str, str] = {}
        self._attached = False

    def _declare(self, name: str, width: int) -> None:
        self._idents[name] = self.writer.add_var(name, width, self.scope)

    def attach(self) -> None:
        """Register the sampling hook; takes an initial sample."""
        if self._attached:
            return
        self.sim.step_hooks.append(self._sample)
        self._attached = True
        self._sample()

    def detach(self) -> None:
        """Remove the sampling hook; safe to call repeatedly."""
        if not self._attached:
            return
        try:
            self.sim.step_hooks.remove(self._sample)
        except ValueError:
            pass
        self._attached = False

    close = detach

    def _sample(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # Delegation -------------------------------------------------------
    @property
    def change_count(self) -> int:
        return self.writer.change_count

    def render(self, window: tuple[int, int] | None = None) -> str:
        return self.writer.render(window)

    def write(self, path: str, window: tuple[int, int] | None = None) -> None:
        self.writer.write(path, window)


class RtlTrace(_CycleTrace):
    """Per-cycle VCD sampling of an :class:`~repro.rtl.simulate.RtlSimulator`.

    Samples every top-level output (and, with *include_registers*, every
    register) after each committed cycle; timestamps are cycle indices.
    """

    def __init__(self, sim: Any, include_registers: bool = False,
                 scope: str = "rtl", timescale: str = "1ns") -> None:
        super().__init__(sim, scope, timescale)
        for name, expr in sim.module.outputs.items():
            self._declare(name, expr.spec.width)
        self._registers = list(sim.registers()) if include_registers else []
        for reg in self._registers:
            self._declare(reg.name, reg.spec.width)
        self.attach()

    def _sample(self) -> None:
        cycle = self.sim.cycle
        outputs = self.sim.peek_outputs()
        writer = self.writer
        idents = self._idents
        for name, value in outputs.items():
            writer.record(cycle, idents[name], value)
        for reg in self._registers:
            writer.record(cycle, idents[reg.name],
                          self.sim.register_value(reg))


class GateTrace(_CycleTrace):
    """Per-cycle VCD sampling of a :class:`~repro.netlist.sim.GateSimulator`.

    Samples every output bus (and, with *include_flops*, every flop
    output bit) after each committed cycle.  Under the compiled backend
    the per-cycle sample forces the lazy post-commit settle, so tracing
    costs one extra generated call per cycle.
    """

    def __init__(self, sim: Any, include_flops: bool = False,
                 scope: str = "netlist", timescale: str = "1ns") -> None:
        super().__init__(sim, scope, timescale)
        for name, nets in sim.circuit.output_buses.items():
            self._declare(name, len(nets))
        self._include_flops = include_flops
        if include_flops:
            for name in sim.flop_values():
                self._declare(name, 1)
        self.attach()

    def _sample(self) -> None:
        cycle = self.sim.cycle
        writer = self.writer
        idents = self._idents
        for name, value in self.sim.peek_outputs().items():
            writer.record(cycle, idents[name], value)
        if self._include_flops:
            for name, value in self.sim.flop_values().items():
                writer.record(cycle, idents[name], value)


def mismatch_window_vcd(
    samples: Mapping[str, Sequence[tuple[int, Mapping[str, int]]]],
    first_cycle: int,
    last_cycle: int,
    margin: int = 8,
    timescale: str = "1ns",
) -> tuple[VcdWriter, tuple[int, int]]:
    """Build the three-stage side-by-side dump around a mismatch window.

    *samples* maps stage name to its per-cycle observation list
    ``[(cycle, {output: value}), ...]``.  Every stage gets its own VCD
    scope with one variable per observed output (widths inferred from
    the widest value seen).  Returns the writer plus the clipped
    ``(t0, t1)`` window covering ``[first - margin, last + margin]``.
    """
    writer = VcdWriter(timescale)
    idents: dict[tuple[str, str], str] = {}
    for stage, trace in samples.items():
        names: dict[str, int] = {}
        for _, outputs in trace:
            for name, value in outputs.items():
                width = max(1, int(value).bit_length())
                names[name] = max(names.get(name, 1), width)
        for name, width in names.items():
            idents[(stage, name)] = writer.add_var(name, width, stage)
    for stage, trace in samples.items():
        for cycle, outputs in trace:
            for name, value in outputs.items():
                writer.record(cycle, idents[(stage, name)], int(value))
    t0 = max(0, first_cycle - margin)
    t1 = last_cycle + margin
    return writer, (t0, t1)
