"""Unified observability layer: spans, counters, multi-stage waveforms.

The paper's team debugged by inspecting *"the generated intermediate
files on all possible levels of synthesis"* (§12) and §9 calls for
object-level dumps at any time.  This package generalizes both habits
into one cross-cutting layer over the whole reproduction:

* :mod:`repro.obs.profiler` — a span-based profiler (``Span``/``Tracer``,
  context-manager API, monotonic-clock timing, nested spans) with a
  stable ``repro-trace/v1`` JSON export and a schema validator.  Wired
  into both synthesis flows (per-stage spans), the fault-campaign engine
  (per-fault spans, throughput, per-shard rollups) and the CLI
  (``repro profile`` / ``--profile``).
* :mod:`repro.obs.vcd` — the VCD document writer (extracted from
  :mod:`repro.hdl.trace`) plus ``RtlTrace``/``GateTrace`` adapters that
  sample the cycle-based simulators through their ``step_hooks``, and
  the three-stage side-by-side mismatch dump used by
  :mod:`repro.eval.equivalence`.

Counters ride on the simulators themselves: all three expose a uniform
``.stats()`` dict (see DESIGN.md §8) that trace exports embed, so wall
time is always explainable in simulator work units.
"""

from repro.obs.profiler import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_SCHEMA,
    Tracer,
    validate_trace,
)
from repro.obs.vcd import GateTrace, RtlTrace, VcdWriter, vcd_ident

__all__ = [
    "GateTrace",
    "NULL_TRACER",
    "NullTracer",
    "RtlTrace",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "VcdWriter",
    "validate_trace",
    "vcd_ident",
]
