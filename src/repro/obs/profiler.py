"""Span-based profiling with a stable JSON export (``repro-trace/v1``).

A :class:`Tracer` owns a tree of :class:`Span` records.  Spans nest via
the context-manager API::

    tracer = Tracer("flows")
    with tracer.span("flow:osss"):
        with tracer.span("synthesize"):
            ...

Timing uses the monotonic clock (``time.perf_counter``); every span
stores its start as an offset from the tracer's epoch (the construction
instant), so exported numbers are small and machine-independent in
shape.  The clock is injectable for deterministic golden tests.

The export format is versioned and validated (:func:`validate_trace`):

.. code-block:: json

    {"schema": "repro-trace/v1",
     "name": "flows",
     "total_s": 1.25,
     "meta": {},
     "spans": [{"name": "flow:osss", "t0_s": 0.0, "dur_s": 1.2,
                "meta": {}, "children": [...]}]}

``meta`` is free-form JSON carrying counters (simulator ``.stats()``
dicts, fault tallies, throughput numbers) alongside the timings.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Iterator

#: The versioned identifier every exported trace document carries.
TRACE_SCHEMA = "repro-trace/v1"

#: Guards concurrent metadata mutation on shared spans.  One coarse
#: module-level lock: annotations are rare and tiny compared to the
#: work they describe, and a per-span lock would cost a slot on every
#: span ever opened.  Needed because campaign/serve code paths tick
#: counters on one span from several threads (``Span.count`` is a
#: read-modify-write that would otherwise lose increments).
_META_LOCK = threading.Lock()


class Span:
    """One timed region: name, start offset, duration, metadata, children."""

    __slots__ = ("name", "t0", "dur", "meta", "children", "_parent")

    def __init__(self, name: str, t0: float,
                 parent: "Span | None" = None) -> None:
        self.name = name
        self.t0 = t0
        self.dur: float | None = None
        self.meta: dict[str, Any] = {}
        self.children: list[Span] = []
        self._parent = parent

    @property
    def closed(self) -> bool:
        """True once the span has been exited."""
        return self.dur is not None

    def annotate(self, **meta: Any) -> "Span":
        """Attach metadata (counters, tallies...) to the span.

        Thread-safe: concurrent annotators interleave without losing
        keys (last writer wins per key, as with any dict update).
        """
        with _META_LOCK:
            self.meta.update(meta)
        return self

    def count(self, name: str, n: int = 1) -> "Span":
        """Increment an integer counter in the span's metadata.

        For event tallies accumulated while the span is open (retries,
        respawns, cache hits) — ``annotate`` overwrites, this adds.
        Thread-safe: increments from concurrent workers never lose
        ticks to the read-modify-write race.
        """
        with _META_LOCK:
            self.meta[name] = self.meta.get(name, 0) + n
        return self

    def snapshot(self) -> dict[str, Any]:
        """A consistent copy of the metadata (safe under annotators)."""
        with _META_LOCK:
            return dict(self.meta)

    def child_seconds(self) -> float:
        """Total duration of the direct children (coverage checks)."""
        return sum(c.dur or 0.0 for c in self.children)

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": self.name,
            "t0_s": round(self.t0, 9),
            "dur_s": round(self.dur if self.dur is not None else 0.0, 9),
        }
        record["meta"] = self.meta
        record["children"] = [c.as_dict() for c in self.children]
        return record

    def __repr__(self) -> str:
        dur = f"{self.dur:.6f}s" if self.dur is not None else "open"
        return f"Span({self.name!r}, {dur}, {len(self.children)} children)"


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Collects a span tree and exports it as ``repro-trace/v1`` JSON.

    Parameters
    ----------
    name:
        Label for the whole trace (the workload being profiled).
    clock:
        Monotonic clock returning seconds as ``float``; defaults to
        :func:`time.perf_counter`.  Injectable so golden tests can pin
        byte-stable output.
    on_close:
        Optional callback fired with each :class:`Span` as it closes.
        This is the live progress feed: ``repro serve`` attaches one
        per job tracer and streams every finished stage span to the
        job's event log while the flow is still running.  Exceptions
        from the callback propagate (a broken feed should be loud).
    """

    def __init__(self, name: str = "trace",
                 clock: Callable[[], float] | None = None,
                 on_close: Callable[[Span], None] | None = None) -> None:
        self.name = name
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self.on_close = on_close
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.meta: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._epoch

    def span(self, name: str, **meta: Any) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span("stage"):``."""
        parent = self._stack[-1] if self._stack else None
        span = Span(name, self._now(), parent)
        span.meta.update(meta)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.dur = self._now() - span.t0
        # Unwind to the span being closed: mis-nested exits close the
        # abandoned inner spans instead of corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.dur is None:
                top.dur = self._now() - top.t0
                if self.on_close is not None:
                    self.on_close(top)
        if self.on_close is not None:
            self.on_close(span)

    def record(self, name: str, dur_s: float, **meta: Any) -> Span:
        """Attach a pre-measured span (e.g. a worker shard's wall time).

        The span is parented under the currently open span and stamped
        at the current clock offset; *dur_s* is trusted as measured.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(name, self._now(), parent)
        span.dur = float(dur_s)
        span.meta.update(meta)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def annotate(self, **meta: Any) -> None:
        """Attach metadata to the trace document itself."""
        self.meta.update(meta)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        """Sum of the root spans' durations."""
        return sum(r.dur or 0.0 for r in self.roots)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "total_s": round(self.total_seconds(), 9),
            "meta": self.meta,
            "spans": [r.as_dict() for r in self.roots],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=False) + "\n"

    def write(self, path: str) -> None:
        """Validate and write the trace document to *path*."""
        doc = self.as_dict()
        validate_trace(doc)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first ``(depth, span)`` pairs over the whole tree."""

        def visit(span: Span, depth: int) -> Iterator[tuple[int, Span]]:
            yield depth, span
            for child in span.children:
                yield from visit(child, depth + 1)

        for root in self.roots:
            yield from visit(root, 0)

    def summary_rows(self) -> list[dict[str, Any]]:
        """Flat per-span table rows (for ``repro.eval.format_table``)."""
        rows = []
        for depth, span in self.walk():
            dur = span.dur or 0.0
            parent = span._parent
            share = ""
            if parent is not None and parent.dur:
                share = f"{100.0 * dur / parent.dur:.1f}%"
            rows.append({
                "span": "  " * depth + span.name,
                "dur_s": f"{dur:.4f}",
                "of_parent": share,
            })
        return rows

    def __repr__(self) -> str:
        return (f"Tracer({self.name!r}, {len(self.roots)} roots, "
                f"total={self.total_seconds():.4f}s)")


class _NullContext:
    """Shared no-op context: one throwaway Span, never exported."""

    __slots__ = ("_span",)

    def __init__(self) -> None:
        self._span = Span("null", 0.0)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        return None


class NullTracer(Tracer):
    """A tracer that records nothing; the default when none is passed.

    Keeps the instrumented call sites branch-free: ``tracer.span(...)``
    costs one attribute lookup and returns a shared no-op context.
    """

    def __init__(self) -> None:
        super().__init__("null", clock=lambda: 0.0)
        self._null = _NullContext()

    def span(self, name: str, **meta: Any) -> _NullContext:  # type: ignore[override]
        return self._null

    def record(self, name: str, dur_s: float, **meta: Any) -> Span:
        return self._null._span

    def annotate(self, **meta: Any) -> None:
        return None


#: Module-level shared instance for ``tracer = tracer or NULL_TRACER``.
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def _fail(path: str, problem: str) -> None:
    raise ValueError(f"invalid repro-trace/v1 document at {path}: {problem}")


def _validate_span(span: Any, path: str) -> None:
    if not isinstance(span, dict):
        _fail(path, f"span must be an object, got {type(span).__name__}")
    required = {"name", "t0_s", "dur_s", "meta", "children"}
    missing = required - set(span)
    if missing:
        _fail(path, f"missing keys {sorted(missing)}")
    if not isinstance(span["name"], str) or not span["name"]:
        _fail(path, "name must be a non-empty string")
    for key in ("t0_s", "dur_s"):
        value = span[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(path, f"{key} must be a number")
        if value < 0:
            _fail(path, f"{key} must be non-negative, got {value}")
    if not isinstance(span["meta"], dict):
        _fail(path, "meta must be an object")
    if not isinstance(span["children"], list):
        _fail(path, "children must be an array")
    for k, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{k}]")


def validate_trace(doc: Any) -> dict[str, Any]:
    """Check *doc* against the ``repro-trace/v1`` schema.

    Returns the document unchanged on success; raises :class:`ValueError`
    naming the offending path otherwise.  Used by the CLI before writing
    and by the CI smoke step after.
    """
    if not isinstance(doc, dict):
        _fail("$", f"document must be an object, got {type(doc).__name__}")
    if doc.get("schema") != TRACE_SCHEMA:
        _fail("$.schema", f"expected {TRACE_SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("name"), str):
        _fail("$.name", "name must be a string")
    total = doc.get("total_s")
    if not isinstance(total, (int, float)) or isinstance(total, bool) \
            or total < 0:
        _fail("$.total_s", "total_s must be a non-negative number")
    if not isinstance(doc.get("meta"), dict):
        _fail("$.meta", "meta must be an object")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        _fail("$.spans", "spans must be an array")
    for k, span in enumerate(spans):
        _validate_span(span, f"$.spans[{k}]")
    return doc
