"""Hand-written parameter-calculation FSM (VHDL flow).

Implements the same AE servo as :class:`repro.expocu.expoparams` in classic
RTL style: one explicit FSM, one **VHDL IP multiplier** instance
(:mod:`repro.baseline.vhdl_ip`) that is *manually* time-shared between the
exposure step and the gain smoothing — the hand-built counterpart to the
OSSS flow's generated shared-object arbiter (comparison E5).
"""

from __future__ import annotations

from repro.baseline.vhdl_ip import multiplier_blackbox
from repro.rtl.build import RtlBuilder
from repro.rtl.ir import Const, Expr, Mux, Read, RtlModule, mux
from repro.types.spec import bit, unsigned

#: FSM encoding.  The multiplier product is registered after every use
#: (S_ERR, S_STEP, S_GAINM) so the IP's array delay never chains into the
#: update arithmetic — standard VHDL pipelining practice for a 66 MHz
#: target.
S_IDLE, S_ERR, S_STEP, S_APPLY, S_DIV, S_GAINM, S_BLEND = range(7)


def params_rtl(target: int = 128, kp: int = 3, exposure_min: int = 1,
               exposure_max: int = 255) -> RtlModule:
    """The parameter unit as a five-state hand-coded FSM."""
    b = RtlBuilder("params_rtl")
    mean_in = b.input("mean", unsigned(8))
    stats_valid = b.input("stats_valid", bit())

    state = b.register("state", unsigned(3), S_IDLE)
    mean_r = b.register("mean_r", unsigned(8), 0)
    scaled_r = b.register("scaled_r", unsigned(24), 0)
    prod_r = b.register("prod_r", unsigned(24), 0)
    exposure_r = b.register("exposure_r", unsigned(8), 128)
    gain_r = b.register("gain_r", unsigned(8), 64)
    dividend = b.register("dividend", unsigned(22), 0)
    remainder = b.register("remainder", unsigned(22), 0)
    quotient = b.register("quotient", unsigned(22), 0)
    div_cnt = b.register("div_cnt", unsigned(5), 0)
    valid_r = b.register("valid_r", bit(), 0)
    busy_r = b.register("busy_r", bit(), 0)

    in_idle = Read(state).eq(S_IDLE)
    in_err = Read(state).eq(S_ERR)
    in_step = Read(state).eq(S_STEP)
    in_apply = Read(state).eq(S_APPLY)
    in_div = Read(state).eq(S_DIV)
    in_gainm = Read(state).eq(S_GAINM)
    in_blend = Read(state).eq(S_BLEND)

    # ----- manually shared IP multiplier -----
    mean_v = Read(mean_r)
    err = mux(mean_v.lt(target),
              (Const(unsigned(8), target) - mean_v).resized(8),
              (mean_v - target).resized(8))
    darker = mean_v.ge(target)
    step16 = (Read(scaled_r) >> 4).range(15, 0).as_unsigned()
    mul = b.instance(
        "mul_ip", multiplier_blackbox(16, 8),
        a=mux(in_err, err.resized(16),
              mux(in_step, step16, Read(gain_r).resized(16))),
        b=mux(in_err, Const(unsigned(8), kp),
              mux(in_step, Read(exposure_r), Const(unsigned(8), 3))),
    )
    product = mul.output("p")

    # ----- exposure update (uses the registered product in S_APPLY) -----
    raw_step = (Read(prod_r) >> 8).range(7, 0).as_unsigned()
    step = mux(raw_step.eq(0), Const(unsigned(8), 1), raw_step)
    headroom = (Const(unsigned(8), exposure_max) - Read(exposure_r)) \
        .resized(8)
    exposure_dec = mux(Read(exposure_r).gt(step),
                       (Read(exposure_r) - step).resized(8),
                       Const(unsigned(8), exposure_min))
    exposure_inc = mux(headroom.gt(step),
                       (Read(exposure_r) + step).resized(8),
                       Const(unsigned(8), exposure_max))
    exposure_next = mux(darker, exposure_dec, exposure_inc)
    exposure_clamped = mux(exposure_next.lt(exposure_min),
                           Const(unsigned(8), exposure_min), exposure_next)

    # ----- serial restoring divider (runs in S_DIV) -----
    mean22 = mux(mean_v.eq(0), Const(unsigned(8), 1), mean_v).resized(22)
    rem_shift = ((Read(remainder) << 1)
                 | Read(dividend).bit(21).resized(22)).resized(22)
    rem_fits = rem_shift.ge(mean22)
    rem_next = mux(rem_fits, (rem_shift - mean22).resized(22), rem_shift)
    quo_next = mux(rem_fits,
                   ((Read(quotient) << 1) | 1).resized(22),
                   (Read(quotient) << 1).resized(22))
    div_done = Read(div_cnt).eq(21)

    # ----- gain blend (S_BLEND; uses the registered 3*gain product) -----
    gain_target = mux(Read(quotient).gt(255), Const(unsigned(8), 255),
                      Read(quotient).range(7, 0).as_unsigned())
    blended = ((Read(prod_r).range(15, 0).as_unsigned()
                + gain_target.resized(16)) >> 2).range(7, 0).as_unsigned()

    # ----- register updates -----
    def code(value: int) -> Expr:
        return Const(unsigned(3), value)

    b.next(state, mux(in_idle, mux(stats_valid, code(S_ERR), code(S_IDLE)),
                      mux(in_err, code(S_STEP),
                          mux(in_step, code(S_APPLY),
                              mux(in_apply, code(S_DIV),
                                  mux(in_div,
                                      mux(div_done, code(S_GAINM),
                                          code(S_DIV)),
                                      mux(in_gainm, code(S_BLEND),
                                          code(S_IDLE))))))))
    b.next(mean_r, mux(in_idle & stats_valid, mean_in, Read(mean_r)))
    b.next(scaled_r, mux(in_err, product, Read(scaled_r)))
    b.next(prod_r, mux(in_step | in_gainm, product, Read(prod_r)))
    b.next(exposure_r, mux(in_apply, exposure_clamped, Read(exposure_r)))
    b.next(dividend, mux(in_apply, Const(unsigned(22), target << 6),
                         mux(in_div, (Read(dividend) << 1).resized(22),
                             Read(dividend))))
    b.next(remainder, mux(in_apply, Const(unsigned(22), 0),
                          mux(in_div, rem_next, Read(remainder))))
    b.next(quotient, mux(in_apply, Const(unsigned(22), 0),
                         mux(in_div, quo_next, Read(quotient))))
    b.next(div_cnt, mux(in_div, (Read(div_cnt) + 1).resized(5),
                        Const(unsigned(5), 0)))
    b.next(gain_r, mux(in_blend, blended, Read(gain_r)))
    b.next(valid_r, in_blend)
    b.next(busy_r, mux(in_idle, stats_valid,
                       Read(state).ne(S_IDLE)))

    b.output("exposure", Read(exposure_r))
    b.output("gain", Read(gain_r))
    b.output("params_valid", Read(valid_r))
    b.output("busy", Read(busy_r))
    return b.build()
