"""The complete hand-written ExpoCU (VHDL flow) and its camera controller.

Mirrors :class:`repro.expocu.top.ExpoCU` port for port so the two flows are
interchangeable in testbenches and the area/frequency comparison is
apples-to-apples.  The IP multiplier inside the parameter FSM remains a
black box here; :func:`repro.baseline.vhdl_ip.ip_library` supplies the
netlist at link time (paper Fig. 6).
"""

from __future__ import annotations

from repro.baseline.i2c_rtl import i2c_rtl
from repro.baseline.params_rtl import params_rtl
from repro.baseline.units import histogram_rtl, sync_rtl, threshold_rtl
from repro.rtl.build import RtlBuilder
from repro.rtl.ir import Const, Expr, Read, RtlModule, mux
from repro.types.spec import bit, unsigned

#: Camera-control FSM encoding.
C_WAIT, C_REQ_E, C_BUSY_E, C_REQ_G, C_BUSY_G = range(5)


def cam_ctrl_rtl(camera_addr: int = 0x21, reg_exposure: int = 0x10,
                 reg_gain: int = 0x11) -> RtlModule:
    """Pushes exposure and gain over I²C after each parameter update."""
    b = RtlBuilder("cam_ctrl_rtl")
    params_valid = b.input("params_valid", bit())
    exposure = b.input("exposure", unsigned(8))
    gain = b.input("gain", unsigned(8))
    i2c_busy = b.input("i2c_busy", bit())
    i2c_done = b.input("i2c_done", bit())

    state = b.register("state", unsigned(3), C_WAIT)
    expo_r = b.register("expo_r", unsigned(8), 0)
    gain_r = b.register("gain_r", unsigned(8), 0)

    in_wait = Read(state).eq(C_WAIT)
    in_req_e = Read(state).eq(C_REQ_E)
    in_busy_e = Read(state).eq(C_BUSY_E)
    in_req_g = Read(state).eq(C_REQ_G)
    in_busy_g = Read(state).eq(C_BUSY_G)

    def code(value: int) -> Expr:
        return Const(unsigned(3), value)

    b.next(state, mux(in_wait, mux(params_valid, code(C_REQ_E),
                                   code(C_WAIT)),
                      mux(in_req_e, mux(i2c_busy, code(C_BUSY_E),
                                        code(C_REQ_E)),
                          mux(in_busy_e, mux(i2c_done, code(C_REQ_G),
                                             code(C_BUSY_E)),
                              mux(in_req_g, mux(i2c_busy, code(C_BUSY_G),
                                                code(C_REQ_G)),
                                  mux(i2c_done, code(C_WAIT),
                                      code(C_BUSY_G)))))))
    latch = in_wait & params_valid
    b.next(expo_r, mux(latch, exposure, Read(expo_r)))
    b.next(gain_r, mux(latch, gain, Read(gain_r)))

    b.output("i2c_start", in_req_e | in_req_g)
    b.output("i2c_dev", Const(unsigned(7), camera_addr))
    b.output("i2c_reg", mux(in_req_g | in_busy_g,
                            Const(unsigned(8), reg_gain),
                            Const(unsigned(8), reg_exposure)))
    b.output("i2c_data", mux(in_req_g | in_busy_g, Read(gain_r),
                             Read(expo_r)))
    b.output("ctrl_busy", in_req_e | in_busy_e | in_req_g | in_busy_g)
    return b.build()


def expocu_rtl(frame_pixels: int = 256, target: int = 128,
               count_bits: int = 12, i2c_divider: int = 4) -> RtlModule:
    """The full baseline ExpoCU, same ports as the OSSS top level."""
    b = RtlBuilder("expocu_rtl")
    pix = b.input("pix", unsigned(8))
    pix_valid = b.input("pix_valid", bit())
    line_strobe = b.input("line_strobe", bit())
    frame_strobe = b.input("frame_strobe", bit())
    sda_in = b.input("sda_in", bit())

    sync = b.instance("sync", sync_rtl(), pix_valid=pix_valid,
                      line_strobe=line_strobe, frame_strobe=frame_strobe)
    hist = b.instance(
        "hist", histogram_rtl(count_bits),
        pix=pix,
        pix_valid=sync.output("pix_valid_sync"),
        frame_start=sync.output("frame_start"),
    )
    thresh_kwargs = {
        f"hist{i}": hist.output(f"hist{i}") for i in range(8)
    }
    thresh = b.instance(
        "thresh", threshold_rtl(count_bits, frame_pixels),
        hist_valid=hist.output("hist_valid"), **thresh_kwargs,
    )
    params = b.instance(
        "params", params_rtl(target),
        mean=thresh.output("mean"),
        stats_valid=thresh.output("stats_valid"),
    )
    ctrl = b.instance(
        "ctrl", cam_ctrl_rtl(),
        params_valid=params.output("params_valid"),
        exposure=params.output("exposure"),
        gain=params.output("gain"),
    )
    i2c = b.instance(
        "i2c", i2c_rtl(i2c_divider),
        start=ctrl.output("i2c_start"),
        dev_addr=ctrl.output("i2c_dev"),
        reg_addr=ctrl.output("i2c_reg"),
        data=ctrl.output("i2c_data"),
        sda_in=sda_in,
    )
    ctrl.connect("i2c_busy", i2c.output("busy"))
    ctrl.connect("i2c_done", i2c.output("done"))

    b.output("scl", i2c.output("scl"))
    b.output("sda_out", i2c.output("sda_out"))
    b.output("sda_oe", i2c.output("sda_oe"))
    b.output("exposure", params.output("exposure"))
    b.output("gain", params.output("gain"))
    b.output("mean", thresh.output("mean"))
    b.output("too_dark", thresh.output("too_dark"))
    b.output("too_bright", thresh.output("too_bright"))
    b.output("ctrl_busy", ctrl.output("ctrl_busy"))
    return b.build()
