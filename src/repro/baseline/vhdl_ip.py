"""Pre-synthesized "VHDL IP" blocks (paper Fig. 6, §2).

The paper integrates existing VHDL IP — *"some components like multipliers
and specific constructs are to be integrated as existing VHDL IP"* — by
synthesizing it separately and linking at the netlist level.  This module
plays the IP vendor: it provides combinational multiplier IP as

* a *black-box* RTL module (ports only, ``blackbox_ip`` attribute) that
  designs instantiate, and
* the separately mapped gate-level :class:`~repro.netlist.circuit.Circuit`
  that the netlist linker splices in.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit
from repro.netlist.opt import optimize
from repro.netlist.techmap import map_module
from repro.rtl.ir import Read, RtlModule
from repro.types.spec import unsigned


def multiplier_blackbox(a_width: int = 16, b_width: int = 8) -> RtlModule:
    """A black-box instance shell for the ``mulAxB`` IP.

    The module carries no logic; the technology mapper leaves a black box
    in the netlist and :func:`ip_library` supplies the implementation.
    """
    name = f"ip_mul{a_width}x{b_width}"
    shell = RtlModule(name)
    shell.add_input("a", unsigned(a_width))
    shell.add_input("b", unsigned(b_width))
    # Outputs must exist for instance wiring; the expression is never
    # mapped (the blackbox_ip marker short-circuits the mapper).
    a = shell.inputs["a"]
    b = shell.inputs["b"]
    shell.add_output("p", (Read(a) * Read(b)))
    shell.attributes["blackbox_ip"] = name
    return shell


def multiplier_ip_circuit(a_width: int = 16, b_width: int = 8) -> Circuit:
    """The 'vendor netlist': a separately synthesized array multiplier."""
    name = f"ip_mul{a_width}x{b_width}"
    rtl = RtlModule(name)
    a = rtl.add_input("a", unsigned(a_width))
    b = rtl.add_input("b", unsigned(b_width))
    rtl.add_output("p", Read(a) * Read(b))
    circuit = map_module(rtl)
    optimize(circuit)
    return circuit


def ip_library(a_width: int = 16, b_width: int = 8) -> dict[str, Circuit]:
    """The IP library handed to :func:`repro.netlist.linker.link`."""
    name = f"ip_mul{a_width}x{b_width}"
    return {name: multiplier_ip_circuit(a_width, b_width)}
