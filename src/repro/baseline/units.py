"""Hand-written RTL versions of the ExpoCU units — the paper's VHDL flow.

These modules implement exactly the algorithms of :mod:`repro.expocu`, but
the way the paper's reference team wrote VHDL: explicit registers, explicit
next-state equations, hand-encoded FSMs, manual resource sharing.  They and
the OSSS-synthesized modules go through the *same* backend
(:mod:`repro.netlist`), which is what makes the paper's area/frequency
comparison (§12) reproducible.
"""

from __future__ import annotations

from repro.rtl.build import RtlBuilder
from repro.rtl.ir import Concat, Const, Expr, Mux, Read, RtlModule, mux
from repro.types.spec import bit, bits, unsigned


def sync_rtl() -> RtlModule:
    """Camera synchronizer: three 4-bit shift registers + edge detect."""
    b = RtlBuilder("sync_rtl")
    pix_valid = b.input("pix_valid", bit())
    line_strobe = b.input("line_strobe", bit())
    frame_strobe = b.input("frame_strobe", bit())
    outputs = {}
    for name, strobe in (("valid", pix_valid), ("line", line_strobe),
                         ("frame", frame_strobe)):
        history = b.register(f"{name}_hist", bits(4), 0)
        shifted = Concat([Slice3(Read(history)), strobe_bit(strobe)])
        b.next(history, shifted)
        outputs[name] = history
    b.output("pix_valid_sync", Read(outputs["valid"]).bit(1))
    b.output("line_start", rising(Read(outputs["line"])))
    b.output("frame_start", rising(Read(outputs["frame"])))
    return b.build()


def Slice3(expr: Expr) -> Expr:
    """Lower three bits (shift-register body)."""
    return expr.range(2, 0)


def strobe_bit(strobe: Expr) -> Expr:
    return strobe.as_bits() if strobe.spec.kind != "bv" else strobe


def rising(history: Expr) -> Expr:
    """0→1 edge on the synchronized history (bit1 new, bit2 old)."""
    return history.bit(1) & ~history.bit(2)


def histogram_rtl(count_bits: int = 12) -> RtlModule:
    """Eight bin counters with a decoder, latch and clear — classic RTL."""
    b = RtlBuilder("histogram_rtl")
    pix = b.input("pix", unsigned(8))
    pix_valid = b.input("pix_valid", bit())
    frame_start = b.input("frame_start", bit())
    bin_sel = b.wire("bin_sel", pix.range(7, 5))
    valid_out = b.register("hist_valid_r", bit(), 0)
    b.next(valid_out, frame_start)
    b.output("hist_valid", Read(valid_out))
    for i in range(8):
        counter = b.register(f"bin{i}", unsigned(count_bits), 0)
        latch = b.register(f"latch{i}", unsigned(count_bits), 0)
        hit = pix_valid & bin_sel.eq(i)
        incremented = (Read(counter) + 1).resized(count_bits)
        counted = mux(hit, incremented, Read(counter))
        b.next(counter, mux(frame_start, Const(unsigned(count_bits), 0),
                            counted))
        b.next(latch, mux(frame_start, Read(counter), Read(latch)))
        b.output(f"hist{i}", Read(latch))
    return b.build()


#: Bin luminance centers, matching the OSSS ThresholdUnit.
BIN_CENTERS = (16, 48, 80, 112, 144, 176, 208, 240)


def threshold_rtl(count_bits: int = 12, frame_pixels: int = 256,
                  low_t: int = 64, high_t: int = 192) -> RtlModule:
    """Sequential weighted MAC over the bins, explicit 4-state FSM."""
    if frame_pixels & (frame_pixels - 1):
        raise ValueError("frame_pixels must be a power of two")
    shift = frame_pixels.bit_length() - 1
    b = RtlBuilder("threshold_rtl")
    hist_valid = b.input("hist_valid", bit())
    hist = [b.input(f"hist{i}", unsigned(count_bits)) for i in range(8)]

    # FSM: 0 idle, 1 accumulate (with bin counter), 2 normalize, 3 pulse.
    state = b.register("state", unsigned(2), 0)
    index = b.register("index", unsigned(3), 0)
    accum = b.register("accum", unsigned(32), 0)
    mean_r = b.register("mean_r", unsigned(8), 0)
    dark_r = b.register("dark_r", bit(), 0)
    bright_r = b.register("bright_r", bit(), 0)
    valid_r = b.register("valid_r", bit(), 0)

    # Weighted addend selected by the bin index (hand-built mux tree).
    addend: Expr = (hist[0] * BIN_CENTERS[0]).resized(32)
    for i in range(1, 8):
        addend = Mux(Read(index).eq(i),
                     (hist[i] * BIN_CENTERS[i]).resized(32), addend)

    in_idle = Read(state).eq(0)
    in_acc = Read(state).eq(1)
    in_norm = Read(state).eq(2)
    last_bin = Read(index).eq(7)

    b.next(state, mux(in_idle,
                      mux(hist_valid, Const(unsigned(2), 1),
                          Const(unsigned(2), 0)),
                      mux(in_acc,
                          mux(last_bin, Const(unsigned(2), 2),
                              Const(unsigned(2), 1)),
                          mux(in_norm, Const(unsigned(2), 3),
                              Const(unsigned(2), 0)))))
    b.next(index, mux(in_acc, (Read(index) + 1).resized(3),
                      Const(unsigned(3), 0)))
    b.next(accum, mux(in_idle, Const(unsigned(32), 0),
                      mux(in_acc, (Read(accum) + addend).resized(32),
                          Read(accum))))
    mean_now = (Read(accum) >> shift).resized(8)
    b.next(mean_r, mux(in_norm, mean_now, Read(mean_r)))
    b.next(dark_r, mux(in_norm, mean_now.lt(low_t), Read(dark_r)))
    b.next(bright_r, mux(in_norm, mean_now.gt(high_t), Read(bright_r)))
    b.next(valid_r, in_norm)
    b.output("mean", Read(mean_r))
    b.output("too_dark", Read(dark_r))
    b.output("too_bright", Read(bright_r))
    b.output("stats_valid", Read(valid_r))
    return b.build()


def resetctl_rtl(stretch: int = 8) -> RtlModule:
    """Reset stretcher: counter + comparator."""
    b = RtlBuilder("resetctl_rtl")
    count = b.register("count", unsigned(8), 0)
    done = Read(count).ge(stretch)
    b.next(count, mux(done, Read(count), (Read(count) + 1).resized(8)))
    b.output("sys_reset", done.logical_not())
    return b.build()
