"""Hand-written I²C master FSM (VHDL flow).

The RTL counterpart of :class:`repro.expocu.i2c.I2cMaster`: an explicit
seven-state FSM with a quarter-period prescaler, a bit counter, a byte
counter and a shift register — the way the paper's team coded it in VHDL
(*"The VHDL implementation took slightly longer using the RTL coding
style"*, §12).  Protocol-compatible with the camera model's slave.
"""

from __future__ import annotations

from repro.rtl.build import RtlBuilder
from repro.rtl.ir import Const, Expr, Read, RtlModule, mux
from repro.types.spec import bit, unsigned

#: FSM encoding.
(
    S_IDLE,
    S_START,
    S_BIT,
    S_ACK,
    S_STOP,
    S_DONE,
) = range(6)


def i2c_rtl(divider: int = 4) -> RtlModule:
    """Write-only I²C master as an explicit FSM."""
    b = RtlBuilder("i2c_rtl")
    start = b.input("start", bit())
    dev_addr = b.input("dev_addr", unsigned(7))
    reg_addr = b.input("reg_addr", unsigned(8))
    data = b.input("data", unsigned(8))
    sda_in = b.input("sda_in", bit())

    state = b.register("state", unsigned(3), S_IDLE)
    phase = b.register("phase", unsigned(2), 0)      # quarter within symbol
    prescale = b.register("prescale", unsigned(16), 0)
    bit_cnt = b.register("bit_cnt", unsigned(3), 0)
    byte_cnt = b.register("byte_cnt", unsigned(2), 0)
    shift = b.register("shift", unsigned(8), 0)
    scl_r = b.register("scl_r", bit(), 1)
    sda_r = b.register("sda_r", bit(), 1)
    oe_r = b.register("oe_r", bit(), 1)
    busy_r = b.register("busy_r", bit(), 0)
    done_r = b.register("done_r", bit(), 0)
    ack_err = b.register("ack_err", bit(), 0)

    in_idle = Read(state).eq(S_IDLE)
    in_start = Read(state).eq(S_START)
    in_bit = Read(state).eq(S_BIT)
    in_ack = Read(state).eq(S_ACK)
    in_stop = Read(state).eq(S_STOP)
    in_done = Read(state).eq(S_DONE)

    tick = Read(prescale).eq(divider - 1)
    b.next(prescale, mux(in_idle | in_done, Const(unsigned(16), 0),
                         mux(tick, Const(unsigned(16), 0),
                             (Read(prescale) + 1).resized(16))))

    last_phase = Read(phase).eq(3)
    start_last = Read(phase).eq(2)  # START uses three quarters
    advance = tick

    # Byte to transmit, selected by byte counter.
    address_byte = (dev_addr.resized(8) << 1).resized(8)
    tx_byte = mux(Read(byte_cnt).eq(0), address_byte,
                  mux(Read(byte_cnt).eq(1), reg_addr, data))

    def code(value: int) -> Expr:
        return Const(unsigned(3), value)

    # ----- state transitions (advance once per quarter period) -----
    next_after_ack = mux(Read(byte_cnt).eq(2), code(S_STOP), code(S_BIT))
    state_adv = mux(
        in_start, mux(start_last, code(S_BIT), code(S_START)),
        mux(in_bit,
            mux(last_phase & Read(bit_cnt).eq(7), code(S_ACK), code(S_BIT)),
            mux(in_ack, mux(last_phase, next_after_ack, code(S_ACK)),
                mux(in_stop, mux(start_last, code(S_DONE), code(S_STOP)),
                    code(S_IDLE)))))
    b.next(state, mux(in_idle, mux(start, code(S_START), code(S_IDLE)),
                      mux(in_done, code(S_IDLE),
                          mux(advance, state_adv, Read(state)))))

    # ----- phase counter -----
    phase_wrap = mux(in_start | in_stop, start_last, last_phase)
    b.next(phase, mux(in_idle | in_done, Const(unsigned(2), 0),
                      mux(advance,
                          mux(phase_wrap, Const(unsigned(2), 0),
                              (Read(phase) + 1).resized(2)),
                          Read(phase))))

    # ----- bit / byte counters and shift register -----
    bit_done = in_bit & advance & last_phase
    ack_done = in_ack & advance & last_phase
    b.next(bit_cnt, mux(in_idle | ack_done, Const(unsigned(3), 0),
                        mux(bit_done, (Read(bit_cnt) + 1).resized(3),
                            Read(bit_cnt))))
    b.next(byte_cnt, mux(in_idle, Const(unsigned(2), 0),
                         mux(ack_done, (Read(byte_cnt) + 1).resized(2),
                             Read(byte_cnt))))
    load_shift = (in_start & advance & start_last) | ack_done
    b.next(shift, mux(load_shift,
                      mux(in_start, address_byte,
                          mux(Read(byte_cnt).eq(0), reg_addr, data)),
                      mux(bit_done, (Read(shift) << 1).resized(8),
                          Read(shift))))

    # ----- pad drivers -----
    # START: quarters = (sda high, sda low, scl low).
    # BIT:   quarters = (drive bit / scl low, scl high, scl high, scl low).
    # ACK:   quarters = (release sda, scl high, sample, scl low).
    # STOP:  quarters = (sda low / scl low->high, scl high, sda high).
    ph = Read(phase)
    scl_next = mux(
        in_start, mux(advance & start_last, Const(bit(), 0), Read(scl_r)),
        mux(in_bit | in_ack,
            mux(advance,
                mux(ph.eq(0), Const(bit(), 1),
                    mux(ph.eq(2), Const(bit(), 0), Read(scl_r))),
                Read(scl_r)),
            mux(in_stop,
                mux(advance & ph.eq(0), Const(bit(), 1), Read(scl_r)),
                mux(in_idle, Const(bit(), 1), Read(scl_r)))))
    b.next(scl_r, scl_next)

    sda_next = mux(
        in_start, mux(advance & ph.eq(0), Const(bit(), 0), Read(sda_r)),
        mux(in_bit,
            mux(advance & last_phase | (in_bit & Read(phase).eq(0)),
                Read(shift).bit(7), Read(sda_r)),
            mux(in_stop,
                mux(advance,
                    mux(ph.eq(1), Const(bit(), 1), Const(bit(), 0)),
                    Read(sda_r)),
                mux(in_idle, Const(bit(), 1), Read(sda_r)))))
    b.next(sda_r, sda_next)

    b.next(oe_r, mux(in_ack, Const(bit(), 0),
                     mux(in_idle | in_start | in_bit | in_stop | in_done,
                         Const(bit(), 1), Read(oe_r))))

    sampled_ack = in_ack & advance & ph.eq(1)
    b.next(ack_err, mux(in_idle & start, Const(bit(), 0),
                        mux(sampled_ack & sda_in, Const(bit(), 1),
                            Read(ack_err))))

    b.next(busy_r, mux(in_idle, start, Read(state).ne(S_DONE)))
    b.next(done_r, in_done)

    b.output("scl", Read(scl_r))
    b.output("sda_out", Read(sda_r))
    b.output("sda_oe", Read(oe_r))
    b.output("busy", Read(busy_r))
    b.output("done", Read(done_r))
    b.output("ack_error", Read(ack_err))
    return b.build()
