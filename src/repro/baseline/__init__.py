"""The hand-written "VHDL flow" baseline of the ExpoCU (paper §12)."""

from repro.baseline.i2c_rtl import i2c_rtl
from repro.baseline.params_rtl import params_rtl
from repro.baseline.top_rtl import cam_ctrl_rtl, expocu_rtl
from repro.baseline.units import histogram_rtl, resetctl_rtl, sync_rtl, threshold_rtl
from repro.baseline.vhdl_ip import ip_library, multiplier_blackbox, multiplier_ip_circuit

__all__ = [
    "cam_ctrl_rtl",
    "expocu_rtl",
    "histogram_rtl",
    "i2c_rtl",
    "ip_library",
    "multiplier_blackbox",
    "multiplier_ip_circuit",
    "params_rtl",
    "resetctl_rtl",
    "sync_rtl",
    "threshold_rtl",
]
