"""The serve job model: validated specs, one shared execution path.

A **job** is one unit of work a client can submit to ``repro serve``:
a flow build, a netlist analysis, a fault-injection campaign or a
design-space exploration.  :func:`make_spec` validates raw parameters
against the kind's schema and merges defaults; :func:`run_job` executes
the spec through exactly the same functions the one-shot CLI commands
call (:func:`repro.eval.run_osss_flow`, :func:`repro.fault
.expocu_campaign`, :func:`repro.dse.explore`, ...), so a job's rendered
result is byte-identical to the corresponding ``repro build --json`` /
``repro inject --format json`` / ``repro dse --format json`` /
``repro analyze --format json`` output — asserted by the serve tests
and the CI serve-smoke job.

Because parameters are canonically ordered and default-completed,
:meth:`JobSpec.fingerprint` is stable across clients: two submissions
that mean the same work digest identically, which is what the
scheduler's request-coalescing keys on.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping

from repro.store import ArtifactStore, digest_doc

#: Fingerprint domain tag (bump when job semantics change).
JOB_SCHEMA = "repro-job/v1"


class JobError(ValueError):
    """A submission is malformed: unknown kind, bad parameter."""


class JobCancelled(RuntimeError):
    """Raised inside a running job when its cancellation was requested.

    Deliberately *not* a member of any flow's recoverable-error tuple
    (e.g. :data:`repro.dse.evaluate.POINT_ERRORS`), so a cancellation
    unwinds the whole job instead of being recorded as a point failure.
    """


#: Parameter schema per job kind: ``name -> (default, choices | type)``.
#: Defaults mirror the one-shot CLI commands exactly — a parameterless
#: job submission must produce the same bytes as the bare CLI command.
JOB_PARAMS: dict[str, dict[str, tuple[Any, Any]]] = {
    "build": {
        "flow": ("both", ("osss", "vhdl", "both")),
    },
    "analyze": {},
    "inject": {
        "flow": ("rtl", ("rtl", "netlist")),
        "faults": (50, int),
        "seed": (1, int),
        "hardening": ("none", ("none", "tmr", "parity", "tmr+parity")),
        "backend": ("event", ("event", "compiled", "bitparallel")),
        "collapse": (False, bool),
    },
    "dse": {
        "space": ("tiny", ("tiny", "full")),
        "side": (4, int),
        "strategy": ("factorial", ("factorial", "evolutionary")),
        "fraction": (1, int),
        "population": (8, int),
        "generations": (6, int),
        "seed": (1, int),
        "faults": (24, int),
        "campaign_seed": (2004, int),
        "backend": ("bitparallel", ("event", "compiled", "bitparallel")),
    },
}

#: The kinds a server accepts, in presentation order.
JOB_KINDS = tuple(JOB_PARAMS)


class JobSpec:
    """One validated, default-completed job description."""

    __slots__ = ("kind", "params")

    def __init__(self, kind: str, params: dict[str, Any]) -> None:
        self.kind = kind
        self.params = params

    def fingerprint(self) -> str:
        """Canonical digest: the scheduler's coalescing key."""
        return digest_doc([JOB_SCHEMA, self.kind,
                           sorted(self.params.items())])

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    def __repr__(self) -> str:
        return f"JobSpec({self.kind!r}, {self.params!r})"


def make_spec(kind: str, params: Mapping[str, Any] | None = None) -> JobSpec:
    """Validate *kind* / *params* and return a canonical :class:`JobSpec`.

    Unknown kinds, unknown parameter names, wrong types and
    out-of-range choices all raise :class:`JobError` with a message
    naming the offender — the server maps these to HTTP 400.
    """
    schema = JOB_PARAMS.get(kind)
    if schema is None:
        raise JobError(f"unknown job kind {kind!r} "
                       f"(expected one of {', '.join(JOB_KINDS)})")
    params = dict(params or {})
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise JobError(f"unknown parameter(s) for {kind!r}: "
                       f"{', '.join(unknown)}")
    complete: dict[str, Any] = {}
    for name, (default, constraint) in schema.items():
        value = params.get(name, default)
        if isinstance(constraint, tuple):
            if value not in constraint:
                raise JobError(
                    f"{kind}.{name} must be one of "
                    f"{', '.join(map(repr, constraint))}, got {value!r}")
        elif constraint is bool:
            if not isinstance(value, bool):
                raise JobError(f"{kind}.{name} must be a boolean, "
                               f"got {value!r}")
        elif constraint is int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise JobError(f"{kind}.{name} must be an integer, "
                               f"got {value!r}")
        complete[name] = value
    return JobSpec(kind, complete)


def default_design():
    """The bundled ExpoCU top every parameterless flow command builds."""
    from repro.expocu import ExpoCU
    from repro.hdl import Clock, NS, Signal
    from repro.types import Bit
    from repro.types.spec import bit

    return ExpoCU[16, 16]("expocu", Clock("clk", 15 * NS),
                          Signal("rst", bit(), Bit(1)))


def run_job(spec: JobSpec,
            store: ArtifactStore | None = None,
            tracer=None,
            guard: Callable[[str], None] | None = None,
            use_journal: bool = False) -> dict[str, Any]:
    """Execute *spec* and return its JSON-able result payload.

    The payload is exactly the document the matching CLI command
    prints in JSON mode; :func:`render_result` turns it into the same
    bytes.  *guard* is threaded into every memoized stage for
    cancellation at stage boundaries; *use_journal* lets inject jobs
    checkpoint/resume through the store's campaign journal (the serve
    scheduler enables it for coalescable submissions only, so no two
    concurrent campaigns share a journal file).
    """
    params = spec.params
    if spec.kind == "build":
        from repro.eval import run_osss_flow, run_vhdl_flow

        results = []
        if params["flow"] in ("osss", "both"):
            results.append(run_osss_flow(default_design(), "osss",
                                         tracer=tracer, store=store,
                                         guard=guard))
        if params["flow"] in ("vhdl", "both"):
            from repro.baseline import expocu_rtl

            results.append(run_vhdl_flow(expocu_rtl(), "vhdl",
                                         tracer=tracer, store=store,
                                         guard=guard))
        return {"flows": [result.summary() for result in results]}

    if spec.kind == "analyze":
        from repro.eval import run_netlist_analysis
        from repro.store import serialize_testability

        circuit, analysis = run_netlist_analysis(
            default_design(), tracer=tracer, store=store, guard=guard)
        return serialize_testability(analysis, circuit)

    if spec.kind == "inject":
        from repro.fault import expocu_campaign

        if guard is not None:
            # Campaigns run through the fault injector, not the stage
            # runner; check once up front so a queued-then-cancelled
            # job never starts simulating.
            guard("campaign")
        journal = None
        resume = False
        if use_journal and store is not None:
            tag = "serve_" + spec.fingerprint()[:16]
            journal = str(store.journal_path(tag))
            resume = True
        result = expocu_campaign(
            flow=params["flow"],
            faults=params["faults"],
            seed=params["seed"],
            hardening=params["hardening"],
            backend=params["backend"],
            collapse=params["collapse"],
            tracer=tracer,
            journal=journal,
            resume=resume,
        )
        return result.as_dict()

    if spec.kind == "dse":
        from repro.dse import (
            EvolutionaryConfig,
            expocu_campaign_spec,
            expocu_space,
            explore,
        )

        space = expocu_space(params["space"], side=params["side"])
        campaign = expocu_campaign_spec(side=params["side"],
                                        faults=params["faults"],
                                        seed=params["campaign_seed"],
                                        backend=params["backend"])
        evolution = EvolutionaryConfig(population=params["population"],
                                       generations=params["generations"],
                                       seed=params["seed"])
        result = explore(space, campaign, strategy=params["strategy"],
                         fraction=params["fraction"], evolution=evolution,
                         store=store, tracer=tracer, guard=guard)
        return result.doc

    raise JobError(f"unknown job kind {spec.kind!r}")  # pragma: no cover


def render_result(kind: str, payload: dict[str, Any]) -> str:
    """The payload as the exact bytes the one-shot CLI prints.

    Every JSON-mode CLI output in this repo is
    ``json.dumps(doc, indent=2) + "\\n"`` — the single convention that
    makes server results diffable against direct runs.
    """
    return json.dumps(payload, indent=2) + "\n"


def span_event(span) -> dict[str, Any]:
    """Reduce a closed profiler span to one JSON-able progress event."""
    event: dict[str, Any] = {
        "kind": "span",
        "span": span.name,
        "dur_s": round(span.dur if span.dur is not None else 0.0, 6),
    }
    meta = {key: value for key, value in span.snapshot().items()
            if value is None or isinstance(value, (str, int, float, bool))}
    if meta:
        event["meta"] = meta
    return event
