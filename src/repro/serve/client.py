"""Thin client for the serve protocol (used by ``repro submit``).

:class:`ServeClient` speaks the JSON-over-HTTP protocol of
:mod:`repro.serve.server` over TCP or a Unix domain socket, one
connection per request (matching the server's HTTP/1.0 discipline).
Besides the 1:1 endpoint wrappers it offers
:meth:`ServeClient.run` — submit, wait, and return the rendered result
text, which is byte-identical to the one-shot CLI output for the same
job.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Mapping


class ServeError(RuntimeError):
    """A request failed; carries the HTTP status and the server's say."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket."""

    def __init__(self, path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServeClient:
    """One server endpoint (TCP host/port or Unix socket path)."""

    def __init__(self, socket_path: str | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0) -> None:
        if not socket_path and not port:
            raise ValueError("need a socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self, timeout: float) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path, timeout)
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None,
                 timeout: float | None = None) -> tuple[int, bytes]:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn = self._connection(timeout or self.timeout)
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    @staticmethod
    def _decode(status: int, raw: bytes) -> dict[str, Any]:
        try:
            doc = json.loads(raw)
        except ValueError:
            doc = {"error": raw.decode(errors="replace")}
        if status >= 400:
            raise ServeError(status, doc.get("error", f"HTTP {status}"))
        return doc

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        status, raw = self._request("GET", "/healthz")
        return self._decode(status, raw)

    def stats(self) -> dict[str, Any]:
        status, raw = self._request("GET", "/stats")
        return self._decode(status, raw)

    def submit(self, kind: str, params: Mapping[str, Any] | None = None,
               force: bool = False) -> dict[str, Any]:
        """Submit a job; returns its status document (with ``deduped``)."""
        status, raw = self._request("POST", "/jobs", body={
            "kind": kind, "params": dict(params or {}), "force": force,
        })
        return self._decode(status, raw)["job"]

    def jobs(self) -> list[dict[str, Any]]:
        status, raw = self._request("GET", "/jobs")
        return self._decode(status, raw)["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        status, raw = self._request("GET", f"/jobs/{job_id}")
        return self._decode(status, raw)["job"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        status, raw = self._request("POST", f"/jobs/{job_id}/cancel")
        return self._decode(status, raw)

    def events(self, job_id: str, since: int = 0,
               wait_s: float = 0.0) -> dict[str, Any]:
        status, raw = self._request(
            "GET", f"/jobs/{job_id}/events?since={since}&wait={wait_s}",
            timeout=self.timeout + wait_s)
        return self._decode(status, raw)

    def shutdown(self) -> dict[str, Any]:
        status, raw = self._request("POST", "/shutdown")
        return self._decode(status, raw)

    # ------------------------------------------------------------------
    # composite operations
    # ------------------------------------------------------------------
    def result_text(self, job_id: str, timeout_s: float = 600.0,
                    poll_wait_s: float = 10.0) -> str:
        """Block until the job finishes; return the rendered result.

        Raises :class:`ServeError` on failure/cancellation (status 500
        / 409) or :class:`TimeoutError` when *timeout_s* elapses first.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still running after {timeout_s:.0f}s")
            wait = max(0.0, min(poll_wait_s, remaining))
            status, raw = self._request(
                "GET", f"/jobs/{job_id}/result?wait={wait}",
                timeout=self.timeout + wait)
            if status == 200:
                return raw.decode()
            if status == 202:
                continue
            self._decode(status, raw)  # raises ServeError with detail

    def run(self, kind: str, params: Mapping[str, Any] | None = None,
            force: bool = False, timeout_s: float = 600.0) -> str:
        """Submit and wait: the one-call path ``repro submit`` uses."""
        job = self.submit(kind, params, force=force)
        return self.result_text(job["id"], timeout_s=timeout_s)
