"""Flow-as-a-service: the ``repro serve`` job server and its client.

The package splits along the protocol boundary:

:mod:`repro.serve.jobs`
    The job model — validated :class:`JobSpec`\\ s, the
    :func:`run_job` execution path shared with the one-shot CLI, and
    the byte-exact :func:`render_result` convention.
:mod:`repro.serve.scheduler`
    Queue, fingerprint-based request coalescing, and the two
    executors (supervised worker processes / in-process threads).
:mod:`repro.serve.server`
    The JSON-over-HTTP daemon (TCP or Unix socket) with graceful
    drain on SIGTERM/SIGINT.
:mod:`repro.serve.client`
    :class:`ServeClient`, the thin client behind ``repro submit``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import (
    JOB_KINDS,
    JobCancelled,
    JobError,
    JobSpec,
    default_design,
    make_spec,
    render_result,
    run_job,
)
from repro.serve.scheduler import Job, JobSession, Scheduler, SchedulerClosed
from repro.serve.server import build_server, run_server

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobCancelled",
    "JobError",
    "JobSession",
    "JobSpec",
    "Scheduler",
    "SchedulerClosed",
    "ServeClient",
    "ServeError",
    "build_server",
    "default_design",
    "make_spec",
    "render_result",
    "run_job",
    "run_server",
]
