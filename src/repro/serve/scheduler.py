"""Job scheduling for ``repro serve``: queue, coalescing, executors.

The :class:`Scheduler` owns every job the server has seen.  Its three
responsibilities:

**Lifecycle.**  Jobs move ``queued → running → done | failed |
cancelled``; every transition appends a sequenced event to the job's
event log, which the ``/jobs/<id>/events`` long-poll endpoint streams.
While a job runs, its profiler spans close into the same log (via
:class:`repro.obs.Tracer`'s ``on_close`` hook worker-side, relayed
through the pool's event pipe), so clients watch stages finish live.

**Coalescing.**  Submissions are keyed by
:meth:`~repro.serve.jobs.JobSpec.fingerprint`.  While a job for a
fingerprint is queued or running, an identical submission attaches to
it instead of enqueuing a duplicate — both clients poll the same job id
and read the same bytes, and the underlying stages compute once (the
dedup tests assert this through the store's stage counters).
``force=True`` opts a submission out of coalescing in both directions:
it neither joins an active job nor becomes a target for later ones.

**Execution.**  With ``workers >= 2`` jobs run on a
:class:`repro.exec.SupervisedPool` in stream mode — crash supervision,
deadlines and cancel-by-kill come from the same machinery fault
campaigns use.  With fewer workers, or when the pool cannot start
(no usable start method, spent respawn budget), the scheduler degrades
to in-process worker threads sharing the server's store; cancellation
then rides the per-stage ``guard`` hook and takes effect at the next
stage boundary.
"""

from __future__ import annotations

import functools
import threading
import time
from collections import deque
from typing import Any, Callable, Mapping

from repro.exec.pool import SupervisedPool
from repro.obs.profiler import Tracer
from repro.store import ArtifactStore

from repro.serve.jobs import (
    JobCancelled,
    JobSpec,
    make_spec,
    run_job,
    span_event,
)

#: States a job can rest in (no further transitions).
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Per-job event log cap; beyond it events are counted, not stored.
MAX_EVENTS = 1000


class SchedulerClosed(RuntimeError):
    """Submission refused: the scheduler is draining or stopped."""


class Job:
    """One submission's full lifecycle record (scheduler-internal)."""

    __slots__ = ("id", "spec", "fingerprint", "force", "state",
                 "submitted_at", "started_at", "finished_at", "payload",
                 "error", "events", "event_seq", "events_dropped",
                 "dedup_count", "use_journal", "cancel_event", "idx")

    def __init__(self, job_id: str, spec: JobSpec, force: bool,
                 use_journal: bool) -> None:
        self.id = job_id
        self.spec = spec
        self.fingerprint = spec.fingerprint()
        self.force = force
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.payload: dict[str, Any] | None = None
        self.error: str | None = None
        self.events: list[dict[str, Any]] = []
        self.event_seq = 0
        self.events_dropped = 0
        self.dedup_count = 0
        self.use_journal = use_journal
        self.cancel_event = threading.Event()
        self.idx: int | None = None  # stream index while on the pool

    def as_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "params": dict(self.spec.params),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "submitted_at": round(self.submitted_at, 3),
            "dedup_count": self.dedup_count,
        }
        if self.started_at is not None:
            doc["started_at"] = round(self.started_at, 3)
        if self.finished_at is not None:
            doc["finished_at"] = round(self.finished_at, 3)
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobSession:
    """Worker-process session for the supervised pool (picklable).

    Each worker builds its own :class:`ArtifactStore` handle on the
    shared root (flock arbitration keeps them coherent) and runs jobs
    through :func:`repro.serve.jobs.run_job`.  Exceptions become
    ``{"ok": False}`` results — a bad job must never look like a
    worker crash to the supervisor.  ``bind_emitter`` (stream-mode
    hook) wires a per-job tracer whose closing spans stream back to
    the parent as progress events.
    """

    def __init__(self, store_root: str | None) -> None:
        self.store_root = store_root
        self.meta = {"session": "repro-serve", "store": store_root}
        self._store: ArtifactStore | None = None
        self._emit: Callable[[Any], None] | None = None

    def bind_emitter(self, emit: Callable[[Any], None]) -> None:
        self._emit = emit

    def run(self, task: tuple[str, dict[str, Any], bool]) -> dict[str, Any]:
        kind, params, use_journal = task
        if self.store_root is not None and self._store is None:
            self._store = ArtifactStore(self.store_root)
        tracer = None
        emit = self._emit
        if emit is not None:
            tracer = Tracer(f"job:{kind}",
                            on_close=lambda span: emit(span_event(span)))
        try:
            payload = run_job(make_spec(kind, params), store=self._store,
                              tracer=tracer, use_journal=use_journal)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}
        return {"ok": True, "payload": payload}


class Scheduler:
    """Queue + coalescing + executor behind the serve endpoints.

    Parameters
    ----------
    store:
        The shared design library, or ``None`` to run uncached.
    workers:
        ``>= 2`` runs jobs on supervised worker processes; ``0``/``1``
        runs them on one in-process worker thread.
    job_timeout:
        Per-job wall-clock deadline in seconds.  Enforced exactly in
        process mode (pool deadline); at stage boundaries in thread
        mode (the guard hook, SIGALRM being main-thread-only).
    """

    def __init__(self, store: ArtifactStore | None, workers: int = 2,
                 job_timeout: float | None = None) -> None:
        self.store = store
        self.workers = max(0, int(workers))
        self.job_timeout = job_timeout
        self.mode = "stopped"
        self.started_at = time.time()
        self.counters = {"submitted": 0, "deduped": 0, "completed": 0,
                         "failed": 0, "cancelled": 0}
        self._cond = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._by_fp: dict[str, str] = {}
        self._queue: deque[str] = deque()
        self._idx_jobs: dict[int, str] = {}
        self._next_id = 1
        self._next_idx = 0
        self._draining = False
        self._stopped = False
        # Lock order: _pool_lock strictly outside _cond.
        self._pool_lock = threading.Lock()
        self._pool: SupervisedPool | None = None
        self._pump_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # startup / executors
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring the executor up.  Call before serving HTTP traffic —
        process workers fork here, while the process is still
        single-threaded."""
        if self.workers >= 2:
            root = str(self.store.root) if self.store is not None else None
            pool = SupervisedPool(
                functools.partial(JobSession, root),
                jobs=self.workers,
                task_timeout=self.job_timeout,
                max_retries=0,  # jobs are too big to silently re-run
            )
            if pool.start_stream(on_result=self._on_pool_result,
                                 on_failure=self._on_pool_failure,
                                 on_event=self._on_pool_event):
                self._pool = pool
                self.mode = "process"
                self._pump_thread = threading.Thread(
                    target=self._pump_loop, name="serve-pump", daemon=True)
                self._pump_thread.start()
                return
        self._start_threads("thread")

    def _start_threads(self, mode: str) -> None:
        self.mode = mode
        count = max(1, min(self.workers, 4)) if self.workers else 1
        for n in range(count):
            thread = threading.Thread(target=self._thread_loop,
                                      name=f"serve-worker-{n}", daemon=True)
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    # submission / queries
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: Mapping[str, Any] | None = None,
               force: bool = False) -> tuple[Job, bool]:
        """Validate, coalesce or enqueue; returns ``(job, deduped)``."""
        spec = make_spec(kind, params)
        fingerprint = spec.fingerprint()
        with self._cond:
            if self._draining or self._stopped:
                raise SchedulerClosed(
                    "the server is shutting down and accepts no new jobs")
            if not force:
                active = self._by_fp.get(fingerprint)
                if active is not None:
                    job = self._jobs[active]
                    job.dedup_count += 1
                    self.counters["deduped"] += 1
                    self._append_event(job, {"kind": "coalesced"})
                    return job, True
            job = Job(f"j{self._next_id:06d}", spec, force,
                      use_journal=(self.store is not None and not force
                                   and kind == "inject"))
            self._next_id += 1
            self._jobs[job.id] = job
            self._order.append(job.id)
            if not force:
                self._by_fp[fingerprint] = job.id
            self._queue.append(job.id)
            self.counters["submitted"] += 1
            self._append_event(job, {"kind": "queued"})
            self._cond.notify_all()
            return job, False

    def get(self, job_id: str) -> Job:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            return job

    def list_jobs(self) -> list[dict[str, Any]]:
        with self._cond:
            return [self._jobs[job_id].as_dict() for job_id in self._order]

    def wait_result(self, job_id: str, wait_s: float = 0.0) -> Job:
        """Block until the job is terminal or *wait_s* elapses."""
        deadline = time.monotonic() + max(0.0, wait_s)
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            while job.state not in TERMINAL_STATES:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(0.2, remaining))
            return job

    def events_since(self, job_id: str, since: int = 0,
                     wait_s: float = 0.0) -> dict[str, Any]:
        """Long-poll the job's event log from sequence *since*."""
        deadline = time.monotonic() + max(0.0, wait_s)
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            while True:
                events = [event for event in job.events
                          if event["seq"] >= since]
                if events or job.state in TERMINAL_STATES:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(0.2, remaining))
            return {"state": job.state, "events": events,
                    "next": job.event_seq, "dropped": job.events_dropped}

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns ``False`` when it is already terminal.

        Queued jobs die immediately; a running process-mode job has its
        worker killed (replaced outside the respawn budget); a running
        thread-mode job is flagged and aborts at its next stage
        boundary via the guard hook.
        """
        with self._pool_lock:
            with self._cond:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(job_id)
                if job.state in TERMINAL_STATES:
                    return False
                job.cancel_event.set()
                if job.state == "queued":
                    self._finish(job, "cancelled", error="cancelled")
                    return True
                pool, idx = self._pool, job.idx
            if pool is not None and idx is not None:
                if pool.cancel_stream(idx):
                    with self._cond:
                        self._idx_jobs.pop(idx, None)
                        if job.state == "running":
                            self._finish(job, "cancelled",
                                         error="cancelled")
        return True

    def stats(self) -> dict[str, Any]:
        with self._cond:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            doc: dict[str, Any] = {
                "mode": self.mode,
                "workers": self.workers,
                "draining": self._draining,
                "counters": dict(self.counters),
                "jobs": states,
            }
            pool = self._pool
        if pool is not None:
            doc["pool"] = dict(pool.stats)
        if self.store is not None:
            doc["store"] = self.store.counter_totals()
        return doc

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse new submissions from now on."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def drain(self, grace_s: float) -> int:
        """Wait up to *grace_s* for in-flight jobs, then cancel the rest.

        Returns how many jobs had to be cancelled.  Inject jobs keep
        their campaign journal either way, so a resubmission after
        restart resumes from the checkpoint instead of starting over.
        """
        self.begin_drain()
        deadline = time.monotonic() + max(0.0, grace_s)
        with self._cond:
            while any(job.state not in TERMINAL_STATES
                      for job in self._jobs.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(0.2, remaining))
            leftover = [job.id for job in self._jobs.values()
                        if job.state not in TERMINAL_STATES]
        for job_id in leftover:
            self.cancel(job_id)
        return len(leftover)

    def stop(self) -> None:
        """Tear the executor down (workers, pump thread)."""
        with self._cond:
            self._stopped = True
            self._draining = True
            self._cond.notify_all()
        pump = self._pump_thread
        if pump is not None:
            pump.join(timeout=5.0)
        with self._pool_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.stop_stream()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self.mode = "stopped"

    # ------------------------------------------------------------------
    # process executor (supervised pool, stream mode)
    # ------------------------------------------------------------------
    def _pump_loop(self) -> None:
        while True:
            with self._pool_lock:
                pool = self._pool
                if pool is None or self.mode != "process":
                    return
                to_submit: list[tuple[int, tuple]] = []
                with self._cond:
                    if self._stopped:
                        return
                    while self._queue:
                        job_id = self._queue.popleft()
                        job = self._jobs[job_id]
                        if job.state != "queued":
                            continue
                        idx = self._next_idx
                        self._next_idx += 1
                        job.idx = idx
                        self._idx_jobs[idx] = job.id
                        self._mark_running(job)
                        to_submit.append(
                            (idx, (job.spec.kind, dict(job.spec.params),
                                   job.use_journal)))
                for idx, task in to_submit:
                    pool.submit_stream(idx, task)
                pool.pump(block=True)

    def _pool_job(self, idx: int) -> Job | None:
        job_id = self._idx_jobs.pop(idx, None)
        return self._jobs.get(job_id) if job_id is not None else None

    def _on_pool_result(self, idx: int, value: dict[str, Any]) -> None:
        with self._cond:
            job = self._pool_job(idx)
            if job is None or job.state != "running":
                return
            if value.get("ok"):
                self._finish(job, "done", payload=value["payload"])
            else:
                self._finish(job, "failed",
                             error=str(value.get("error", "job failed")))

    def _on_pool_failure(self, idx: int, info: Mapping[str, str]) -> None:
        kind = info.get("error", "failed")
        with self._cond:
            job = self._pool_job(idx)
            if job is None or job.state in TERMINAL_STATES:
                return
            if kind == "degraded":
                # The pool is gone for good; requeue onto in-process
                # worker threads so the server keeps answering.
                job.state = "queued"
                job.idx = None
                self._queue.append(job.id)
                self._append_event(job, {"kind": "requeued",
                                         "reason": "pool degraded"})
                if not any(t.is_alive() for t in self._threads):
                    self._start_threads("thread-degraded")
                self._cond.notify_all()
                return
            if kind == "cancelled":
                self._finish(job, "cancelled", error="cancelled")
                return
            detail = info.get("detail", "")
            self._finish(job, "failed",
                         error=f"{kind}: {detail}" if detail else kind)

    def _on_pool_event(self, idx: int, payload: Any) -> None:
        with self._cond:
            job_id = self._idx_jobs.get(idx)
            job = self._jobs.get(job_id) if job_id is not None else None
            if job is None or not isinstance(payload, dict):
                return
            self._append_event(job, dict(payload))

    # ------------------------------------------------------------------
    # thread executor (in-process, shared store)
    # ------------------------------------------------------------------
    def _thread_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait(0.5)
                if self._stopped:
                    return
                job = self._jobs[self._queue.popleft()]
                if job.state != "queued":
                    continue
                self._mark_running(job)
            self._run_threaded(job)

    def _run_threaded(self, job: Job) -> None:
        deadline = (time.monotonic() + self.job_timeout
                    if self.job_timeout is not None else None)

        def guard(stage: str) -> None:
            if job.cancel_event.is_set():
                raise JobCancelled(f"job {job.id} cancelled before "
                                   f"stage {stage!r}")
            if deadline is not None and time.monotonic() > deadline:
                raise JobCancelled(f"job {job.id} exceeded its "
                                   f"{self.job_timeout:.1f}s deadline "
                                   f"before stage {stage!r}")

        tracer = Tracer(f"job:{job.spec.kind}",
                        on_close=lambda span: self._on_span(job, span))
        try:
            payload = run_job(job.spec, store=self.store, tracer=tracer,
                              guard=guard, use_journal=job.use_journal)
        except JobCancelled as exc:
            with self._cond:
                self._finish(job, "cancelled", error=str(exc))
        except Exception as exc:  # noqa: BLE001 - the server must survive
            with self._cond:
                self._finish(job, "failed",
                             error=f"{type(exc).__name__}: {exc}")
        else:
            with self._cond:
                self._finish(job, "done", payload=payload)

    def _on_span(self, job: Job, span) -> None:
        with self._cond:
            self._append_event(job, span_event(span))

    # ------------------------------------------------------------------
    # shared internals (always called with _cond held)
    # ------------------------------------------------------------------
    def _mark_running(self, job: Job) -> None:
        job.state = "running"
        job.started_at = time.time()
        self._append_event(job, {"kind": "running"})

    def _finish(self, job: Job, state: str, payload: Any = None,
                error: str | None = None) -> None:
        if job.state in TERMINAL_STATES:
            return
        job.state = state
        job.finished_at = time.time()
        job.payload = payload
        job.error = error
        if self._by_fp.get(job.fingerprint) == job.id:
            del self._by_fp[job.fingerprint]
        key = {"done": "completed", "failed": "failed",
               "cancelled": "cancelled"}[state]
        self.counters[key] += 1
        event: dict[str, Any] = {"kind": state}
        if error:
            event["error"] = error
        self._append_event(job, event)
        self._cond.notify_all()

    def _append_event(self, job: Job, event: dict[str, Any]) -> None:
        if len(job.events) >= MAX_EVENTS:
            job.events_dropped += 1
        else:
            event["seq"] = job.event_seq
            job.events.append(event)
        job.event_seq += 1
        self._cond.notify_all()
