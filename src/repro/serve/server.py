"""The ``repro serve`` daemon: JSON over HTTP, TCP or Unix socket.

A deliberately small protocol on the standard library's threading HTTP
server — every request and response body is JSON, except a finished
job's result, which is returned as the **exact bytes** the one-shot
CLI would have printed (see :func:`repro.serve.jobs.render_result`).

========================  ====  =====================================
endpoint                  verb  meaning
========================  ====  =====================================
``/healthz``              GET   liveness + draining flag
``/stats``                GET   scheduler/executor/store counters
``/jobs``                 POST  submit ``{"kind", "params", "force"}``
``/jobs``                 GET   list all jobs
``/jobs/<id>``            GET   one job's status document
``/jobs/<id>/result``     GET   rendered result (``?wait=S`` blocks)
``/jobs/<id>/events``     GET   event log (``?since=N&wait=S`` polls)
``/jobs/<id>/cancel``     POST  cancel queued/running job
``/shutdown``             POST  drain and exit (same path as SIGTERM)
========================  ====  =====================================

Submissions return ``202 Accepted`` with the job document (plus
``"deduped": true`` when the submission coalesced onto an active
identical job).  While the server drains — after SIGTERM/SIGINT or
``POST /shutdown`` — new submissions get ``503`` and in-flight jobs
are given a grace period to finish (inject jobs additionally
checkpoint through their campaign journal), then the process exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import socketserver
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.store import ArtifactStore

from repro.serve.jobs import JobError, render_result
from repro.serve.scheduler import Scheduler, SchedulerClosed

#: Longest ``?wait=`` a single request may hold its thread (seconds).
MAX_WAIT_S = 30.0

#: Request bodies beyond this are rejected (submissions are tiny).
MAX_BODY_BYTES = 1 << 20


class ServeHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's scheduler."""

    # One connection per request: no keep-alive bookkeeping, and a
    # long-polling client never starves another's thread.
    protocol_version = "HTTP/1.0"
    server_version = "repro-serve/1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    def address_string(self) -> str:  # AF_UNIX peers have no address
        if isinstance(self.client_address, str) or not self.client_address:
            return "local"
        return super().address_string()

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # type: ignore[attr-defined]
            sys.stderr.write("repro serve: %s - %s\n"
                             % (self.address_string(), format % args))

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc: dict[str, Any]) -> None:
        self._send(status, (json.dumps(doc, indent=2) + "\n").encode())

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise JobError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise JobError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise JobError("request body must be a JSON object")
        return doc

    def _query(self) -> dict[str, str]:
        parsed = parse_qs(urlparse(self.path).query)
        return {key: values[-1] for key, values in parsed.items()}

    def _wait_s(self, query: dict[str, str]) -> float:
        try:
            return max(0.0, min(MAX_WAIT_S, float(query.get("wait", 0))))
        except ValueError:
            return 0.0

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_get()
        except KeyError as exc:
            self._send_json(404, {"error": f"no such job: {exc.args[0]}"})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_post()
        except JobError as exc:
            self._send_json(400, {"error": str(exc)})
        except SchedulerClosed as exc:
            self._send_json(503, {"error": str(exc)})
        except KeyError as exc:
            self._send_json(404, {"error": f"no such job: {exc.args[0]}"})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def _route_get(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        query = self._query()
        if path == "/healthz":
            self._send_json(200, {
                "ok": True,
                "draining": self.server.draining,  # type: ignore
            })
        elif path == "/stats":
            doc = self.scheduler.stats()
            doc["uptime_s"] = round(
                time.time() - self.scheduler.started_at, 3)
            self._send_json(200, doc)
        elif path == "/jobs":
            self._send_json(200, {"jobs": self.scheduler.list_jobs()})
        elif path.startswith("/jobs/") and path.endswith("/result"):
            self._get_result(path.split("/")[2], query)
        elif path.startswith("/jobs/") and path.endswith("/events"):
            job_id = path.split("/")[2]
            self.scheduler.get(job_id)  # 404 before blocking
            try:
                since = int(query.get("since", 0))
            except ValueError:
                since = 0
            doc = self.scheduler.events_since(job_id, since=since,
                                              wait_s=self._wait_s(query))
            self._send_json(200, doc)
        elif path.startswith("/jobs/"):
            job = self.scheduler.get(path.split("/")[2])
            self._send_json(200, {"job": job.as_dict()})
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"})

    def _get_result(self, job_id: str, query: dict[str, str]) -> None:
        job = self.scheduler.wait_result(job_id, wait_s=self._wait_s(query))
        if job.state == "done":
            rendered = render_result(job.spec.kind, job.payload)
            self._send(200, rendered.encode())
        elif job.state == "failed":
            self._send_json(500, {"error": job.error or "job failed",
                                  "job": job.as_dict()})
        elif job.state == "cancelled":
            self._send_json(409, {"error": "job was cancelled",
                                  "job": job.as_dict()})
        else:  # still queued/running after the wait window
            self._send_json(202, {"job": job.as_dict()})

    def _route_post(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        if path == "/jobs":
            body = self._read_body()
            kind = body.get("kind")
            if not isinstance(kind, str):
                raise JobError("submission must carry a string 'kind'")
            params = body.get("params") or {}
            if not isinstance(params, dict):
                raise JobError("'params' must be a JSON object")
            job, deduped = self.scheduler.submit(
                kind, params, force=bool(body.get("force")))
            doc = job.as_dict()
            doc["deduped"] = deduped
            self._send_json(202, {"job": doc})
        elif path.startswith("/jobs/") and path.endswith("/cancel"):
            job_id = path.split("/")[2]
            changed = self.scheduler.cancel(job_id)
            job = self.scheduler.get(job_id)
            self._send_json(200, {"cancelled": changed,
                                  "job": job.as_dict()})
        elif path == "/shutdown":
            self._send_json(200, {"ok": True, "shutting_down": True})
            self.server.request_shutdown()  # type: ignore[attr-defined]
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"})


class ServeServer(ThreadingHTTPServer):
    """TCP variant; one daemon thread per request."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, scheduler: Scheduler,
                 grace_s: float = 10.0, verbose: bool = False) -> None:
        self.scheduler = scheduler
        self.grace_s = grace_s
        self.verbose = verbose
        self.draining = False
        self._shutdown_lock = threading.Lock()
        self._shutdown_started = False
        super().__init__(address, ServeHandler)

    def describe(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def request_shutdown(self) -> None:
        """Drain and stop, exactly once, off the serving threads."""
        with self._shutdown_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        self.draining = True
        thread = threading.Thread(target=self._drain_and_stop,
                                  name="serve-shutdown", daemon=True)
        thread.start()

    def _drain_and_stop(self) -> None:
        cancelled = self.scheduler.drain(self.grace_s)
        if cancelled and self.verbose:
            sys.stderr.write(
                f"repro serve: cancelled {cancelled} unfinished job(s) "
                f"after the {self.grace_s:.0f}s grace period\n")
        # shutdown() must come from outside serve_forever's thread.
        self.shutdown()


class UnixServeServer(ServeServer):
    """The same server bound to a Unix domain socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, (str, os.PathLike)) and os.path.exists(path):
            os.unlink(path)  # stale socket from a killed predecessor
        socketserver.TCPServer.server_bind(self)
        # HTTPServer.server_bind would try to unpack (host, port).
        self.server_name = "localhost"
        self.server_port = 0

    def describe(self) -> str:
        return f"unix:{self.server_address}"


def build_server(scheduler: Scheduler, socket_path: str | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 grace_s: float = 10.0, verbose: bool = False):
    """Bind the right server flavor for the requested transport."""
    if socket_path:
        return UnixServeServer(socket_path, scheduler, grace_s=grace_s,
                               verbose=verbose)
    return ServeServer((host, port), scheduler, grace_s=grace_s,
                       verbose=verbose)


def run_server(socket_path: str | None = None, host: str = "127.0.0.1",
               port: int = 0, cache_dir: str | None = ".repro-cache",
               workers: int = 2, job_timeout: float | None = None,
               grace_s: float = 10.0, verbose: bool = False) -> int:
    """The ``repro serve`` entry point: serve until told to stop.

    Installs SIGTERM/SIGINT handlers that drain (finish or checkpoint
    in-flight jobs within *grace_s*, refuse new submissions) and exit
    0.  The scheduler — and with it any worker processes — starts
    *before* the first serving thread, so forks happen while the
    process is still single-threaded.
    """
    store = ArtifactStore(cache_dir) if cache_dir else None
    scheduler = Scheduler(store, workers=workers, job_timeout=job_timeout)
    scheduler.start()
    server = build_server(scheduler, socket_path=socket_path, host=host,
                          port=port, grace_s=grace_s, verbose=verbose)

    def on_signal(signum, frame) -> None:
        server.request_shutdown()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, on_signal)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass
    print(f"repro serve: listening on {server.describe()} "
          f"({scheduler.mode} executor, "
          f"store={'off' if store is None else store.root})",
          flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        scheduler.stop()
        if socket_path and os.path.exists(socket_path):
            os.unlink(socket_path)
    print("repro serve: drained and stopped", flush=True)
    return 0
