"""CLI profiling: ``repro profile`` and the ``--profile`` options.

Includes the acceptance check that a ``repro flows --profile`` trace
explains at least 95% of each flow's wall time through stage spans.
"""

import json

import pytest

from repro.cli import main
from repro.obs import validate_trace

FLOW_STAGES = {"analyze", "synthesize", "lint", "techmap", "opt", "sta",
               "pnr", "sta_routed", "link"}


def load(path) -> dict:
    doc = json.loads(path.read_text())
    return validate_trace(doc)


class TestFlowsProfile:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("prof") / "flows.json"
        assert main(["flows", "--profile", str(path)]) == 0
        return load(path)

    def test_schema_and_roots(self, trace):
        assert trace["schema"] == "repro-trace/v1"
        names = [s["name"] for s in trace["spans"]]
        assert names == ["flow:osss", "flow:vhdl"]

    def test_stage_spans_cover_95_percent(self, trace):
        for flow in trace["spans"]:
            assert {c["name"] for c in flow["children"]} <= FLOW_STAGES
            covered = sum(c["dur_s"] for c in flow["children"])
            assert covered >= 0.95 * flow["dur_s"], (
                f"{flow['name']}: stage spans cover only "
                f"{covered / flow['dur_s']:.1%} of the flow wall time"
            )

    def test_flow_meta_carries_results(self, trace):
        for flow in trace["spans"]:
            assert flow["meta"]["cells"] > 0
            assert flow["meta"]["area_ge"] > 0


class TestProfileCommand:
    def test_synth_target_text_output(self, tmp_path, capsys):
        path = tmp_path / "synth.json"
        assert main(["profile", "--target", "synth",
                     "--output", str(path)]) == 0
        out = capsys.readouterr().out
        assert "synthesize" in out
        assert "total:" in out
        doc = load(path)
        assert doc["name"] == "synth"
        assert doc["spans"][0]["name"] == "synthesize"

    def test_synth_target_json_stdout(self, capsys):
        assert main(["profile", "--target", "synth",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_trace(doc) is doc

    def test_synth_profile_flag(self, tmp_path, capsys):
        path = tmp_path / "synth.json"
        assert main(["synth", "--profile", str(path)]) == 0
        doc = load(path)
        names = [s["name"] for s in doc["spans"]]
        assert "synthesize" in names and "lint" in names


class TestInjectProfile:
    def test_inject_profile_flag(self, tmp_path, capsys):
        trace_path = tmp_path / "inject.json"
        report_path = tmp_path / "report.json"
        assert main(["inject", "--faults", "2",
                     "--profile", str(trace_path),
                     "--output", str(report_path)]) == 0
        doc = load(trace_path)
        names = [s["name"] for s in doc["spans"]]
        assert names == ["build_injector", "campaign"]
        campaign = doc["spans"][1]
        children = {c["name"] for c in campaign["children"]}
        assert {"golden", "replay"} <= children
        replay = next(c for c in campaign["children"]
                      if c["name"] == "replay")
        # One child span per injected fault, annotated with its outcome.
        assert len(replay["children"]) == 2
        assert all(c["meta"]["outcome"] in
                   ("masked", "sdc", "detected", "hang")
                   for c in replay["children"])
        assert campaign["meta"]["sim_stats"]["backend"] == "rtl"
