"""Unit tests for the span profiler and the repro-trace/v1 validator."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_SCHEMA,
    Tracer,
    validate_trace,
)


class FakeClock:
    """Deterministic monotonic clock for byte-stable traces."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def advance(self, dt: float) -> None:
        self.t += dt

    def __call__(self) -> float:
        return self.t


def make_tracer(start: float = 0.0) -> tuple[Tracer, FakeClock]:
    clock = FakeClock(start)
    return Tracer("test", clock=clock), clock


class TestSpanNesting:
    def test_single_span_timing(self):
        tracer, clock = make_tracer()
        with tracer.span("work"):
            clock.advance(1.5)
        (span,) = tracer.roots
        assert span.name == "work"
        assert span.t0 == 0.0
        assert span.dur == 1.5
        assert span.closed

    def test_epoch_relative_offsets(self):
        clock = FakeClock(100.0)  # non-zero wall clock at construction
        tracer = Tracer("test", clock=clock)
        clock.advance(2.0)
        with tracer.span("late"):
            clock.advance(1.0)
        assert tracer.roots[0].t0 == 2.0

    def test_children_nest_under_parent(self):
        tracer, clock = make_tracer()
        with tracer.span("outer"):
            clock.advance(0.5)
            with tracer.span("inner_a"):
                clock.advance(1.0)
            with tracer.span("inner_b"):
                clock.advance(2.0)
        (outer,) = tracer.roots
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.dur == 3.5
        assert outer.children[0].t0 == 0.5
        assert outer.child_seconds() == 3.0

    def test_sibling_roots(self):
        tracer, clock = make_tracer()
        with tracer.span("first"):
            clock.advance(1.0)
        with tracer.span("second"):
            clock.advance(2.0)
        assert [r.name for r in tracer.roots] == ["first", "second"]
        assert tracer.total_seconds() == 3.0

    def test_exception_still_closes_span(self):
        tracer, clock = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("explodes"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert tracer.roots[0].closed
        assert tracer.roots[0].dur == 1.0

    def test_mis_nested_exit_unwinds_inner_spans(self):
        tracer, clock = make_tracer()
        outer_ctx = tracer.span("outer")
        outer_ctx.__enter__()
        inner_ctx = tracer.span("inner")
        inner_ctx.__enter__()
        clock.advance(1.0)
        # Closing the outer span first must close the abandoned inner
        # span too instead of corrupting the stack.
        outer_ctx.__exit__(None, None, None)
        assert tracer.current is None
        (outer,) = tracer.roots
        assert outer.closed and outer.children[0].closed

    def test_current_tracks_innermost(self):
        tracer, _ = make_tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None


class TestAnnotationsAndRecord:
    def test_span_meta_via_kwargs_and_annotate(self):
        tracer, _ = make_tracer()
        with tracer.span("stage", cells=7) as span:
            span.annotate(area_ge=12.5)
        assert tracer.roots[0].meta == {"cells": 7, "area_ge": 12.5}

    def test_tracer_level_annotate(self):
        tracer, _ = make_tracer()
        tracer.annotate(seed=3, jobs=2)
        assert tracer.as_dict()["meta"] == {"seed": 3, "jobs": 2}

    def test_record_pre_measured_span(self):
        tracer, clock = make_tracer()
        with tracer.span("shards"):
            clock.advance(0.25)
            span = tracer.record("shard[0]", 4.5, faults=10)
        assert span.dur == 4.5
        assert span.t0 == 0.25
        shards = tracer.roots[0]
        assert shards.children[0].name == "shard[0]"
        assert shards.children[0].meta == {"faults": 10}

    def test_record_at_top_level_is_a_root(self):
        tracer, _ = make_tracer()
        tracer.record("lonely", 1.0)
        assert [r.name for r in tracer.roots] == ["lonely"]
        assert tracer.total_seconds() == 1.0


class TestExport:
    def build(self) -> Tracer:
        tracer, clock = make_tracer()
        with tracer.span("flow", cells=3):
            clock.advance(0.5)
            with tracer.span("synthesize"):
                clock.advance(1.0)
        return tracer

    def test_as_dict_shape(self):
        doc = self.build().as_dict()
        assert doc["schema"] == TRACE_SCHEMA == "repro-trace/v1"
        assert doc["name"] == "test"
        assert doc["total_s"] == 1.5
        (flow,) = doc["spans"]
        assert flow["name"] == "flow"
        assert flow["meta"] == {"cells": 3}
        assert flow["children"][0]["t0_s"] == 0.5
        assert flow["children"][0]["dur_s"] == 1.0

    def test_to_json_round_trips(self):
        tracer = self.build()
        assert json.loads(tracer.to_json()) == tracer.as_dict()

    def test_write_emits_valid_document(self, tmp_path):
        path = tmp_path / "trace.json"
        self.build().write(str(path))
        doc = json.loads(path.read_text())
        assert validate_trace(doc) is doc

    def test_walk_depth_first(self):
        tracer = self.build()
        names = [(d, s.name) for d, s in tracer.walk()]
        assert names == [(0, "flow"), (1, "synthesize")]

    def test_summary_rows_shares(self):
        rows = self.build().summary_rows()
        assert rows[0]["span"] == "flow"
        assert rows[1]["span"] == "  synthesize"
        assert rows[1]["of_parent"] == f"{100.0 / 1.5:.1f}%"


class TestNullTracer:
    def test_records_nothing(self):
        null = NullTracer()
        with null.span("a"):
            with null.span("b"):
                pass
        null.record("c", 1.0)
        null.annotate(x=1)
        assert null.roots == []
        assert null.as_dict()["spans"] == []
        assert null.as_dict()["meta"] == {}

    def test_span_context_is_usable(self):
        with NULL_TRACER.span("x") as span:
            span.annotate(ignored=True)  # must not raise

    def test_shared_instance(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestValidateTrace:
    def good(self) -> dict:
        return {
            "schema": "repro-trace/v1",
            "name": "t",
            "total_s": 1.0,
            "meta": {},
            "spans": [{"name": "a", "t0_s": 0.0, "dur_s": 1.0,
                       "meta": {}, "children": []}],
        }

    def test_accepts_valid_document(self):
        doc = self.good()
        assert validate_trace(doc) is doc

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match=r"\$"):
            validate_trace([1, 2])

    def test_rejects_wrong_schema(self):
        doc = self.good()
        doc["schema"] = "repro-trace/v0"
        with pytest.raises(ValueError, match=r"\$\.schema"):
            validate_trace(doc)

    def test_rejects_missing_span_keys(self):
        doc = self.good()
        del doc["spans"][0]["meta"]
        with pytest.raises(ValueError, match=r"\$\.spans\[0\]"):
            validate_trace(doc)

    def test_rejects_negative_duration(self):
        doc = self.good()
        doc["spans"][0]["dur_s"] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            validate_trace(doc)

    def test_rejects_boolean_number(self):
        doc = self.good()
        doc["total_s"] = True
        with pytest.raises(ValueError, match=r"\$\.total_s"):
            validate_trace(doc)

    def test_rejects_bad_nested_child(self):
        doc = self.good()
        doc["spans"][0]["children"] = [{"name": ""}]
        with pytest.raises(ValueError, match=r"children\[0\]"):
            validate_trace(doc)

    def test_repr_smoke(self):
        tracer, clock = make_tracer()
        with tracer.span("s"):
            clock.advance(1.0)
        assert "Span(" in repr(tracer.roots[0])
        assert "Tracer(" in repr(tracer)
