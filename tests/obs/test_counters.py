"""The uniform ``.stats()`` counters facade across all three simulators.

Includes the headline backend comparison: on the ExpoCU fault campaign
the compiled gate backend performs strictly fewer interpreted cell
evaluations than the event backend — its settles run as generated
straight-line code (``settle_passes``/``fast_commits``), which is the
entire point of the fast path.
"""

import pytest

from repro.expocu import CamSync
from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.netlist.opt import optimize
from repro.netlist.sim import GateSimulator
from repro.netlist.techmap import map_module
from repro.rtl.simulate import RtlSimulator
from repro.synth import synthesize
from repro.types import Bit
from repro.types.spec import bit


def make_camsync():
    return CamSync("camsync", Clock("clk", 10 * NS),
                   Signal("rst", bit(), Bit(1)))


def make_rtl():
    return synthesize(make_camsync(), observe_children=False)


KERNEL_KEYS = {"backend", "delta_cycles", "process_activations",
               "events_fired", "timed_callbacks"}
RTL_KEYS = {"backend", "steps", "register_commits", "register_changes",
            "carrier_evals"}
GATE_KEYS = {"backend", "steps", "cells", "settle_passes", "cell_evals",
             "event_wakeups", "fast_commits"}


class TestKernelStats:
    def build(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.rst = Signal("rst", bit(), Bit(1))
        top.dut = CamSync("camsync", top.clk, top.rst)
        return top, Simulator(top)

    def test_keys_and_backend(self):
        _, sim = self.build()
        stats = sim.stats()
        assert set(stats) == KERNEL_KEYS
        assert stats["backend"] == "kernel"

    def test_counters_grow_with_simulation(self):
        top, sim = self.build()
        sim.run(20 * NS)
        top.rst.write(0)
        sim.run(200 * NS)
        stats = sim.stats()
        assert stats["delta_cycles"] > 0
        assert stats["process_activations"] > 0
        assert stats["events_fired"] > 0
        assert stats["timed_callbacks"] > 0
        # The clock alone fires an event per edge.
        assert stats["events_fired"] >= 20

    def test_reset_stats_keeps_state(self):
        top, sim = self.build()
        sim.run(50 * NS)
        now = sim.now
        sim.reset_stats()
        stats = sim.stats()
        assert stats["delta_cycles"] == 0
        assert stats["process_activations"] == 0
        assert sim.now == now  # simulation state untouched


class TestRtlStats:
    def test_keys_and_growth(self):
        sim = RtlSimulator(make_rtl())
        assert set(sim.stats()) == RTL_KEYS
        assert sim.stats()["backend"] == "rtl"
        sim.step(reset=1)
        for k in range(10):
            sim.step(reset=0, pix_valid=k & 1, line_strobe=0,
                     frame_strobe=0)
        stats = sim.stats()
        assert stats["steps"] == 11
        assert stats["register_commits"] > 0
        assert stats["carrier_evals"] > 0
        # Only a subset of registers changes on any given cycle.
        assert stats["register_changes"] <= stats["register_commits"]

    def test_reset_stats(self):
        sim = RtlSimulator(make_rtl())
        sim.step(reset=1)
        sim.reset_stats()
        assert sim.stats()["steps"] == 0
        assert sim.stats()["register_commits"] == 0


class TestGateStats:
    @pytest.fixture(scope="class")
    def circuit(self):
        circuit = map_module(make_rtl())
        optimize(circuit)
        return circuit

    def run_steps(self, sim, cycles=10):
        sim.step(reset=1)
        for k in range(cycles):
            sim.step(reset=0, pix_valid=k & 1, line_strobe=0,
                     frame_strobe=0)

    def test_event_backend_counters(self, circuit):
        sim = GateSimulator(circuit, backend="event")
        assert set(sim.stats()) == GATE_KEYS
        self.run_steps(sim)
        stats = sim.stats()
        assert stats["backend"] == "event"
        assert stats["steps"] == 11
        # Evaluable comb cells: constant TIE cells are settled once at
        # construction, not evaluated per pass.
        evaluable = [c for c in circuit.comb_cells()
                     if not c.ctype.name.startswith("TIE")]
        assert stats["cells"] == len(evaluable)
        # Construction did one interpreted full settle.
        assert stats["settle_passes"] == 1
        assert stats["event_wakeups"] > 0
        # cell_evals = the full construction settle + every wakeup.
        assert stats["cell_evals"] == \
            stats["cells"] + stats["event_wakeups"]
        assert stats["fast_commits"] == 0

    def test_compiled_backend_counters(self, circuit):
        sim = GateSimulator(circuit, backend="compiled")
        self.run_steps(sim)
        stats = sim.stats()
        assert stats["backend"] == "compiled"
        assert stats["steps"] == 11
        # One settle per step plus the construction settle; all of them
        # run as generated code, so no interpreted cell dispatches.
        assert stats["settle_passes"] >= 12
        assert stats["cell_evals"] == 0
        assert stats["event_wakeups"] == 0
        assert stats["fast_commits"] == 11

    def test_reset_stats(self, circuit):
        sim = GateSimulator(circuit, backend="compiled")
        self.run_steps(sim, cycles=3)
        sim.reset_stats()
        stats = sim.stats()
        assert stats["steps"] == 0
        assert stats["settle_passes"] == 0
        assert stats["fast_commits"] == 0
        assert stats["cells"] > 0  # structural, not a counter

    def test_backends_agree_on_outputs(self, circuit):
        a = GateSimulator(circuit, backend="event")
        b = GateSimulator(circuit, backend="compiled")
        for entry in ({"reset": 1}, {"reset": 0, "pix_valid": 1},
                      {"reset": 0, "pix_valid": 0}):
            assert a.step(**entry) == b.step(**entry)


class TestExpoCuBackendComparison:
    """Acceptance check: compiled does strictly fewer interpreted cell
    evals than the event backend on the ExpoCU campaign."""

    def test_compiled_fewer_cell_evals_on_campaign(self):
        from repro.fault.campaign import generate_fault_list, run_campaign
        from repro.fault.inject import (
            FaultableGateSimulator,
            GateFaultInjector,
        )
        from repro.fault.scenarios import (
            _build_expocu_rtl,
            expocu_config,
            expocu_stimulus,
        )

        circuit = map_module(_build_expocu_rtl(side=8))
        optimize(circuit)
        stimulus = expocu_stimulus(seed=1, frames=1, side=8)
        stats = {}
        reports = {}
        for backend in ("event", "compiled"):
            injector = GateFaultInjector(
                FaultableGateSimulator(circuit, backend=backend)
            )
            faults = generate_fault_list(injector, 3, len(stimulus), seed=1)
            result = run_campaign(injector, stimulus, faults,
                                  expocu_config("none"), design="ExpoCU",
                                  hardening="none", seed=1)
            stats[backend] = injector.sim.stats()
            reports[backend] = result.to_json()
        event, compiled = stats["event"], stats["compiled"]
        # The headline inequality, plus its explanation: the event
        # backend pays an interpreted dispatch per woken cell; the
        # compiled backend only pays a few at fault-injection instants
        # (force_net/flip_net propagate the fault cone interpretively).
        assert compiled["cell_evals"] < event["cell_evals"]
        assert compiled["cell_evals"] < compiled["cells"]
        assert event["cell_evals"] > event["steps"]
        assert compiled["fast_commits"] > 0
        # Same campaign, same verdicts, regardless of backend.
        assert reports["event"] == reports["compiled"]


class TestStatsInTraceExports:
    def test_campaign_trace_embeds_sim_stats(self):
        from repro.fault.scenarios import expocu_campaign
        from repro.obs import Tracer, validate_trace

        tracer = Tracer("inject")
        expocu_campaign(flow="rtl", faults=2, seed=1, side=4, tracer=tracer)
        doc = validate_trace(tracer.as_dict())
        campaign = next(s for s in doc["spans"] if s["name"] == "campaign")
        stats = campaign["meta"]["sim_stats"]
        assert stats["backend"] == "rtl"
        assert stats["steps"] > 0
