"""Golden-file tests: repro-trace/v1 JSON and VCD output are byte-stable.

The golden documents live next to this file in ``golden/``.  Both
builders are fully deterministic (the trace uses an injected fake clock;
the VCD records a fixed change list), so any byte difference means the
export format changed and the schema version must be revisited.

To regenerate after an *intentional* format change::

    PYTHONPATH=src python tests/obs/test_golden.py regen
"""

import json
import pathlib

from repro.obs import Tracer, VcdWriter, validate_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


class _StepClock:
    """Advances a fixed amount on every reading: fully deterministic."""

    def __init__(self, step: float = 0.125) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.t
        self.t += self.step
        return value


def build_trace() -> Tracer:
    """A representative trace: nested flow stages plus a shard rollup."""
    tracer = Tracer("golden", clock=_StepClock())
    tracer.annotate(seed=1, jobs=2)
    with tracer.span("flow:osss") as flow:
        with tracer.span("synthesize"):
            pass
        with tracer.span("techmap", cells=42):
            pass
        flow.annotate(area_ge=123.4)
    with tracer.span("campaign", faults=4):
        tracer.record("shard[0]", 0.75, faults=2,
                      outcomes={"masked": 1, "sdc": 1})
        tracer.record("shard[1]", 0.5, faults=2,
                      outcomes={"masked": 2, "sdc": 0})
    return tracer


def build_vcd() -> VcdWriter:
    """A two-scope document exercising widths, dedup and scope breaks."""
    writer = VcdWriter("1ns")
    clk = writer.add_var("clk", 1, scope="rtl")
    bus = writer.add_var("data out", 8, scope="rtl")
    gate = writer.add_var("data out", 8, scope="netlist")
    for t in range(6):
        writer.record(t, clk, t & 1)
        writer.record(t, bus, (t * 3) & 0xFF)
        writer.record(t, gate, (t * 3) & 0xFF if t != 4 else 99)
    writer.record(6, bus, 20)
    writer.record(7, bus, 20)  # same value again: must dedup (no #7)
    return writer


class TestTraceGolden:
    def test_json_matches_golden_bytes(self):
        golden = (GOLDEN_DIR / "trace.json").read_text(encoding="utf-8")
        assert build_trace().to_json() == golden

    def test_golden_is_schema_valid(self):
        doc = json.loads((GOLDEN_DIR / "trace.json").read_text())
        assert validate_trace(doc) is doc

    def test_write_matches_render(self, tmp_path):
        path = tmp_path / "trace.json"
        build_trace().write(str(path))
        assert json.loads(path.read_text()) == build_trace().as_dict()


class TestVcdGolden:
    def test_render_matches_golden_bytes(self):
        golden = (GOLDEN_DIR / "wave.vcd").read_text(encoding="ascii")
        assert build_vcd().render() == golden

    def test_windowed_render_matches_golden_bytes(self):
        golden = (GOLDEN_DIR / "wave_window.vcd").read_text(encoding="ascii")
        assert build_vcd().render(window=(2, 5)) == golden

    def test_window_semantics(self):
        text = build_vcd().render(window=(2, 5))
        # Initial dump at the window start, then only in-window changes.
        assert "#2" in text and "#5" in text
        assert "#0\n" not in text and "#7" not in text
        # The t=4 divergence of the netlist scope is inside the window.
        assert "b1100011" in text  # 99

    def test_write_file(self, tmp_path):
        path = tmp_path / "wave.vcd"
        build_vcd().write(str(path))
        assert path.read_text(encoding="ascii") == build_vcd().render()


def _regen() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_DIR.mkdir(exist_ok=True)
    (GOLDEN_DIR / "trace.json").write_text(build_trace().to_json(),
                                           encoding="utf-8")
    (GOLDEN_DIR / "wave.vcd").write_text(build_vcd().render(),
                                         encoding="ascii")
    (GOLDEN_DIR / "wave_window.vcd").write_text(
        build_vcd().render(window=(2, 5)), encoding="ascii"
    )
    print(f"regenerated goldens in {GOLDEN_DIR}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if sys.argv[1:] == ["regen"]:
        _regen()
    else:
        print(__doc__)
