"""RtlTrace / GateTrace adapters and the equivalence mismatch VCD."""

import os

import pytest

from repro.eval.equivalence import lockstep
from repro.expocu import CamSync
from repro.hdl import Clock, NS, Signal
from repro.netlist.opt import optimize
from repro.netlist.sim import GateSimulator
from repro.netlist.techmap import map_module
from repro.obs import GateTrace, RtlTrace
from repro.obs.vcd import mismatch_window_vcd
from repro.rtl.simulate import RtlSimulator
from repro.synth import synthesize
from repro.types import Bit
from repro.types.spec import bit


def make_rtl():
    return synthesize(
        CamSync("camsync", Clock("clk", 10 * NS),
                Signal("rst", bit(), Bit(1))),
        observe_children=False,
    )


def drive(sim, cycles=8):
    sim.step(reset=1)
    for k in range(cycles):
        sim.step(reset=0, pix_valid=k & 1, line_strobe=0, frame_strobe=0)


class TestRtlTrace:
    def test_outputs_traced_per_cycle(self):
        sim = RtlSimulator(make_rtl())
        trace = RtlTrace(sim)
        drive(sim)
        text = trace.render()
        assert "$scope module rtl $end" in text
        assert "pix_valid_sync" in text
        assert trace.change_count > 0

    def test_include_registers(self):
        sim = RtlSimulator(make_rtl())
        trace = RtlTrace(sim, include_registers=True)
        drive(sim)
        assert trace.writer.var_count > len(sim.module.outputs)

    def test_detach_stops_sampling(self):
        sim = RtlSimulator(make_rtl())
        trace = RtlTrace(sim)
        drive(sim, cycles=4)
        count = trace.change_count
        trace.detach()
        trace.detach()  # idempotent
        drive(sim, cycles=4)
        assert trace.change_count == count
        assert sim.step_hooks == []


class TestGateTrace:
    @pytest.fixture(scope="class")
    def circuit(self):
        circuit = map_module(make_rtl())
        optimize(circuit)
        return circuit

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_backends_produce_identical_waveforms(self, circuit, backend):
        sim = GateSimulator(circuit, backend=backend)
        trace = GateTrace(sim)
        drive(sim)
        text = trace.render()
        assert "$scope module netlist $end" in text
        if not hasattr(self, "_golden"):
            type(self)._golden = {}
        self._golden[backend] = text
        if len(self._golden) == 2:
            assert self._golden["event"] == self._golden["compiled"]

    def test_include_flops(self, circuit):
        sim = GateSimulator(circuit, backend="event")
        trace = GateTrace(sim, include_flops=True)
        drive(sim)
        assert trace.writer.var_count > len(circuit.output_buses)

    def test_two_traces_coexist_and_detach(self, circuit):
        sim = GateSimulator(circuit, backend="event")
        first = GateTrace(sim)
        second = GateTrace(sim)
        first.detach()
        drive(sim, cycles=4)
        assert second.change_count > first.change_count
        second.close()
        assert sim.step_hooks == []


class _ScriptedStage:
    """A lockstep stage replaying a fixed output sequence."""

    def __init__(self, name, outputs):
        self.name = name
        self._outputs = iter(outputs)

    def step(self, inputs):
        return next(self._outputs)


class TestMismatchVcd:
    def run_diverging(self, tmp_path, margin=3):
        good = [{"y": k % 4} for k in range(20)]
        bad = [dict(row) for row in good]
        bad[12]["y"] = 9  # diverges at cycle 12 only
        path = tmp_path / "mismatch.vcd"
        report = lockstep(
            [_ScriptedStage("ref", good), _ScriptedStage("dut", bad)],
            [{} for _ in range(20)],
            vcd_on_mismatch=str(path), vcd_margin=margin,
        )
        return report, path

    def test_vcd_written_on_mismatch(self, tmp_path):
        report, path = self.run_diverging(tmp_path)
        assert not report.equivalent
        assert report.mismatches[0].cycle == 12
        assert report.vcd_path == str(path)
        text = path.read_text()
        assert "$scope module ref $end" in text
        assert "$scope module dut $end" in text
        # Windowed around the divergence: [12-3, 12+3].
        assert "#9" in text and "#15" in text
        assert "#5\n" not in text and "#16" not in text
        # The diverging value (9 = b1001) appears in the dut scope.
        assert "b1001" in text

    def test_no_vcd_when_equivalent(self, tmp_path):
        rows = [{"y": k % 4} for k in range(10)]
        path = tmp_path / "never.vcd"
        report = lockstep(
            [_ScriptedStage("a", list(rows)), _ScriptedStage("b", rows)],
            [{} for _ in range(10)],
            vcd_on_mismatch=str(path),
        )
        assert report.equivalent
        assert report.vcd_path is None
        assert not os.path.exists(str(path))

    def test_window_clips_at_zero(self):
        samples = {"s": [(k, {"y": k & 1}) for k in range(6)]}
        writer, window = mismatch_window_vcd(samples, first_cycle=1,
                                             last_cycle=2, margin=8)
        assert window == (0, 10)
        assert "$scope module s $end" in writer.render(window)
