"""Wall-clock deadlines: enforcement, restoration, graceful no-op."""

import signal
import threading
import time

import pytest

from repro.exec import DeadlineExceeded, can_enforce, time_limit


class TestTimeLimit:
    def test_fast_body_unaffected(self):
        with time_limit(5.0):
            value = sum(range(100))
        assert value == 4950

    def test_slow_body_interrupted(self):
        with pytest.raises(DeadlineExceeded, match="spin"):
            with time_limit(0.05, label="spin"):
                while True:
                    pass

    def test_none_and_nonpositive_disable(self):
        for seconds in (None, 0, -1.0):
            with time_limit(seconds):
                pass

    def test_deadline_is_a_runtime_error(self):
        # Callers that swallow Exception must explicitly re-raise it —
        # the campaign classifier does — so it must not hide deeper.
        assert issubclass(DeadlineExceeded, RuntimeError)

    def test_previous_alarm_state_restored(self):
        previous = signal.signal(signal.SIGALRM, signal.SIG_IGN)
        try:
            with time_limit(10.0):
                pass
            assert signal.getsignal(signal.SIGALRM) is signal.SIG_IGN
            assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_nested_limits_inner_wins(self):
        with pytest.raises(DeadlineExceeded, match="inner"):
            with time_limit(30.0, label="outer"):
                with time_limit(0.05, label="inner"):
                    while True:
                        pass

    def test_noop_off_main_thread(self):
        outcome = {}

        def body():
            outcome["enforceable"] = can_enforce()
            try:
                with time_limit(0.01, label="thread"):
                    time.sleep(0.05)
                outcome["raised"] = False
            except DeadlineExceeded:  # pragma: no cover - must not happen
                outcome["raised"] = True

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert outcome == {"enforceable": False, "raised": False}
