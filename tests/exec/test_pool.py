"""Supervised pool: correctness, chaos kills, deadlines, teardown."""

import multiprocessing
import time

import pytest

from repro.exec import (
    CHAOS_ENV,
    SupervisedPool,
    TaskPickleError,
)


class _SquareSession:
    """Minimal deterministic session (module-level: picklable)."""

    meta = {"kind": "square", "version": 1}

    def __init__(self):
        self._count = 0

    def run(self, payload):
        self._count += 1
        return payload * payload

    def stats(self):
        return {"tasks": self._count}


class _SleepSession:
    """Session whose task payload is how long to sleep."""

    meta = {"kind": "sleep"}

    def run(self, payload):
        time.sleep(payload)
        return payload


def _no_children():
    # active_children() joins finished processes as a side effect.
    return multiprocessing.active_children() == []


class TestSupervisedPool:
    def test_parallel_results_match_task_order(self):
        pool = SupervisedPool(_SquareSession, jobs=3)
        outcome = pool.run(list(range(20)))
        assert outcome.results == {i: i * i for i in range(20)}
        assert outcome.failures == {}
        assert outcome.meta == _SquareSession.meta
        assert outcome.stats["crashes"] == 0
        assert outcome.stats["respawns"] == 0
        assert _no_children()

    def test_on_result_fires_once_per_index(self):
        seen = []
        pool = SupervisedPool(_SquareSession, jobs=2)
        pool.run(list(range(8)), on_result=lambda i, v: seen.append((i, v)))
        assert sorted(seen) == [(i, i * i) for i in range(8)]

    def test_on_meta_fires_with_session_meta(self):
        captured = []
        pool = SupervisedPool(_SquareSession, jobs=2)
        pool.run([1, 2, 3], on_meta=captured.append)
        assert captured == [_SquareSession.meta]

    def test_jobs_one_runs_inline(self):
        pool = SupervisedPool(_SquareSession, jobs=1)
        outcome = pool.run([2, 3])
        assert outcome.results == {0: 4, 1: 9}
        assert outcome.stats["inline_tasks"] == 2

    def test_single_task_runs_inline(self):
        pool = SupervisedPool(_SquareSession, jobs=4)
        outcome = pool.run([7])
        assert outcome.results == {0: 49}
        assert outcome.stats["inline_tasks"] == 1
        assert _no_children()


class TestChaos:
    def test_chaos_kills_do_not_lose_tasks(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "0.4")
        pool = SupervisedPool(_SquareSession, jobs=3, backoff_s=0.001)
        outcome = pool.run(list(range(12)))
        # Every task completes with the right answer no matter how many
        # workers died (even degradation-to-inline preserves the result).
        assert outcome.results == {i: i * i for i in range(12)}
        assert outcome.failures == {}
        assert _no_children()

    def test_chaos_env_off_means_no_crashes(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        pool = SupervisedPool(_SquareSession, jobs=2)
        outcome = pool.run(list(range(6)))
        assert outcome.stats["crashes"] == 0


class TestDeadlines:
    def test_timeout_retries_then_quarantines(self):
        pool = SupervisedPool(_SleepSession, jobs=2, task_timeout=0.2,
                              max_retries=1, backoff_s=0.001)
        outcome = pool.run([0.0, 30.0, 0.0])
        assert outcome.results == {0: 0.0, 2: 0.0}
        assert set(outcome.failures) == {1}
        assert outcome.failures[1]["error"] == "timed_out"
        assert outcome.stats["timeouts"] == 2
        assert outcome.stats["timeout_retries"] == 1
        assert outcome.stats["quarantined"] == 1
        assert _no_children()

    def test_inline_timeout_quarantines_too(self):
        pool = SupervisedPool(_SleepSession, jobs=1, task_timeout=0.1,
                              max_retries=0)
        outcome = pool.run([30.0, 0.0])
        assert outcome.results == {1: 0.0}
        assert outcome.failures[0]["error"] == "timed_out"
        assert outcome.stats["quarantined"] == 1


class TestFailureModes:
    def test_unpicklable_factory_under_spawn(self):
        pool = SupervisedPool(lambda: _SquareSession(), jobs=2,
                              start_method="spawn")
        with pytest.raises(TaskPickleError, match="spawn"):
            pool.run([1, 2, 3])
        assert _no_children()

    def test_keyboard_interrupt_leaves_no_children(self, monkeypatch):
        pool = SupervisedPool(_SquareSession, jobs=2)
        spawned = []
        original_spawn = SupervisedPool._spawn

        def tracking_spawn(self, respawn=False):
            worker = original_spawn(self, respawn)
            spawned.append(worker)
            return worker

        def interrupting_poll(self, block):
            raise KeyboardInterrupt

        monkeypatch.setattr(SupervisedPool, "_spawn", tracking_spawn)
        monkeypatch.setattr(SupervisedPool, "_poll", interrupting_poll)
        with pytest.raises(KeyboardInterrupt):
            pool.run(list(range(6)))
        assert spawned  # the interrupt arrived after workers existed
        for worker in spawned:
            worker.process.join(5.0)
            assert not worker.process.is_alive()
        assert _no_children()
