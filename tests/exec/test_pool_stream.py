"""Stream mode of the supervised pool (the ``repro serve`` executor).

Batch mode is covered by ``test_pool.py``; here the open-ended API:
tasks trickle in over the pool's lifetime, completions arrive through
callbacks, tasks can be cancelled (queued or in flight), a failing
task becomes a reported failure instead of killing the pool, and
worker-side sessions stream progress events while a task runs.
"""

import time

import pytest

from repro.exec.pool import SupervisedPool


class EchoSession:
    """Doubles integers; optionally emits progress events."""

    meta = {"session": "echo"}

    def __init__(self):
        self._emit = None

    def bind_emitter(self, emit):
        self._emit = emit

    def run(self, task):
        kind, value = task
        if kind == "boom":
            raise ValueError(f"bad task {value}")
        if kind == "sleep":
            time.sleep(value)
            return value
        if kind == "event":
            self._emit({"progress": value})
            return value * 2
        return value * 2


class Collector:
    """Callback sink for one stream run."""

    def __init__(self):
        self.results = {}
        self.failures = {}
        self.events = []

    def on_result(self, idx, value):
        self.results[idx] = value

    def on_failure(self, idx, info):
        self.failures[idx] = info

    def on_event(self, idx, payload):
        self.events.append((idx, payload))


def pump_until(pool, predicate, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        pool.pump(block=True)
        if predicate():
            return
    pytest.fail("stream did not reach the expected state in time")


@pytest.fixture
def stream():
    pool = SupervisedPool(EchoSession, jobs=2)
    sink = Collector()
    assert pool.start_stream(on_result=sink.on_result,
                             on_failure=sink.on_failure,
                             on_event=sink.on_event)
    yield pool, sink
    pool.stop_stream()


class TestStreamBasics:
    def test_results_delivered_incrementally(self, stream):
        pool, sink = stream
        for idx in range(5):
            pool.submit_stream(idx, ("echo", idx))
        pump_until(pool, lambda: len(sink.results) == 5)
        assert sink.results == {idx: idx * 2 for idx in range(5)}
        assert not sink.failures

    def test_late_submissions_after_earlier_completions(self, stream):
        pool, sink = stream
        pool.submit_stream(0, ("echo", 10))
        pump_until(pool, lambda: 0 in sink.results)
        pool.submit_stream(1, ("echo", 20))
        pump_until(pool, lambda: 1 in sink.results)
        assert sink.results == {0: 20, 1: 40}

    def test_task_error_is_failure_not_pool_error(self, stream):
        pool, sink = stream
        pool.submit_stream(0, ("boom", 7))
        pool.submit_stream(1, ("echo", 1))
        pump_until(pool, lambda: 0 in sink.failures and 1 in sink.results)
        assert sink.failures[0]["error"] == "task_error"
        assert "bad task 7" in sink.failures[0]["detail"]
        # The worker survived the bad task and served the good one.
        assert sink.results[1] == 2

    def test_events_relayed_with_task_index(self, stream):
        pool, sink = stream
        pool.submit_stream(3, ("event", 5))
        pump_until(pool, lambda: 3 in sink.results)
        assert (3, {"progress": 5}) in sink.events
        assert sink.results[3] == 10


class TestStreamCancel:
    def test_cancel_queued_task(self, stream):
        pool, sink = stream
        # Two sleepers occupy both workers; the third waits in queue.
        pool.submit_stream(0, ("sleep", 0.3))
        pool.submit_stream(1, ("sleep", 0.3))
        pool.submit_stream(2, ("echo", 9))
        assert pool.cancel_stream(2)
        pump_until(pool, lambda: {0, 1} <= set(sink.results))
        assert 2 not in sink.results
        assert 2 not in sink.failures  # cancelled silently, as requested

    def test_cancel_inflight_kills_and_replaces_worker(self, stream):
        pool, sink = stream
        pool.submit_stream(0, ("sleep", 30.0))
        # Wait until the sleeper is actually dispatched.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            pool.pump(block=True)
            if any(w.inflight == 0 for w in pool._workers.values()):
                break
        assert pool.cancel_stream(0)
        assert pool.stats["cancel_kills"] == 1
        # The replacement worker still serves new tasks.
        pool.submit_stream(1, ("echo", 4))
        pump_until(pool, lambda: 1 in sink.results)
        assert sink.results[1] == 8
        assert 0 not in sink.results

    def test_cancel_unknown_or_finished_returns_false(self, stream):
        pool, sink = stream
        assert not pool.cancel_stream(99)
        pool.submit_stream(0, ("echo", 1))
        pump_until(pool, lambda: 0 in sink.results)
        assert not pool.cancel_stream(0)


class TestStreamSetup:
    def test_single_job_pool_refuses_stream(self):
        pool = SupervisedPool(EchoSession, jobs=1)
        sink = Collector()
        assert not pool.start_stream(on_result=sink.on_result,
                                     on_failure=sink.on_failure)

    def test_submit_outside_stream_raises(self):
        from repro.exec.pool import PoolError

        pool = SupervisedPool(EchoSession, jobs=2)
        with pytest.raises(PoolError):
            pool.submit_stream(0, ("echo", 1))

    def test_stop_stream_idempotent(self):
        pool = SupervisedPool(EchoSession, jobs=2)
        sink = Collector()
        assert pool.start_stream(on_result=sink.on_result,
                                 on_failure=sink.on_failure)
        pool.stop_stream()
        pool.stop_stream()  # second stop is a no-op
        assert pool._workers == {}
