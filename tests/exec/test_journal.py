"""Campaign journal: durability, torn tails, fingerprint binding."""

import json

import pytest

from repro.exec import JOURNAL_SCHEMA, CampaignJournal, JournalError, fault_key


def _record(k: int) -> dict:
    return {"fault": {"kind": "seu", "target": f"r{k}", "bit": 0,
                      "cycle": k},
            "outcome": "masked", "first_divergence": None}


META = {"flow": "rtl", "selfcheck": "masked"}


class TestAppend:
    def test_records_and_meta_round_trip(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal(path, "fp1").open() as journal:
            journal.set_meta(META)
            for k in range(3):
                journal.append_record(_record(k))
        resumed = CampaignJournal(path, "fp1").open(resume=True)
        assert resumed.meta == META
        assert len(resumed.entries) == 3
        key = fault_key(_record(1)["fault"])
        assert resumed.entries[key]["fault"]["target"] == "r1"
        resumed.close()

    def test_header_line_is_first(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal(path, "fp1").open() as journal:
            journal.append_record(_record(0))
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"schema": JOURNAL_SCHEMA, "campaign": "fp1"}

    def test_duplicate_appends_are_dropped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal(path, "fp1").open() as journal:
            journal.append_record(_record(0))
            journal.append_record(_record(0))
        assert len(path.read_text().splitlines()) == 2  # header + 1

    def test_meta_change_is_rejected(self, tmp_path):
        with CampaignJournal(tmp_path / "c.jsonl", "fp1").open() as journal:
            journal.set_meta(META)
            journal.set_meta(dict(META))  # identical: idempotent
            with pytest.raises(JournalError, match="not deterministic"):
                journal.set_meta({"flow": "netlist"})


class TestRecovery:
    def test_open_without_resume_truncates(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal(path, "fp1").open() as journal:
            journal.append_record(_record(0))
        with CampaignJournal(path, "fp1").open(resume=False) as journal:
            assert journal.entries == {}
        assert len(path.read_text().splitlines()) == 1  # fresh header

    def test_torn_tail_is_dropped_and_overwritten(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal(path, "fp1").open() as journal:
            journal.append_record(_record(0))
            journal.append_record(_record(1))
        # Simulate a crash mid-append: a half-written trailing line.
        with open(path, "ab") as handle:
            handle.write(b'{"record": {"fault": {"kind"')
        resumed = CampaignJournal(path, "fp1").open(resume=True)
        assert len(resumed.entries) == 2
        resumed.append_record(_record(2))
        resumed.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 4  # header + 3 records, torn tail gone
        assert lines[-1]["record"]["fault"]["target"] == "r2"

    def test_valid_json_tail_without_newline_is_torn(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal(path, "fp1").open() as journal:
            journal.append_record(_record(0))
        raw = path.read_bytes()
        path.write_bytes(raw + json.dumps({"record": _record(1)}).encode())
        resumed = CampaignJournal(path, "fp1").open(resume=True)
        assert len(resumed.entries) == 1  # unterminated write not trusted
        resumed.close()

    def test_foreign_fingerprint_starts_fresh(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal(path, "fp1").open() as journal:
            journal.append_record(_record(0))
        resumed = CampaignJournal(path, "other").open(resume=True)
        assert resumed.entries == {}
        resumed.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["campaign"] == "other"

    def test_missing_file_resumes_empty(self, tmp_path):
        journal = CampaignJournal(tmp_path / "missing.jsonl", "fp1")
        journal.open(resume=True)
        assert journal.entries == {} and journal.meta is None
        journal.close()
