"""Unit and property tests for fixed-width integers and width rules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import (
    Bit,
    BitVector,
    Signed,
    Unsigned,
    add_width,
    bitwise_width,
    mul_width,
)


def u(width=8):
    return st.integers(0, (1 << width) - 1).map(lambda v: Unsigned(width, v))


def s(width=8):
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    return st.integers(lo, hi).map(lambda v: Signed(width, v))


class TestWidthRules:
    def test_rule_functions(self):
        assert add_width(8, 12) == 12
        assert mul_width(8, 12) == 20
        assert bitwise_width(8, 12) == 12

    def test_add_result_width(self):
        assert (Unsigned(8, 1) + Unsigned(12, 1)).width == 12

    def test_mul_result_width(self):
        assert (Unsigned(8, 3) * Unsigned(4, 3)).width == 12

    def test_shift_preserves_width(self):
        assert (Unsigned(8, 1) << 3).width == 8
        assert (Signed(8, -4) >> 1).width == 8


class TestUnsignedArithmetic:
    @given(a=u(), b=u())
    def test_add_wraps_modulo(self, a, b):
        assert (a + b).value == (a.value + b.value) % 256

    @given(a=u(), b=u())
    def test_sub_wraps_modulo(self, a, b):
        assert (a - b).value == (a.value - b.value) % 256

    @given(a=u(), b=u())
    def test_mul_exact(self, a, b):
        assert (a * b).value == a.value * b.value

    def test_int_operand_coerced(self):
        assert (Unsigned(8, 250) + 10).value == 4

    def test_negative_const_with_unsigned_rejected(self):
        with pytest.raises(ValueError):
            Unsigned(8, 5) + (-1)

    def test_floor_division(self):
        assert (Unsigned(8, 100) // Unsigned(8, 7)).value == 14

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Unsigned(8, 1) // Unsigned(8, 0)

    def test_modulo(self):
        assert (Unsigned(8, 100) % 8).value == 4


class TestSignedArithmetic:
    def test_two_complement_wrap(self):
        assert Signed(8, 255).value == -1

    @given(a=s(), b=s())
    def test_add_two_complement(self, a, b):
        total = (a.value + b.value) & 0xFF
        if total >> 7:
            total -= 256
        assert (a + b).value == total

    def test_neg(self):
        assert (-Signed(8, 5)).value == -5
        assert (-Signed(8, -128)).value == -128  # wraps

    def test_arithmetic_shift_right(self):
        assert (Signed(8, -5) >> 1).value == -3

    def test_division_truncates_toward_zero(self):
        assert (Signed(8, -7) // Signed(8, 2)).value == -3

    def test_comparisons_sign_aware(self):
        assert Signed(8, -1) < Signed(8, 0)
        assert Signed(8, -1) < 0

    def test_mixing_signedness_rejected(self):
        with pytest.raises(TypeError):
            Unsigned(8, 1) + Signed(8, 1)


class TestBitwiseAndBits:
    @given(a=u(), b=u())
    def test_bitwise(self, a, b):
        assert (a & b).raw == a.raw & b.raw
        assert (a | b).raw == a.raw | b.raw
        assert (a ^ b).raw == a.raw ^ b.raw

    def test_invert(self):
        assert (~Unsigned(8, 0)).raw == 0xFF

    def test_or_with_bit(self):
        assert (Unsigned(8, 0b10) | Bit(1)).value == 0b11

    def test_or_with_bitvector(self):
        assert (Unsigned(8, 0) | BitVector(4, 0b1010)).value == 0b1010

    def test_bit_select(self):
        assert Unsigned(8, 0b100)[2] == 1
        assert Signed(8, -1).bit(7) == 1

    def test_range_returns_bitvector(self):
        part = Unsigned(8, 0b10110010).range(5, 2)
        assert isinstance(part, BitVector) and part.value == 0b1100

    def test_to_bits_roundtrip(self):
        value = Signed(8, -100)
        assert value.to_bits().to_signed().value == -100


class TestResizeAndConversion:
    def test_unsigned_resize_extends(self):
        assert Unsigned(4, 9).resized(8).value == 9

    def test_signed_resize_sign_extends(self):
        assert Signed(4, -3).resized(8).value == -3

    def test_resize_truncates(self):
        assert Unsigned(8, 0x1F).resized(4).value == 0xF

    def test_to_signed_reinterprets(self):
        assert Unsigned(4, 0xF).to_signed().value == -1
        assert Signed(4, -1).to_unsigned().value == 15

    @given(a=u())
    def test_resize_roundtrip(self, a):
        assert a.resized(16).resized(8).value == a.value


class TestComparisons:
    @given(a=u(), b=u())
    def test_ordering_matches_values(self, a, b):
        assert (a < b) == (a.value < b.value)
        assert (a >= b) == (a.value >= b.value)
        assert (a == b) == (a.value == b.value)

    def test_hash_consistent(self):
        assert len({Unsigned(8, 5), Unsigned(8, 5)}) == 1
