"""Tests for type descriptors (TypeSpec)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import Bit, BitVector, FixedPoint, Signed, Unsigned
from repro.types.spec import TypeSpec, bit, bits, fixed, signed, spec_of, unsigned


class TestConstructionAndIdentity:
    def test_helpers(self):
        assert bit().kind == "bit" and bit().width == 1
        assert bits(8).kind == "bv"
        assert unsigned(8).width == 8
        assert fixed(4, 4).width == 8 and fixed(4, 4).frac_bits == 4

    def test_equality_and_hash(self):
        assert unsigned(8) == unsigned(8)
        assert unsigned(8) != signed(8)
        assert len({unsigned(8), unsigned(8), bits(8)}) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            unsigned(8).width = 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            TypeSpec("bogus", 4)
        with pytest.raises(ValueError):
            TypeSpec("bit", 2)
        with pytest.raises(ValueError):
            unsigned(0)

    def test_describe(self):
        assert unsigned(8).describe() == "unsigned(8)"
        assert bit().describe() == "bit()"
        assert fixed(4, 4).describe() == "fixed(4, 4)"


class TestValues:
    def test_defaults(self):
        assert unsigned(8).default() == Unsigned(8, 0)
        assert bit().default() == Bit(0)

    @given(raw=st.integers(0, 255))
    def test_raw_roundtrip_unsigned(self, raw):
        spec = unsigned(8)
        assert spec.to_raw(spec.from_raw(raw)) == raw

    @given(raw=st.integers(0, 255))
    def test_raw_roundtrip_signed(self, raw):
        spec = signed(8)
        assert spec.to_raw(spec.from_raw(raw)) == raw

    @given(raw=st.integers(0, 255))
    def test_raw_roundtrip_fixed(self, raw):
        spec = fixed(4, 4)
        assert spec.to_raw(spec.from_raw(raw)) == raw

    def test_from_raw_signed_interprets(self):
        assert signed(8).from_raw(0xFF).value == -1

    def test_check_type(self):
        with pytest.raises(TypeError):
            unsigned(8).check(BitVector(8, 0))

    def test_check_width(self):
        with pytest.raises(ValueError):
            unsigned(8).check(Unsigned(4, 0))

    def test_accepts(self):
        assert unsigned(8).accepts(Unsigned(8, 1))
        assert not unsigned(8).accepts(Unsigned(9, 1))


class TestSpecOf:
    def test_all_kinds(self):
        assert spec_of(Bit(1)) == bit()
        assert spec_of(BitVector(5, 0)) == bits(5)
        assert spec_of(Unsigned(8, 0)) == unsigned(8)
        assert spec_of(Signed(6, 0)) == signed(6)
        assert spec_of(FixedPoint(4, 4)) == fixed(4, 4)

    def test_non_hardware_rejected(self):
        with pytest.raises(TypeError):
            spec_of(42)
