"""Tests for the fixed-point prototype (paper §6 automated resolution)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import FixedPoint


def fixeds():
    return st.tuples(st.integers(2, 8), st.integers(0, 8),
                     st.integers(-100, 100)).map(
        lambda t: FixedPoint(t[0] + 8, t[1], Fraction(t[2], 8))
    )


class TestConstruction:
    def test_exact_representation(self):
        assert float(FixedPoint(4, 4, 1.5)) == 1.5

    def test_quantization_truncates_down(self):
        assert FixedPoint(4, 2, 0.3).value == Fraction(1, 4)
        assert FixedPoint(4, 2, -0.3).value == Fraction(-1, 2)

    def test_from_fixedpoint_realigns(self):
        src = FixedPoint(4, 4, 1.25)
        assert FixedPoint(4, 2, src).value == Fraction(5, 4)

    def test_needs_sign_bit(self):
        with pytest.raises(ValueError):
            FixedPoint(0, 4)

    def test_width(self):
        assert FixedPoint(4, 4).width == 8


class TestAutomaticResolution:
    def test_add_format(self):
        result = FixedPoint(4, 2, 1.5) + FixedPoint(3, 4, 0.25)
        assert (result.int_bits, result.frac_bits) == (5, 4)
        assert float(result) == 1.75

    def test_mul_format(self):
        result = FixedPoint(4, 4, 1.5) * FixedPoint(4, 4, 2.25)
        assert (result.int_bits, result.frac_bits) == (8, 8)
        assert float(result) == 3.375

    def test_sub(self):
        assert float(FixedPoint(4, 4, 1.0) - FixedPoint(4, 4, 2.5)) == -1.5

    def test_neg_adds_headroom(self):
        value = -FixedPoint(4, 4, 1.5)
        assert value.int_bits == 5 and float(value) == -1.5

    @given(a=fixeds(), b=fixeds())
    def test_add_exact_no_overflow(self, a, b):
        assert (a + b).value == a.value + b.value

    @given(a=fixeds(), b=fixeds())
    def test_mul_exact(self, a, b):
        assert (a * b).value == a.value * b.value

    def test_int_operand(self):
        assert float(FixedPoint(4, 4, 1.5) + 2) == 3.5

    def test_stored_integer_view(self):
        assert FixedPoint(4, 4, 1.5).stored.value == 24  # 1.5 * 16


class TestComparisonsAndFormat:
    def test_ordering(self):
        assert FixedPoint(4, 4, 1.0) < FixedPoint(4, 2, 1.5)
        assert FixedPoint(4, 4, 1.0) == 1

    def test_quantized_conversion(self):
        value = FixedPoint(8, 8, 1.75).quantized(4, 1)
        assert value.frac_bits == 1 and float(value) == 1.5

    def test_hash(self):
        assert len({FixedPoint(4, 4, 0.5), FixedPoint(5, 5, 0.5)}) == 1
