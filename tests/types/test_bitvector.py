"""Unit and property tests for BitVector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import Bit, BitVector, concat


def vectors(max_width=24):
    return st.integers(1, max_width).flatmap(
        lambda w: st.integers(0, (1 << w) - 1).map(
            lambda v: BitVector(w, v)
        )
    )


class TestConstruction:
    def test_from_int_masks(self):
        assert BitVector(4, 0x1F).value == 0xF

    def test_negative_int_two_complement(self):
        assert BitVector(4, -1).value == 0xF

    def test_from_string_msb_first(self):
        assert BitVector(4, "1010").value == 0b1010

    def test_bad_string(self):
        with pytest.raises(ValueError):
            BitVector(4, "102x")

    def test_from_bit(self):
        assert BitVector(1, Bit(1)).value == 1
        with pytest.raises(ValueError):
            BitVector(2, Bit(1))

    def test_width_mismatch_copy(self):
        with pytest.raises(ValueError):
            BitVector(4, BitVector(5, 0))

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0)


class TestSelection:
    def test_bit_indexing(self):
        v = BitVector(4, 0b1010)
        assert v.bit(0) == 0 and v.bit(1) == 1 and v[3] == 1

    def test_negative_index(self):
        assert BitVector(4, 0b1000)[-1] == 1

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(4, 0).bit(4)

    def test_range_inclusive(self):
        assert BitVector(8, 0b10110010).range(5, 2).value == 0b1100

    def test_range_validation(self):
        with pytest.raises(ValueError):
            BitVector(8, 0).range(2, 5)
        with pytest.raises(IndexError):
            BitVector(8, 0).range(8, 0)

    def test_slice_syntax_rejected(self):
        with pytest.raises(TypeError):
            BitVector(8, 0)[3:1]

    def test_iteration_lsb_first(self):
        assert [int(b) for b in BitVector(4, 0b0011)] == [1, 1, 0, 0]


class TestFunctionalUpdates:
    def test_with_bit(self):
        assert BitVector(4, 0b0000).with_bit(2, 1).value == 0b0100

    def test_with_range(self):
        v = BitVector(8, 0).with_range(5, 2, BitVector(4, 0b1111))
        assert v.value == 0b00111100

    def test_with_range_width_check(self):
        with pytest.raises(ValueError):
            BitVector(8, 0).with_range(5, 2, BitVector(3, 0))

    def test_original_unchanged(self):
        v = BitVector(4, 0)
        v.with_bit(0, 1)
        assert v.value == 0


class TestOperators:
    @given(w=st.integers(1, 16), a=st.integers(0, 65535),
           b=st.integers(0, 65535))
    def test_bitwise_matches_ints(self, w, a, b):
        mask = (1 << w) - 1
        va, vb = BitVector(w, a), BitVector(w, b)
        assert (va & vb).value == (a & b) & mask
        assert (va | vb).value == (a | b) & mask
        assert (va ^ vb).value == (a ^ b) & mask
        assert (~va).value == ~a & mask

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVector(4, 0) & BitVector(5, 0)

    @given(v=vectors(), k=st.integers(0, 30))
    def test_shifts_preserve_width(self, v, k):
        assert (v << k).width == v.width
        assert (v >> k).value == v.value >> k


class TestReductionsAndConcat:
    def test_reduce_and(self):
        assert BitVector(3, 0b111).reduce_and() == 1
        assert BitVector(3, 0b101).reduce_and() == 0

    def test_reduce_or(self):
        assert BitVector(3, 0).reduce_or() == 0
        assert BitVector(3, 0b010).reduce_or() == 1

    @given(v=vectors())
    def test_reduce_xor_is_parity(self, v):
        assert int(v.reduce_xor()) == bin(v.value).count("1") % 2

    def test_concat_method(self):
        assert BitVector(2, 0b10).concat(BitVector(3, 0b011)).value == 0b10011

    def test_concat_function_msb_first(self):
        assert concat(Bit(1), BitVector(3, 0b010)).value == 0b1010
        assert concat(Bit(1), BitVector(3, 0b010)).width == 4

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            concat()

    @given(a=vectors(8), b=vectors(8))
    def test_concat_roundtrip(self, a, b):
        joined = a.concat(b)
        assert joined.range(b.width - 1, 0).value == b.value
        assert joined.range(joined.width - 1, b.width).value == a.value


class TestConversions:
    def test_resized_truncates_lsbs(self):
        assert BitVector(8, 0b10110110).resized(4).value == 0b0110

    def test_resized_zero_extends(self):
        assert BitVector(4, 0b1010).resized(8).value == 0b1010

    def test_to_unsigned_signed(self):
        assert BitVector(4, 0xF).to_unsigned().value == 15
        assert BitVector(4, 0xF).to_signed().value == -1

    def test_to_binary(self):
        assert BitVector(5, 0b00110).to_binary() == "00110"

    def test_equality_with_int(self):
        assert BitVector(4, 5) == 5
        assert BitVector(4, 5) != 6
