"""Unit tests for the single-bit logic type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import HIGH, LOW, Bit


class TestConstruction:
    def test_default_is_zero(self):
        assert Bit().value == 0

    def test_from_int(self):
        assert Bit(1).value == 1
        assert Bit(0).value == 0

    def test_from_bool(self):
        assert Bit(True).value == 1
        assert Bit(False).value == 0

    def test_from_bit(self):
        assert Bit(Bit(1)).value == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Bit(2)
        with pytest.raises(ValueError):
            Bit(-1)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            Bit("1")

    def test_constants(self):
        assert LOW.value == 0 and HIGH.value == 1


class TestOperators:
    def test_invert(self):
        assert (~Bit(0)).value == 1
        assert (~Bit(1)).value == 0

    @given(a=st.integers(0, 1), b=st.integers(0, 1))
    def test_and_or_xor_truth_tables(self, a, b):
        assert (Bit(a) & Bit(b)).value == (a & b)
        assert (Bit(a) | Bit(b)).value == (a | b)
        assert (Bit(a) ^ Bit(b)).value == (a ^ b)

    def test_operators_with_plain_ints(self):
        assert (Bit(1) & 1).value == 1
        assert (1 | Bit(0)).value == 1

    def test_bool_and_int_conversion(self):
        assert bool(Bit(1)) is True
        assert bool(Bit(0)) is False
        assert int(Bit(1)) == 1

    def test_index_usable(self):
        assert [10, 20][Bit(1)] == 20


class TestEquality:
    def test_eq_bit(self):
        assert Bit(1) == Bit(1)
        assert Bit(1) != Bit(0)

    def test_eq_int_and_bool(self):
        assert Bit(1) == 1
        assert Bit(0) == False  # noqa: E712

    def test_hashable(self):
        assert len({Bit(0), Bit(1), Bit(1)}) == 2

    def test_width_is_one(self):
        assert Bit(0).width == 1

    def test_repr_and_str(self):
        assert repr(Bit(1)) == "Bit(1)"
        assert str(Bit(0)) == "0"
