"""Seeded randomized property tests: hardware types vs exact oracles.

Every case draws operands from a fixed-seed RNG (reproducible runs) with
the wrap-critical edge values (0, ±1, min, max) mixed into the pools,
and checks the hardware result against a plain Python ``int`` /
``fractions.Fraction`` model of the documented semantics:

* ``Unsigned``/``Signed``: ``+``/``-`` at ``max(wa, wb)`` bits with
  modular wrap, ``*`` at ``wa + wb`` bits, bitwise ops on raw patterns,
  value comparisons, and ``resized`` (zero-/sign-extend, truncate).
* ``FixedPoint``: exact ``Fraction`` arithmetic under the automatic
  result formats, and wrap-around quantization to narrower formats.
* ``BitVector``: bitwise ops, ``range`` slices and ``concat`` against
  integer shifting/masking.
"""

import random
from fractions import Fraction

from repro.types import BitVector, FixedPoint, Signed, Unsigned

N_CASES = 200
WIDTHS = (1, 3, 8, 13, 16)


def mask(width):
    return (1 << width) - 1


def wrap_unsigned(value, width):
    return value & mask(width)


def wrap_signed(value, width):
    wrapped = value & mask(width)
    if wrapped >= 1 << (width - 1):
        wrapped -= 1 << width
    return wrapped


def draw_raw(rng, width):
    """Random raw pattern, biased toward the wrap-critical edges."""
    edges = [0, 1, mask(width), mask(width) - 1, 1 << (width - 1)]
    if rng.random() < 0.4:
        return rng.choice(edges) & mask(width)
    return rng.getrandbits(width)


class TestUnsignedArithmetic:
    def test_add_sub_wrap_to_max_width(self):
        rng = random.Random(1001)
        for _ in range(N_CASES):
            wa, wb = rng.choice(WIDTHS), rng.choice(WIDTHS)
            a, b = draw_raw(rng, wa), draw_raw(rng, wb)
            width = max(wa, wb)
            total = Unsigned(wa, a) + Unsigned(wb, b)
            assert total.width == width
            assert total.value == wrap_unsigned(a + b, width)
            diff = Unsigned(wa, a) - Unsigned(wb, b)
            assert diff.width == width
            assert diff.value == wrap_unsigned(a - b, width)

    def test_mul_width_never_wraps(self):
        rng = random.Random(1002)
        for _ in range(N_CASES):
            wa, wb = rng.choice(WIDTHS), rng.choice(WIDTHS)
            a, b = draw_raw(rng, wa), draw_raw(rng, wb)
            product = Unsigned(wa, a) * Unsigned(wb, b)
            assert product.width == wa + wb
            # The full-width product always fits: no information loss.
            assert product.value == a * b

    def test_bitwise_on_raw_patterns(self):
        rng = random.Random(1003)
        for _ in range(N_CASES):
            wa, wb = rng.choice(WIDTHS), rng.choice(WIDTHS)
            a, b = draw_raw(rng, wa), draw_raw(rng, wb)
            width = max(wa, wb)
            x, y = Unsigned(wa, a), Unsigned(wb, b)
            assert (x & y).value == (a & b) & mask(width)
            assert (x | y).value == (a | b) & mask(width)
            assert (x ^ y).value == (a ^ b) & mask(width)
            assert (~x).value == (~a) & mask(wa)

    def test_comparisons_are_value_comparisons(self):
        rng = random.Random(1004)
        for _ in range(N_CASES):
            wa, wb = rng.choice(WIDTHS), rng.choice(WIDTHS)
            a, b = draw_raw(rng, wa), draw_raw(rng, wb)
            x, y = Unsigned(wa, a), Unsigned(wb, b)
            assert (x < y) == (a < b)
            assert (x >= y) == (a >= b)
            assert (x == y) == (a == b)

    def test_resized_extends_and_truncates(self):
        rng = random.Random(1005)
        for _ in range(N_CASES):
            wa = rng.choice(WIDTHS)
            target = rng.choice(WIDTHS)
            a = draw_raw(rng, wa)
            resized = Unsigned(wa, a).resized(target)
            assert resized.width == target
            assert resized.value == a & mask(target)

    def test_shifts(self):
        rng = random.Random(1006)
        for _ in range(N_CASES):
            wa = rng.choice(WIDTHS)
            a = draw_raw(rng, wa)
            amount = rng.randrange(0, wa + 2)
            assert (Unsigned(wa, a) << amount).value == \
                (a << amount) & mask(wa)
            assert (Unsigned(wa, a) >> amount).value == a >> amount


class TestSignedArithmetic:
    def draw(self, rng, width):
        raw = draw_raw(rng, width)
        return wrap_signed(raw, width)

    def test_add_sub_wrap_two_complement(self):
        rng = random.Random(2001)
        for _ in range(N_CASES):
            wa, wb = rng.choice(WIDTHS), rng.choice(WIDTHS)
            va, vb = self.draw(rng, wa), self.draw(rng, wb)
            width = max(wa, wb)
            total = Signed(wa, va) + Signed(wb, vb)
            assert total.width == width
            assert total.value == wrap_signed(va + vb, width)
            diff = Signed(wa, va) - Signed(wb, vb)
            assert diff.value == wrap_signed(va - vb, width)

    def test_mul_full_width_exact(self):
        rng = random.Random(2002)
        for _ in range(N_CASES):
            wa, wb = rng.choice(WIDTHS), rng.choice(WIDTHS)
            va, vb = self.draw(rng, wa), self.draw(rng, wb)
            product = Signed(wa, va) * Signed(wb, vb)
            assert product.width == wa + wb
            # wa + wb bits hold any two's-complement product of wa- and
            # wb-bit operands except none: always exact.
            assert product.value == wrap_signed(va * vb, wa + wb) == va * vb

    def test_negation_wraps_at_minimum(self):
        rng = random.Random(2003)
        for width in WIDTHS:
            minimum = -(1 << (width - 1))
            assert Signed(width, minimum).value == minimum
            # -min wraps back to min: the classic two's-complement edge.
            assert (-Signed(width, minimum)).value == minimum
            for _ in range(20):
                v = self.draw(rng, width)
                assert (-Signed(width, v)).value == wrap_signed(-v, width)

    def test_resized_sign_extends_and_truncates(self):
        rng = random.Random(2004)
        for _ in range(N_CASES):
            wa, target = rng.choice(WIDTHS), rng.choice(WIDTHS)
            v = self.draw(rng, wa)
            resized = Signed(wa, v).resized(target)
            assert resized.width == target
            assert resized.value == wrap_signed(v, target)

    def test_arithmetic_shift_right(self):
        rng = random.Random(2005)
        for _ in range(N_CASES):
            wa = rng.choice(WIDTHS)
            v = self.draw(rng, wa)
            amount = rng.randrange(0, wa + 2)
            assert (Signed(wa, v) >> amount).value == v >> amount

    def test_unsigned_signed_reinterpret_round_trip(self):
        rng = random.Random(2006)
        for _ in range(N_CASES):
            wa = rng.choice(WIDTHS)
            raw = draw_raw(rng, wa)
            as_signed = Unsigned(wa, raw).to_signed()
            assert as_signed.value == wrap_signed(raw, wa)
            assert as_signed.to_unsigned().value == raw


class TestFixedPointProperties:
    FORMATS = ((2, 0), (4, 4), (8, 8), (3, 7), (12, 2))

    def draw(self, rng, int_bits, frac_bits):
        width = int_bits + frac_bits
        raw = draw_raw(rng, width)
        return FixedPoint(int_bits, frac_bits,
                          Fraction(wrap_signed(raw, width), 1 << frac_bits))

    def test_add_sub_exact_fraction_oracle(self):
        rng = random.Random(3001)
        for _ in range(N_CASES):
            fa = rng.choice(self.FORMATS)
            fb = rng.choice(self.FORMATS)
            a = self.draw(rng, *fa)
            b = self.draw(rng, *fb)
            total = a + b
            # add_format grows the integer part by one bit, so the sum
            # is always exact.
            assert (total.int_bits, total.frac_bits) == \
                FixedPoint.add_format(a, b)
            assert total.value == a.value + b.value
            assert (a - b).value == a.value - b.value

    def test_mul_exact_fraction_oracle(self):
        rng = random.Random(3002)
        for _ in range(N_CASES):
            a = self.draw(rng, *rng.choice(self.FORMATS))
            b = self.draw(rng, *rng.choice(self.FORMATS))
            product = a * b
            assert (product.int_bits, product.frac_bits) == \
                FixedPoint.mul_format(a, b)
            assert product.value == a.value * b.value

    def test_quantize_truncates_toward_negative_infinity(self):
        rng = random.Random(3003)
        for _ in range(N_CASES):
            a = self.draw(rng, 6, 6)
            q = a.quantized(6, 2)
            # Truncation: scaled value floored at the coarser resolution.
            scaled = a.value * 4
            expected = scaled.numerator // scaled.denominator
            assert q.stored.value == wrap_signed(expected, 8)

    def test_quantize_wraps_out_of_range(self):
        # +7.5 does not fit (2, 1): stored 1111 wraps to -0.5.
        wide = FixedPoint(5, 1, 7.5)
        narrow = wide.quantized(2, 1)
        assert narrow.value == Fraction(-1, 2)


class TestBitVectorProperties:
    def test_bitwise_against_int_oracle(self):
        rng = random.Random(4001)
        for _ in range(N_CASES):
            width = rng.choice(WIDTHS)
            a, b = draw_raw(rng, width), draw_raw(rng, width)
            x, y = BitVector(width, a), BitVector(width, b)
            assert (x & y).value == a & b
            assert (x | y).value == a | b
            assert (x ^ y).value == a ^ b
            assert (~x).value == (~a) & mask(width)

    def test_range_slices(self):
        rng = random.Random(4002)
        for _ in range(N_CASES):
            width = rng.choice((8, 13, 16))
            raw = draw_raw(rng, width)
            lo = rng.randrange(0, width)
            hi = rng.randrange(lo, width)
            part = BitVector(width, raw).range(hi, lo)
            assert part.width == hi - lo + 1
            assert part.value == (raw >> lo) & mask(hi - lo + 1)

    def test_concat_against_shift_oracle(self):
        rng = random.Random(4003)
        for _ in range(N_CASES):
            wa, wb = rng.choice(WIDTHS), rng.choice(WIDTHS)
            a, b = draw_raw(rng, wa), draw_raw(rng, wb)
            joined = BitVector(wa, a).concat(BitVector(wb, b))
            assert joined.width == wa + wb
            assert joined.value == (a << wb) | b

    def test_slice_concat_round_trip(self):
        rng = random.Random(4004)
        for _ in range(N_CASES):
            width = rng.choice((8, 13, 16))
            raw = draw_raw(rng, width)
            cut = rng.randrange(1, width)
            vec = BitVector(width, raw)
            high = vec.range(width - 1, cut)
            low = vec.range(cut - 1, 0)
            assert high.concat(low).value == raw
