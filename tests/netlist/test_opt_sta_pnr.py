"""Tests for netlist optimization, STA, placement, linking, circuit rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    Circuit,
    GateSimulator,
    NetlistError,
    analyze,
    cell_histogram,
    link,
    map_module,
    optimize,
    place,
    total_area,
)
from repro.netlist.cells import DFF, LIBRARY
from repro.rtl import BinOp, Const, Read, RtlBuilder, RtlModule, mux
from repro.types.spec import bit, unsigned


def small_design():
    b = RtlBuilder("d")
    a = b.input("a", unsigned(4))
    c = b.input("b", unsigned(4))
    reg = b.register("acc", unsigned(8))
    b.next(reg, (Read(reg) + (a * c)).resized(8))
    b.output("q", Read(reg))
    return b.build()


class TestCircuitRules:
    def test_multiple_drivers_rejected(self):
        c = Circuit("c")
        n = c.new_net("n")
        c.add_cell("g1", "TIE0", y=n)
        with pytest.raises(NetlistError):
            c.add_cell("g2", "TIE1", y=n)

    def test_unconnected_pin_rejected(self):
        c = Circuit("c")
        n = c.new_net("n")
        with pytest.raises(NetlistError):
            c.add_cell("g", "INV", a=n)  # y missing

    def test_validate_undriven(self):
        c = Circuit("c")
        a, y = c.new_net("a"), c.new_net("y")
        c.add_cell("g", "INV", a=a, y=y)
        c.mark_output("y", [y])
        with pytest.raises(NetlistError):
            c.validate()

    def test_topological_order_detects_loop(self):
        c = Circuit("c")
        a, b = c.new_net("a"), c.new_net("b")
        c.add_cell("g1", "INV", a=a, y=b)
        c.add_cell("g2", "INV", a=b, y=a)
        c.mark_output("y", [a])
        with pytest.raises(NetlistError):
            c.topological_comb_order()


class TestOptimization:
    def test_reduces_area_and_preserves_behavior(self):
        module = small_design()
        raw = map_module(module)
        before_cells = len(raw.cells)
        reference = GateSimulator(map_module(small_design()))
        optimize(raw)
        assert len(raw.cells) < before_cells
        optimized = GateSimulator(raw)
        stim = [dict(reset=1)] + [
            dict(reset=0, a=i % 16, b=(3 * i) % 16) for i in range(40)
        ]
        for entry in stim:
            reference.step(**entry)
            optimized.step(**entry)
            assert reference.peek_outputs() == optimized.peek_outputs()

    def test_constant_folding_collapses(self):
        m = RtlModule("m")
        a = m.add_input("a", bit())
        zero = Const(bit(), 0)
        m.add_output("y", BinOp("and", Read(a), zero))
        circuit = map_module(m)
        optimize(circuit)
        # y is constant 0: only the tie cell should remain.
        kinds = cell_histogram(circuit)
        assert kinds.get("AND2", 0) == 0

    def test_double_inverter_removed(self):
        m = RtlModule("m")
        a = m.add_input("a", bit())
        from repro.rtl import UnaryOp

        m.add_output("y", UnaryOp("not", UnaryOp("not", Read(a))))
        circuit = map_module(m)
        optimize(circuit)
        assert cell_histogram(circuit).get("INV", 0) == 0

    def test_cse_merges_duplicates(self):
        m = RtlModule("m")
        a = m.add_input("a", unsigned(4))
        b = m.add_input("b", unsigned(4))
        # Two identical adders.
        m.add_output("x", BinOp("add", Read(a), Read(b)))
        m.add_output("y", BinOp("add", Read(a), Read(b)))
        circuit = map_module(m)
        before = total_area(circuit)
        optimize(circuit)
        assert total_area(circuit) <= before / 1.8

    def test_dead_logic_removed(self):
        m = RtlModule("m")
        a = m.add_input("a", unsigned(8))
        m.add_wire("unused", BinOp("mul", Read(a), Read(a)))
        m.add_output("y", Read(a))
        circuit = map_module(m)
        optimize(circuit)
        assert cell_histogram(circuit).get("AND2", 0) == 0


class TestTiming:
    def test_deeper_logic_is_slower(self):
        def adder(width):
            m = RtlModule(f"add{width}")
            a = m.add_input("a", unsigned(width))
            b = m.add_input("b", unsigned(width))
            m.add_output("y", BinOp("add", Read(a), Read(b)))
            return analyze(map_module(m))

        assert adder(16).critical_path_ns > adder(4).critical_path_ns

    def test_fmax_inverse_of_path(self):
        report = analyze(map_module(small_design()))
        assert report.fmax_mhz == pytest.approx(
            1000.0 / report.critical_path_ns
        )

    def test_meets(self):
        report = analyze(map_module(small_design()))
        assert report.meets(1.0)
        assert not report.meets(1e9)

    def test_registered_paths_include_clk_q_and_setup(self):
        b = RtlBuilder("pipe", reset_port=None)
        r1 = b.register("r1", bit())
        r2 = b.register("r2", bit())
        b.next(r1, Read(r2))
        b.next(r2, Read(r1))
        b.output("q", Read(r1))
        report = analyze(map_module(b.build()))
        assert report.critical_path_ns >= DFF.clk_to_q + DFF.setup

    def test_critical_path_names_cells(self):
        module = small_design()
        circuit = map_module(module)
        optimize(circuit)
        report = analyze(circuit)
        assert report.path, "expected a non-empty critical path"


class TestPlacement:
    def test_placement_covers_cells(self):
        circuit = map_module(small_design())
        optimize(circuit)
        placement = place(circuit)
        assert len(placement.positions) == len(
            circuit.flops() + circuit.topological_comb_order()
        )
        assert placement.total_wirelength > 0

    def test_wire_delays_slow_design(self):
        circuit = map_module(small_design())
        optimize(circuit)
        placement = place(circuit)
        plain = analyze(circuit)
        routed = analyze(circuit, placement.wire_delays())
        assert routed.critical_path_ns >= plain.critical_path_ns

    def test_configuration_record(self):
        circuit = map_module(small_design())
        optimize(circuit)
        config = place(circuit).configuration()
        assert config["design"] == "d" and config["placed_cells"] > 0


class TestLinker:
    def test_blackbox_resolution(self):
        from repro.baseline.vhdl_ip import ip_library, multiplier_blackbox

        b = RtlBuilder("host", reset_port=None)
        a = b.input("a", unsigned(16))
        c = b.input("b", unsigned(8))
        inst = b.instance("mul0", multiplier_blackbox(16, 8), a=a, b=c)
        b.output("p", inst.output("p"))
        module = b.build()
        circuit = map_module(module)
        assert circuit.blackboxes
        with pytest.raises(NetlistError):
            circuit.validate()  # unresolved until linked
        link(circuit, ip_library(16, 8))
        circuit.validate()
        sim = GateSimulator(circuit)
        sim.drive(a=300, b=7)
        sim._settle_all()
        assert sim.peek_outputs()["p"] == 2100

    def test_missing_ip_rejected(self):
        from repro.baseline.vhdl_ip import multiplier_blackbox

        b = RtlBuilder("host", reset_port=None)
        a = b.input("a", unsigned(16))
        c = b.input("b", unsigned(8))
        inst = b.instance("mul0", multiplier_blackbox(16, 8), a=a, b=c)
        b.output("p", inst.output("p"))
        circuit = map_module(b.build())
        with pytest.raises(NetlistError):
            link(circuit, {})
