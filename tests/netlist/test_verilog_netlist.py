"""Tests for the structural Verilog netlist emitter."""

import pytest

from repro.netlist import (
    map_module,
    netlist_stats_comment,
    optimize,
    to_structural_verilog,
)
from repro.netlist.verilog import CELL_MODELS
from repro.rtl import Read, RtlBuilder, mux
from repro.types.spec import bit, unsigned


def circuit():
    b = RtlBuilder("dsp")
    en = b.input("enable", bit())
    a = b.input("a", unsigned(4))
    reg = b.register("acc", unsigned(8))
    b.next(reg, mux(en, (Read(reg) + a).resized(8), Read(reg)))
    b.output("acc", Read(reg))
    c = map_module(b.build())
    optimize(c)
    return c


class TestStructuralEmission:
    def test_contains_cell_models(self):
        text = to_structural_verilog(circuit())
        for cell in ("module NAND2", "module DFF", "module MUX2"):
            assert cell in text

    def test_without_models(self):
        text = to_structural_verilog(circuit(), include_models=False)
        assert "module NAND2" not in text
        assert "module dsp" in text

    def test_bus_ports(self):
        text = to_structural_verilog(circuit())
        assert "input wire [3:0] a" in text
        assert "output wire [7:0] acc" in text

    def test_every_cell_instantiated(self):
        c = circuit()
        text = to_structural_verilog(c, include_models=False)
        instantiations = [line for line in text.splitlines()
                          if line.strip().startswith(
                              tuple(CELL_MODELS_NAMES))]
        assert len(instantiations) == len(c.cells)

    def test_flops_get_clock(self):
        text = to_structural_verilog(circuit(), include_models=False)
        dff_lines = [line for line in text.splitlines() if "DFF u" in line]
        assert dff_lines and all(".clk(clk)" in line for line in dff_lines)

    def test_unvalidated_circuit_rejected(self):
        from repro.netlist import Circuit

        c = Circuit("c")
        a, y = c.new_net("a"), c.new_net("y")
        c.add_cell("g", "INV", a=a, y=y)
        c.mark_output("y", [y])
        with pytest.raises(Exception):
            to_structural_verilog(c)

    def test_stats_comment(self):
        comment = netlist_stats_comment(circuit())
        assert comment.startswith("// design dsp")
        assert "DFF" in comment


CELL_MODELS_NAMES = ("INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2",
                     "XNOR2", "MUX2", "DFF", "TIE0", "TIE1")
