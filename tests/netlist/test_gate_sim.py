"""Focused tests of the event-driven gate simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import Circuit, GateSimulator, map_module, optimize
from repro.netlist.sim import _eval_cell
from repro.rtl import Read, RtlBuilder, mux
from repro.types.spec import bit, unsigned


class TestCellEvaluation:
    @given(a=st.integers(0, 1), b=st.integers(0, 1))
    def test_truth_tables(self, a, b):
        assert _eval_cell("AND2", [a, b]) == (a & b)
        assert _eval_cell("NAND2", [a, b]) == 1 - (a & b)
        assert _eval_cell("OR2", [a, b]) == (a | b)
        assert _eval_cell("NOR2", [a, b]) == 1 - (a | b)
        assert _eval_cell("XOR2", [a, b]) == (a ^ b)
        assert _eval_cell("XNOR2", [a, b]) == 1 - (a ^ b)
        assert _eval_cell("INV", [a]) == 1 - a
        assert _eval_cell("BUF", [a]) == a
        assert _eval_cell("MUX2", [a, b, 0]) == a
        assert _eval_cell("MUX2", [a, b, 1]) == b

    def test_unknown_cell(self):
        with pytest.raises(Exception):
            _eval_cell("ROM", [0])


def pipeline_circuit():
    b = RtlBuilder("pipe")
    x = b.input("x", unsigned(4))
    s1 = b.register("s1", unsigned(4))
    s2 = b.register("s2", unsigned(4))
    b.next(s1, x)
    b.next(s2, Read(s1))
    b.output("y", Read(s2))
    circuit = map_module(b.build())
    optimize(circuit)
    return circuit


class TestSequentialBehaviour:
    def test_two_stage_latency(self):
        sim = GateSimulator(pipeline_circuit())
        sim.step(reset=1)
        values = [5, 9, 3, 7]
        seen = []
        for value in values:
            sim.step(reset=0, x=value)
            seen.append(sim.peek_outputs()["y"])
        assert seen == [0, 5, 9, 3]

    def test_flops_commit_simultaneously(self):
        """s2 must take s1's OLD value, even though s1 changes same edge."""
        sim = GateSimulator(pipeline_circuit())
        sim.step(reset=1)
        sim.step(reset=0, x=15)
        outs = sim.peek_outputs()
        assert outs["y"] == 0  # not 15: no shoot-through

    def test_idle_cycles_cheap_but_correct(self):
        sim = GateSimulator(pipeline_circuit())
        sim.step(reset=1)
        sim.step(reset=0, x=9)
        for _ in range(5):
            sim.step(reset=0, x=9)  # no input changes
        assert sim.peek_outputs()["y"] == 9

    def test_cycle_counter(self):
        sim = GateSimulator(pipeline_circuit())
        sim.run([{"reset": 1}] * 3)
        assert sim.cycle == 3

    def test_unknown_bus_rejected(self):
        sim = GateSimulator(pipeline_circuit())
        with pytest.raises(Exception):
            sim.step(bogus=1)


class TestDriveSanitization:
    def test_wide_value_masked_to_bus_width(self):
        sim = GateSimulator(pipeline_circuit())
        sim.step(reset=1)
        sim.step(reset=0, x=0x1F5)  # 4-bit bus: only 0x5 survives
        sim.step(reset=0, x=0)
        assert sim.peek_outputs()["y"] == 0x5

    def test_masking_applies_before_change_detection(self):
        # 0x15 and 0x5 are the same 4-bit pattern: no nets may dirty.
        sim = GateSimulator(pipeline_circuit())
        sim.drive(x=0x5)
        assert sim.drive(x=0x15) == []

    def test_negative_value_rejected(self):
        from repro.netlist.circuit import NetlistError

        sim = GateSimulator(pipeline_circuit())
        with pytest.raises(NetlistError, match="negative"):
            sim.drive(x=-1)
        with pytest.raises(NetlistError, match="negative"):
            sim.step(reset=0, x=-3)


class TestCycleBudget:
    def test_run_within_budget(self):
        sim = GateSimulator(pipeline_circuit())
        outs = sim.run([{"reset": 1}] * 3, max_cycles=3)
        assert len(outs) == 3

    def test_run_exceeding_budget_raises(self):
        from repro.netlist.circuit import NetlistError

        def endless():
            while True:
                yield {"reset": 0, "x": 0}

        sim = GateSimulator(pipeline_circuit())
        with pytest.raises(NetlistError, match="cycle budget"):
            sim.run(endless(), max_cycles=10)
        assert sim.cycle == 10  # stopped right at the budget


class TestCompiledBackend:
    def test_matches_event_backend_on_pipeline(self):
        event = GateSimulator(pipeline_circuit())
        compiled = GateSimulator(pipeline_circuit(), backend="compiled")
        for stim in ({"reset": 1}, {"reset": 0, "x": 5},
                     {"reset": 0, "x": 9}, {"reset": 0, "x": 3},
                     {"reset": 0, "x": 3}, {"reset": 0, "x": 15}):
            assert event.step(**stim) == compiled.step(**stim)
            assert event.peek_outputs() == compiled.peek_outputs()

    def test_masking_and_budget_apply_to_compiled(self):
        from repro.netlist.circuit import NetlistError

        sim = GateSimulator(pipeline_circuit(), backend="compiled")
        sim.step(reset=1)
        sim.step(reset=0, x=0x1F5)
        sim.step(reset=0, x=0)
        assert sim.peek_outputs()["y"] == 0x5
        with pytest.raises(NetlistError, match="negative"):
            sim.step(reset=0, x=-1)

    def test_compiled_source_is_straight_line(self):
        sim = GateSimulator(pipeline_circuit(), backend="compiled")
        source = sim.compiled_source
        assert "def settle(v):" in source
        assert "def settle_forced(v, f):" in source
        assert "def commit(v):" in source
        assert "def peek(v):" in source
        # One assignment per combinational cell, no loops.
        assert "for " not in source
        assert "while " not in source

    def test_unknown_backend_rejected(self):
        from repro.netlist.circuit import NetlistError

        with pytest.raises(NetlistError, match="backend"):
            GateSimulator(pipeline_circuit(), backend="turbo")

    def test_repr_names_backend(self):
        assert "compiled" in repr(
            GateSimulator(pipeline_circuit(), backend="compiled")
        )


class TestEventDrivenPropagation:
    @given(values=st.lists(st.integers(0, 15), min_size=5, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_matches_rtl_reference(self, values):
        """Event-driven gate updates must track the RTL simulator exactly."""
        from repro.rtl import RtlSimulator

        b = RtlBuilder("pipe")
        x = b.input("x", unsigned(4))
        s1 = b.register("s1", unsigned(4))
        s2 = b.register("s2", unsigned(4))
        b.next(s1, x)
        b.next(s2, Read(s1))
        b.output("y", Read(s2))
        module = b.build()
        reference = RtlSimulator(module)
        circuit = map_module(module)
        optimize(circuit)
        gates = GateSimulator(circuit)
        reference.step(reset=1)
        gates.step(reset=1)
        for value in values:
            reference.step(reset=0, x=value)
            gates.step(reset=0, x=value)
            assert reference.peek_outputs() == gates.peek_outputs()
