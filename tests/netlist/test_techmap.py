"""Tests for technology mapping, with property-based RTL↔gate equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import GateSimulator, map_module, optimize
from repro.rtl import (
    BinOp,
    Concat,
    Const,
    Mux,
    Read,
    RtlBuilder,
    RtlModule,
    ShiftDyn,
    Slice,
    UnaryOp,
)
from repro.rtl.simulate import RtlSimulator
from repro.types.spec import bit, bits, signed, unsigned


def comb_module(build_output):
    """One-output combinational module over two 8-bit inputs."""
    m = RtlModule("comb")
    a = m.add_input("a", unsigned(8))
    b = m.add_input("b", unsigned(8))
    m.add_output("y", build_output(Read(a), Read(b)))
    return m


def gate_value(module, a, b, run_opt=True):
    circuit = map_module(module)
    if run_opt:
        optimize(circuit)
    sim = GateSimulator(circuit)
    sim.drive(a=a, b=b)
    sim._settle_all()
    return sim.peek_outputs()["y"]


def rtl_value(module, a, b):
    sim = RtlSimulator(module)
    sim.drive(a=a, b=b)
    return sim.peek_outputs()["y"]


OPS = {
    "add": lambda a, b: BinOp("add", a, b),
    "sub": lambda a, b: BinOp("sub", a, b),
    "mul": lambda a, b: BinOp("mul", a, b),
    "and": lambda a, b: BinOp("and", a, b),
    "or": lambda a, b: BinOp("or", a, b),
    "xor": lambda a, b: BinOp("xor", a, b),
    "eq": lambda a, b: BinOp("eq", a, b),
    "ne": lambda a, b: BinOp("ne", a, b),
    "lt": lambda a, b: BinOp("lt", a, b),
    "le": lambda a, b: BinOp("le", a, b),
    "gt": lambda a, b: BinOp("gt", a, b),
    "ge": lambda a, b: BinOp("ge", a, b),
}


class TestOperatorMapping:
    @pytest.mark.parametrize("op", sorted(OPS))
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_unsigned_ops_match_rtl(self, op, a, b):
        module = comb_module(OPS[op])
        assert gate_value(module, a, b) == rtl_value(module, a, b)

    @pytest.mark.parametrize("op", ["add", "mul", "lt", "ge"])
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_signed_ops_match_rtl(self, op, a, b):
        def build(ra, rb):
            return OPS[op](
                __import__("repro.rtl", fromlist=["Resize"]).Resize(
                    ra, signed(8)),
                __import__("repro.rtl", fromlist=["Resize"]).Resize(
                    rb, signed(8)),
            )

        module = comb_module(build)
        assert gate_value(module, a, b) == rtl_value(module, a, b)

    @given(a=st.integers(0, 255), b=st.integers(0, 15))
    @settings(max_examples=25, deadline=None)
    def test_dynamic_shift(self, a, b):
        def build(ra, rb):
            return ShiftDyn(ra, Slice(rb, 3, 0), left=False)

        module = comb_module(build)
        assert gate_value(module, a, b) == rtl_value(module, a, b)

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_mux_and_reductions(self, a, b):
        def build(ra, rb):
            sel = UnaryOp("reduce_xor", ra)
            return Mux(sel, UnaryOp("invert", rb),
                       BinOp("and", ra, rb))

        module = comb_module(build)
        assert gate_value(module, a, b) == rtl_value(module, a, b)

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_slice_concat_resize(self, a, b):
        def build(ra, rb):
            from repro.rtl import Resize

            return Resize(Concat([Slice(ra, 7, 4), Slice(rb, 3, 0)]),
                          unsigned(8))

        module = comb_module(build)
        assert gate_value(module, a, b) == rtl_value(module, a, b)

    def test_mapping_without_opt_also_correct(self):
        module = comb_module(OPS["mul"])
        assert gate_value(module, 13, 11, run_opt=False) == 143


class TestSequentialMapping:
    def test_register_with_reset(self):
        b = RtlBuilder("seq")
        en = b.input("en", bit())
        reg = b.register("r", unsigned(4), reset=5)
        from repro.rtl import mux

        b.next(reg, mux(en, (Read(reg) + 1).resized(4), Read(reg)))
        b.output("q", Read(reg))
        module = b.build()
        circuit = map_module(module)
        optimize(circuit)
        sim = GateSimulator(circuit)
        sim.step(reset=1)
        assert sim.peek_outputs()["q"] == 5
        sim.step(reset=0, en=1)
        assert sim.peek_outputs()["q"] == 6

    def test_flop_count_matches_register_bits(self):
        b = RtlBuilder("seq")
        reg = b.register("r", unsigned(6))
        b.next(reg, (Read(reg) + 1).resized(6))
        b.output("q", Read(reg))
        circuit = map_module(b.build())
        assert len(circuit.flops()) == 6

    def test_hierarchy_flattened_with_prefixes(self):
        child = RtlModule("leaf")
        x = child.add_input("x", unsigned(4))
        child.add_output("y", (Read(x) + 1).resized(4))
        parent = RtlModule("top")
        a = parent.add_input("a", unsigned(4))
        inst = parent.add_instance("u0", child)
        inst.connect("x", Read(a))
        parent.add_output("y", inst.output("y"))
        circuit = map_module(parent)
        assert any(cell.name.startswith("top/u0/") for cell in circuit.cells)
