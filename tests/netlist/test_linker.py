"""Direct unit tests for the netlist-level IP linker (paper Fig. 6)."""

import pytest

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.linker import link
from repro.netlist.sim import GateSimulator


def make_inv_ip(name="inv_ip", width=2):
    """IP: bitwise inverter, ``y = ~a``."""
    ip = Circuit(name)
    a = ip.new_bus("a", width)
    y = ip.new_bus("y", width)
    ip.mark_input("a", a)
    ip.mark_output("y", y)
    for k in range(width):
        ip.add_cell(f"inv{k}", "INV", a=a[k], y=y[k])
    return ip


def make_host(ip_name="inv_ip", width=2):
    """Host: primary input x → black box → primary output z."""
    host = Circuit("host")
    x = host.new_bus("x", width)
    z = host.new_bus("z", width)
    host.mark_input("x", x)
    host.mark_output("z", z)
    host.add_blackbox("u_ip", ip_name, input_buses={"a": x},
                      output_buses={"y": z})
    return host


class TestLinkSuccess:
    def test_blackbox_resolved(self):
        host = make_host()
        result = link(host, {"inv_ip": make_inv_ip()})
        assert result is host  # linked in place
        assert host.blackboxes == []
        assert host.cell_count("INV") == 2

    def test_linked_netlist_simulates(self):
        host = link(make_host(), {"inv_ip": make_inv_ip()})
        sim = GateSimulator(host)
        outputs = sim.step(x=0b01)
        assert outputs["z"] == 0b10

    def test_cloned_cells_carry_instance_prefix(self):
        host = link(make_host(), {"inv_ip": make_inv_ip()})
        names = [c.name for c in host.cells]
        assert all(name.startswith("u_ip/") for name in names)

    def test_two_instances_of_one_ip(self):
        host = Circuit("host")
        x = host.new_bus("x", 1)
        mid = host.new_bus("mid", 1)
        z = host.new_bus("z", 1)
        host.mark_input("x", x)
        host.mark_output("z", z)
        host.add_blackbox("u0", "inv_ip", {"a": x}, {"y": mid})
        host.add_blackbox("u1", "inv_ip", {"a": mid}, {"y": z})
        link(host, {"inv_ip": make_inv_ip(width=1)})
        sim = GateSimulator(host)
        assert sim.step(x=1)["z"] == 1  # double inversion


class TestLinkErrors:
    def test_missing_ip(self):
        with pytest.raises(NetlistError, match="not in the library"):
            link(make_host(), {"other": make_inv_ip("other")})

    def test_unlinked_ip_rejected(self):
        nested = make_inv_ip()
        inner = nested.new_bus("q", 1)
        nested.add_blackbox("deep", "missing", {}, {"q": inner})
        with pytest.raises(NetlistError, match="itself unlinked"):
            link(make_host(), {"inv_ip": nested})

    def test_input_bus_width_mismatch(self):
        with pytest.raises(NetlistError, match="input bus 'a' mismatch"):
            link(make_host(width=2), {"inv_ip": make_inv_ip(width=3)})

    def test_output_bus_name_mismatch(self):
        ip = Circuit("inv_ip")
        a = ip.new_bus("a", 2)
        out = ip.new_bus("out", 2)
        ip.mark_input("a", a)
        ip.mark_output("out", out)  # host expects "y"
        for k in range(2):
            ip.add_cell(f"inv{k}", "INV", a=a[k], y=out[k])
        with pytest.raises(NetlistError, match="output bus 'y' mismatch"):
            link(make_host(), {"inv_ip": ip})


class TestTieReuse:
    def test_ip_constants_use_host_const_nets(self):
        ip = Circuit("const_ip")
        a = ip.new_bus("a", 1)
        y = ip.new_bus("y", 1)
        ip.mark_input("a", a)
        ip.mark_output("y", y)
        one = ip.const_net(1)
        ip.add_cell("or0", "OR2", i0=a[0], i1=one, y=y[0])

        host = make_host("const_ip", width=1)
        link(host, {"const_ip": ip})
        # The IP's TIE1 cell is replaced by a BUF off the host's shared
        # constant net; no TIE cells are cloned.
        assert host.cell_count("TIE1") == 1  # the host's own shared tie
        assert host.cell_count("BUF") == 1
        sim = GateSimulator(host)
        assert sim.step(x=0)["z"] == 1
        assert sim.step(x=1)["z"] == 1


class TestWireThrough:
    def test_output_equal_to_input_gets_buffered(self):
        ip = Circuit("thru_ip")
        a = ip.new_bus("a", 1)
        ip.mark_input("a", a)
        ip.mark_output("y", a)  # output IS the input net
        host = make_host("thru_ip", width=1)
        link(host, {"thru_ip": ip})
        assert host.cell_count("BUF") == 1
        buf = next(c for c in host.cells if c.ctype.name == "BUF")
        assert buf.name == "u_ip/thru_y"
        sim = GateSimulator(host)
        assert sim.step(x=1)["z"] == 1
        assert sim.step(x=0)["z"] == 0
