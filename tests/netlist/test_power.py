"""Tests for the activity-based power model."""

from repro.netlist import map_module, optimize
from repro.netlist.power import ActivitySimulator, estimate_power
from repro.rtl import Read, RtlBuilder, mux
from repro.types.spec import bit, unsigned


def toggler():
    b = RtlBuilder("toggler")
    en = b.input("en", bit())
    reg = b.register("state", unsigned(4))
    b.next(reg, mux(en, (Read(reg) + 1).resized(4), Read(reg)))
    b.output("q", Read(reg))
    circuit = map_module(b.build())
    optimize(circuit)
    return circuit


class TestActivityCounting:
    def test_idle_design_has_few_toggles(self):
        circuit = toggler()
        idle = estimate_power(circuit, [dict(reset=0, en=0)] * 50)
        busy = estimate_power(toggler(), [dict(reset=0, en=1)] * 50)
        assert busy.toggles > idle.toggles
        assert busy.dynamic > idle.dynamic

    def test_leakage_scales_with_cycles(self):
        circuit = toggler()
        short = estimate_power(circuit, [dict(reset=0, en=0)] * 10)
        long = estimate_power(toggler(), [dict(reset=0, en=0)] * 40)
        assert long.leakage > short.leakage

    def test_flop_toggles_counted(self):
        circuit = toggler()
        sim = ActivitySimulator(circuit)
        sim.step(reset=0, en=1)
        sim.step(reset=0, en=1)
        flop_nets = {f.pins["q"].uid for f in circuit.flops()}
        assert any(uid in sim.toggle_counts for uid in flop_nets)

    def test_per_prefix_attribution(self):
        report = estimate_power(toggler(), [dict(reset=0, en=1)] * 20)
        assert report.by_prefix
        assert all(energy >= 0 for energy in report.by_prefix.values())

    def test_per_cycle_average(self):
        report = estimate_power(toggler(), [dict(reset=0, en=1)] * 20)
        assert report.per_cycle == report.total / 20
        assert "PowerReport" in repr(report)

    def test_zero_cycles(self):
        report = estimate_power(toggler(), [])
        assert report.per_cycle == 0.0
