"""Randomized equivalence oracle for the gate-simulator backends.

Small random circuits are driven with random stimulus through four
engines that must agree bit-for-bit on every cycle:

* the event-driven engine (``_propagate`` over changed cones),
* a full re-evaluation reference (``_settle_all`` after every change),
* the code-generated compiled backend,
* the lane-packed bitparallel backend (scalar mode, ``M == 1``, where
  every wide expression must reduce exactly to its scalar counterpart).

This is the safety net under the compiled evaluators: any codegen bug —
a wrong expression, a missed commit, a stale lazy settle — shows up as
a divergence on some seed.  The lane property tests additionally pack
random stuck-at fault subsets into lanes and check each lane against an
independent scalar compiled simulator carrying that one fault.
"""

import random

import pytest

from repro.fault.inject import FaultableGateSimulator
from repro.netlist import Circuit, GateSimulator, NetlistError

_COMB = ("INV", "BUF", "AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2",
         "MUX2")


def random_circuit(seed: int, n_inputs: int = 4, n_cells: int = 40,
                   n_flops: int = 6, n_outputs: int = 8) -> Circuit:
    """A random acyclic netlist with feedback through flops only.

    Cells are created in topological order (each consumes already-driven
    nets), flop D pins may close cycles through the registered boundary,
    and outputs sample random internal nets.
    """
    rng = random.Random(seed)
    circuit = Circuit(f"rand{seed}")
    inputs = circuit.new_bus("x", n_inputs)
    circuit.mark_input("x", inputs)
    q_nets = [circuit.new_net(f"q{i}") for i in range(n_flops)]
    pool = list(inputs) + q_nets
    if rng.random() < 0.5:
        pool.append(circuit.const_net(rng.randrange(2)))
    comb_nets = []
    for k in range(n_cells):
        ctype = rng.choice(_COMB)
        out = circuit.new_net(f"n{k}")
        if ctype in ("INV", "BUF"):
            pins = {"a": rng.choice(pool)}
        elif ctype == "MUX2":
            pins = {"d0": rng.choice(pool), "d1": rng.choice(pool),
                    "s": rng.choice(pool)}
        else:
            pins = {"i0": rng.choice(pool), "i1": rng.choice(pool)}
        circuit.add_cell(f"g{k}", ctype, y=out, **pins)
        pool.append(out)
        comb_nets.append(out)
    for i, q_net in enumerate(q_nets):
        circuit.add_cell(f"ff{i}", "DFF", d=rng.choice(pool), q=q_net)
    circuit.mark_output(
        "y", [rng.choice(pool) for _ in range(n_outputs)]
    )
    circuit.validate()
    return circuit


def _stimulus(seed: int, n_inputs: int, cycles: int) -> list[dict]:
    rng = random.Random(seed + 1)
    return [{"x": rng.randrange(1 << n_inputs)} for _ in range(cycles)]


class TestFourWayOracle:
    @pytest.mark.parametrize("seed", range(12))
    def test_event_settle_compiled_and_bitparallel_agree(self, seed):
        n_inputs = 4
        circuit = random_circuit(seed, n_inputs=n_inputs)
        event = GateSimulator(circuit, backend="event")
        compiled = GateSimulator(circuit, backend="compiled")
        bitparallel = GateSimulator(circuit, backend="bitparallel")
        # Reference: the event engine with every propagation widened to
        # a full settle — brute-force re-evaluation of all cells.
        settle = GateSimulator(circuit, backend="event")
        settle._propagate = \
            lambda dirty: GateSimulator._settle_all(settle)
        for entry in _stimulus(seed, n_inputs, cycles=30):
            out_event = event.step(**entry)
            out_settle = settle.step(**entry)
            out_compiled = compiled.step(**entry)
            out_wide = bitparallel.step(**entry)
            assert out_event == out_settle == out_compiled == out_wide
            assert (event.peek_outputs() == settle.peek_outputs()
                    == compiled.peek_outputs()
                    == bitparallel.peek_outputs())

    @pytest.mark.parametrize("seed", (2, 7))
    def test_faultable_backends_agree_fault_free(self, seed):
        circuit = random_circuit(seed)
        event = FaultableGateSimulator(circuit, backend="event")
        compiled = FaultableGateSimulator(circuit, backend="compiled")
        wide = FaultableGateSimulator(circuit, backend="bitparallel")
        for entry in _stimulus(seed, 4, cycles=20):
            assert (event.step(**entry) == compiled.step(**entry)
                    == wide.step(**entry))

    @pytest.mark.parametrize("seed", (1, 5, 9))
    def test_stuck_at_clamps_agree_across_backends(self, seed):
        """The three clamp points behave identically under both engines."""
        rng = random.Random(seed + 2)
        circuit = random_circuit(seed)
        event = FaultableGateSimulator(circuit, backend="event")
        compiled = FaultableGateSimulator(circuit, backend="compiled")
        consts = {net.uid for net in circuit.constant_nets().values()}
        forceable = [
            cell.pins["y"] for cell in circuit.comb_cells()
            if not cell.ctype.name.startswith("TIE")
        ] + [net for net in circuit.input_buses["x"] +
             [f.pins["q"] for f in circuit.flops()]
             if net.uid not in consts]
        stim = _stimulus(seed, 4, cycles=24)
        for sim in (event, compiled):
            for entry in stim[:4]:
                sim.step(**entry)
        target = forceable[rng.randrange(len(forceable))]
        value = rng.randrange(2)
        event.force_net(target, value)
        compiled.force_net(target, value)
        for entry in stim[4:16]:
            assert event.step(**entry) == compiled.step(**entry)
        event.release_all()
        compiled.release_all()
        for entry in stim[16:]:
            assert event.step(**entry) == compiled.step(**entry)
            assert event.peek_outputs() == compiled.peek_outputs()

    @pytest.mark.parametrize("seed", (0, 3))
    def test_state_seu_flips_agree_across_backends(self, seed):
        circuit = random_circuit(seed)
        flops = circuit.flops()
        event = FaultableGateSimulator(circuit, backend="event")
        compiled = FaultableGateSimulator(circuit, backend="compiled")
        stim = _stimulus(seed, 4, cycles=20)
        for entry in stim[:5]:
            event.step(**entry)
            compiled.step(**entry)
        q_net = flops[seed % len(flops)].pins["q"]
        event.flip_net(q_net)
        compiled.flip_net(q_net)
        assert event.peek_outputs() == compiled.peek_outputs()
        for entry in stim[5:]:
            assert event.step(**entry) == compiled.step(**entry)


class TestCompiledBackendSurface:
    def test_unknown_backend_rejected(self):
        circuit = random_circuit(0)
        with pytest.raises(NetlistError, match="backend"):
            GateSimulator(circuit, backend="jit")

    def test_compiled_source_exposed(self):
        circuit = random_circuit(0)
        event = GateSimulator(circuit)
        compiled = GateSimulator(circuit, backend="compiled")
        assert event.compiled_source is None
        source = compiled.compiled_source
        assert "def settle(v):" in source
        assert "def commit(v):" in source

    def test_snapshot_restore_replays_identically(self):
        circuit = random_circuit(4)
        sim = GateSimulator(circuit, backend="compiled")
        stim = _stimulus(4, 4, cycles=12)
        for entry in stim[:6]:
            sim.step(**entry)
        snap = sim.snapshot_state()
        first = [sim.step(**entry) for entry in stim[6:]]
        sim.restore_state(snap)
        assert [sim.step(**entry) for entry in stim[6:]] == first


class TestConstantNetEncapsulation:
    def test_constant_nets_returns_copy(self):
        circuit = random_circuit(1)
        # Force both constants to exist.
        zero, one = circuit.const_net(0), circuit.const_net(1)
        consts = circuit.constant_nets()
        assert consts[0] is zero and consts[1] is one
        consts.clear()
        assert circuit.constant_nets() == {0: zero, 1: one}

    @pytest.mark.parametrize("backend", ("event", "compiled", "bitparallel"))
    def test_fault_clamp_refuses_constant_nets(self, backend):
        circuit = random_circuit(1)
        zero = circuit.const_net(0)
        sim = FaultableGateSimulator(circuit, backend=backend)
        with pytest.raises(NetlistError, match="constant net"):
            sim.force_net(zero, 1)
        with pytest.raises(NetlistError, match="constant net"):
            sim.flip_net(zero)
        assert not sim._forced


def _forceable_nets(circuit):
    """Nets a stuck-at clamp may target (mirrors the clamp tests)."""
    consts = {net.uid for net in circuit.constant_nets().values()}
    return [
        cell.pins["y"] for cell in circuit.comb_cells()
        if not cell.ctype.name.startswith("TIE")
    ] + [net for net in circuit.input_buses["x"] +
         [f.pins["q"] for f in circuit.flops()]
         if net.uid not in consts]


class TestLanePacking:
    """Seeded property: each lane ≡ a scalar compiled sim with its fault.

    A wide simulator carries one random stuck-at fault per lane; an
    independent scalar compiled simulator carries the same single fault.
    Per cycle every lane's pre-commit outputs (``peek_lane_outputs``
    between ``step_lanes`` and ``commit_lanes``) must equal the scalar
    simulator's ``step`` outputs — the exact observation point the
    campaign classifier reduces over.
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_lanes_match_scalar_compiled(self, seed):
        rng = random.Random(seed + 17)
        circuit = random_circuit(seed)
        forceable = _forceable_nets(circuit)
        n_lanes = rng.randrange(2, 9)
        picks = [(rng.choice(forceable), rng.randrange(2))
                 for _ in range(n_lanes)]
        stim = _stimulus(seed, 4, cycles=16)

        wide = FaultableGateSimulator(circuit, backend="bitparallel")
        scalars = [FaultableGateSimulator(circuit, backend="compiled")
                   for _ in picks]
        for entry in stim[:4]:  # shared warm-up, fault-free
            wide.step(**entry)
            for sim in scalars:
                sim.step(**entry)
        wide.begin_lanes(n_lanes)
        for lane, (net, value) in enumerate(picks):
            wide.force_net_lane(net, value, lane)
            scalars[lane].force_net(net, value)
        for entry in stim[4:]:
            wide.step_lanes(entry)
            lane_outs = [wide.peek_lane_outputs(lane)
                         for lane in range(n_lanes)]
            wide.commit_lanes()
            for lane, sim in enumerate(scalars):
                assert lane_outs[lane] == sim.step(**entry), \
                    f"lane {lane} diverged from its scalar twin"

    @pytest.mark.parametrize("seed", (3, 8))
    def test_staggered_forcing_mid_flight(self, seed):
        """Lanes forced on different cycles, like a campaign batch."""
        rng = random.Random(seed + 23)
        circuit = random_circuit(seed)
        forceable = _forceable_nets(circuit)
        n_lanes = 5
        picks = [(rng.choice(forceable), rng.randrange(2),
                  rng.randrange(5, 10)) for _ in range(n_lanes)]
        stim = _stimulus(seed, 4, cycles=14)

        wide = FaultableGateSimulator(circuit, backend="bitparallel")
        scalars = [FaultableGateSimulator(circuit, backend="compiled")
                   for _ in picks]
        for entry in stim[:5]:
            wide.step(**entry)
            for sim in scalars:
                sim.step(**entry)
        wide.begin_lanes(n_lanes)
        for cycle, entry in enumerate(stim[5:], start=5):
            for lane, (net, value, at) in enumerate(picks):
                if at == cycle:
                    wide.force_net_lane(net, value, lane)
                    scalars[lane].force_net(net, value)
            wide.step_lanes(entry)
            lane_outs = [wide.peek_lane_outputs(lane)
                         for lane in range(n_lanes)]
            wide.commit_lanes()
            for lane, sim in enumerate(scalars):
                assert lane_outs[lane] == sim.step(**entry)

    def test_end_lanes_keeps_lane_zero(self):
        seed = 2
        circuit = random_circuit(seed)
        forceable = _forceable_nets(circuit)
        stim = _stimulus(seed, 4, cycles=12)
        wide = FaultableGateSimulator(circuit, backend="bitparallel")
        scalar = FaultableGateSimulator(circuit, backend="compiled")
        for entry in stim[:4]:
            wide.step(**entry)
            scalar.step(**entry)
        wide.begin_lanes(4)
        wide.force_net_lane(forceable[0], 1, 2)  # lane 2 only
        for entry in stim[4:8]:
            wide.step_lanes(entry)
            wide.commit_lanes()
            scalar.step(**entry)
        wide.end_lanes()
        wide.release_all()
        scalar.release_all()
        for entry in stim[8:]:  # lane 0 was fault-free == scalar twin
            assert wide.step(**entry) == scalar.step(**entry)

    def test_lane_mode_guards(self):
        circuit = random_circuit(0)
        compiled = FaultableGateSimulator(circuit, backend="compiled")
        with pytest.raises(NetlistError, match="bitparallel"):
            compiled.begin_lanes(2)
        wide = FaultableGateSimulator(circuit, backend="bitparallel")
        with pytest.raises(NetlistError, match="begin_lanes"):
            wide.step_lanes({"x": 0})
        wide.begin_lanes(3)
        with pytest.raises(NetlistError, match="scalar"):
            wide.step(x=0)
        with pytest.raises(NetlistError, match="already"):
            wide.begin_lanes(2)
        wide.end_lanes()
        wide.step(x=0)  # back to scalar mode
