"""The shared structural queries: ``fanout_map`` and ``fanin_cone``.

Both the dead-logic optimizer pass and the netlist analysis engine are
defined in terms of these two ``Circuit`` methods, so their semantics
are pinned here independently of either consumer — plus a regression
that the refactored ``_dead_removal`` still removes exactly the
cells outside the cone.
"""

from repro.netlist import Circuit
from repro.netlist.opt import optimize


def _diamond():
    """x0,x1 → AND/OR → XOR → y, plus a dead INV chain off x0."""
    circuit = Circuit("diamond")
    x0, x1 = circuit.new_bus("x", 2)
    circuit.mark_input("x", [x0, x1])
    n_and = circuit.new_net("n_and")
    n_or = circuit.new_net("n_or")
    y = circuit.new_net("y")
    d0 = circuit.new_net("d0")
    d1 = circuit.new_net("d1")
    circuit.add_cell("g_and", "AND2", i0=x0, i1=x1, y=n_and)
    circuit.add_cell("g_or", "OR2", i0=x0, i1=x1, y=n_or)
    circuit.add_cell("g_xor", "XOR2", i0=n_and, i1=n_or, y=y)
    circuit.add_cell("dead0", "INV", a=x0, y=d0)
    circuit.add_cell("dead1", "INV", a=d0, y=d1)
    circuit.mark_output("y", [y])
    circuit.validate()
    return circuit


class TestFanoutMap:
    def test_loads_by_pin(self):
        circuit = _diamond()
        fanout = circuit.fanout_map()
        x0 = circuit.input_buses["x"][0]
        loads = sorted((cell.name, pin) for cell, pin in fanout[x0.uid])
        assert loads == [("dead0", "a"), ("g_and", "i0"), ("g_or", "i0")]

    def test_unloaded_net_is_absent(self):
        circuit = _diamond()
        (y,) = circuit.output_buses["y"]
        assert y.uid not in circuit.fanout_map()

    def test_flop_d_pin_is_a_load(self):
        circuit = Circuit("ff")
        (x,) = circuit.new_bus("x", 1)
        circuit.mark_input("x", [x])
        q = circuit.new_net("q")
        circuit.add_cell("ff", "DFF", d=x, q=q)
        circuit.mark_output("y", [q])
        ((cell, pin),) = circuit.fanout_map()[x.uid]
        assert (cell.name, pin) == ("ff", "d")


class TestFaninCone:
    def test_cone_excludes_dead_chain(self):
        circuit = _diamond()
        net_uids, cell_uids = circuit.fanin_cone(
            circuit.output_buses["y"]
        )
        names = {c.name for c in circuit.cells if c.uid in cell_uids}
        assert names == {"g_and", "g_or", "g_xor"}
        dead_nets = {net.name for net in circuit.nets
                     if net.uid not in net_uids}
        assert {"d0", "d1"} <= dead_nets

    def test_cone_crosses_flops(self):
        circuit = Circuit("seq")
        (x,) = circuit.new_bus("x", 1)
        circuit.mark_input("x", [x])
        n = circuit.new_net("n")
        q = circuit.new_net("q")
        circuit.add_cell("g", "INV", a=x, y=n)
        circuit.add_cell("ff", "DFF", d=n, q=q)
        circuit.mark_output("y", [q])
        net_uids, cell_uids = circuit.fanin_cone(
            circuit.output_buses["y"]
        )
        assert {net.uid for net in (x, n, q)} <= net_uids
        assert len(cell_uids) == 2

    def test_empty_seeds_empty_cone(self):
        assert _diamond().fanin_cone([]) == (set(), set())

    def test_shared_fanin_visited_once(self):
        circuit = _diamond()
        net_uids, _ = circuit.fanin_cone(circuit.output_buses["y"])
        # x0 feeds both diamond arms but appears once, as a set element.
        x0 = circuit.input_buses["x"][0]
        assert x0.uid in net_uids


class TestDeadRemovalRegression:
    def test_optimize_removes_exactly_the_out_of_cone_cells(self):
        circuit = _diamond()
        _, live_before = circuit.fanin_cone(circuit.output_buses["y"])
        live_names = {c.name for c in circuit.cells
                      if c.uid in live_before}
        optimize(circuit)
        assert {c.name for c in circuit.cells} <= live_names
        assert not {"dead0", "dead1"} & {c.name for c in circuit.cells}

    def test_optimize_keeps_logic_feeding_outputs(self):
        circuit = _diamond()
        optimize(circuit)
        circuit.validate()
        assert circuit.output_buses["y"][0].driver is not None
