"""DSE reports must be byte-identical across ``PYTHONHASHSEED`` values.

Extends the subprocess pattern of ``tests/synth/test_determinism.py`` to
the exploration engine: a factorial and an evolutionary run over the
HistogramUnit space print their full ``repro-dse/v1`` JSON in separate
interpreters with different string-hash seeds — any set iteration in the
space enumeration, the evolutionary loop, the Pareto/MCDM passes or the
report builder shows up as a byte diff.
"""

import os
import subprocess
import sys

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)

PROBE = """
import random

from repro.dse import (
    Axis, CampaignSpec, DesignSpace, EvolutionaryConfig, explore,
)
from repro.expocu.histogram import HistogramUnit
from repro.fault.campaign import CampaignConfig
from repro.hdl import Clock, NS, Signal
from repro.types import Bit
from repro.types.spec import bit


def factory(count_bits=8):
    return HistogramUnit[count_bits]("h", Clock("clk", 10 * NS),
                                     Signal("rst", bit(), Bit(1)))


rng = random.Random(7)
stimulus = [dict(pix=rng.randint(0, 255), pix_valid=1,
                 frame_start=1 if cycle == 0 else 0)
            for cycle in range(40)]
spec = CampaignSpec(
    stimulus=stimulus,
    config=CampaignConfig(reset_name="reset",
                          detect_signals=("parity_err",),
                          idle_input=dict(pix=0, pix_valid=0,
                                          frame_start=0)),
    n_faults=10, seed=3)
space = DesignSpace("hist", factory, [
    Axis("count_bits", [6, 8]),
    Axis("hardening", ["none", "parity"], role="hardening"),
])
print(explore(space, spec).to_json(), end="")
print(explore(space, spec, strategy="evolutionary",
              evolution=EvolutionaryConfig(population=4, generations=3,
                                           seed=5)).to_json(), end="")
"""


def _probe(script: str, hashseed: str) -> str:
    # A real file, not `-c`: the synthesizer reads method source via
    # inspect.getsource.
    env = dict(os.environ, PYTHONHASHSEED=hashseed,
               PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, script], env=env, capture_output=True,
        text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_dse_reports_independent_of_hash_seed(tmp_path):
    script = tmp_path / "dse_probe.py"
    script.write_text(PROBE)
    outputs = {_probe(str(script), seed) for seed in ("1", "2", "27")}
    assert len(outputs) == 1, \
        "repro-dse/v1 reports differ across hash seeds"
