"""The declarative space model: axes, enumeration, genomes."""

import pytest

from repro.dse import (
    Axis,
    DesignSpace,
    DseError,
    fractional_factorial,
    full_factorial,
    neighbors,
)


def _space(**kwargs):
    axes = kwargs.pop("axes", [
        Axis("width", [8, 16, 32]),
        Axis("hardening", ["none", "tmr"], role="hardening"),
    ])
    return DesignSpace("s", lambda **params: params, axes, **kwargs)


class TestAxis:
    def test_unknown_role_rejected(self):
        with pytest.raises(DseError):
            Axis("x", [1, 2], role="objective")

    def test_duplicate_values_rejected(self):
        with pytest.raises(DseError):
            Axis("x", [1, 2, 1])

    def test_as_dict(self):
        assert Axis("x", [1, 2]).as_dict() == \
            {"name": "x", "values": [1, 2], "role": "param"}


class TestDesignSpace:
    def test_size(self):
        assert _space().size() == 6

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(DseError):
            _space(axes=[Axis("x", [1]), Axis("x", [2])])

    def test_two_hardening_axes_rejected(self):
        with pytest.raises(DseError):
            _space(axes=[Axis("a", ["none"], role="hardening"),
                         Axis("b", ["tmr"], role="hardening")])

    def test_validate_reorders_and_checks(self):
        space = _space()
        ordered = space.validate({"hardening": "tmr", "width": 16})
        assert list(ordered) == ["width", "hardening"]
        with pytest.raises(DseError):
            space.validate({"width": 16})            # missing axis
        with pytest.raises(DseError):
            space.validate({"width": 16, "hardening": "tmr", "x": 1})
        with pytest.raises(DseError):
            space.validate({"width": 12, "hardening": "tmr"})

    def test_params_excludes_hardening(self):
        space = _space()
        point = {"width": 8, "hardening": "tmr"}
        assert space.params(point) == {"width": 8}
        assert space.hardening(point) == "tmr"

    def test_hardening_defaults_to_none_without_axis(self):
        space = _space(axes=[Axis("width", [8, 16])])
        assert space.hardening({"width": 8}) == "none"

    def test_point_id_is_axis_ordered(self):
        space = _space()
        assert space.point_id({"hardening": "tmr", "width": 8}) == \
            "width=8,hardening=tmr"

    def test_genome_roundtrip(self):
        space = _space()
        point = {"width": 32, "hardening": "none"}
        genome = space.indices(point)
        assert genome == (2, 0)
        assert space.assignment(genome) == point
        with pytest.raises(DseError):
            space.assignment((0,))


class TestEnumerations:
    def test_full_factorial_order_and_count(self):
        points = full_factorial(_space())
        assert len(points) == 6
        assert points[0] == {"width": 8, "hardening": "none"}
        assert points[1] == {"width": 8, "hardening": "tmr"}
        assert points[-1] == {"width": 32, "hardening": "tmr"}

    def test_empty_axis_empties_the_space(self):
        space = _space(axes=[Axis("width", []), Axis("mode", ["a"])])
        assert space.size() == 0
        assert full_factorial(space) == []

    def test_no_axes_is_the_single_empty_point(self):
        space = _space(axes=[])
        assert full_factorial(space) == [{}]

    def test_single_point_space(self):
        space = _space(axes=[Axis("width", [8])])
        assert full_factorial(space) == [{"width": 8}]

    def test_fractional_is_the_index_sum_subset(self):
        space = _space()
        half = fractional_factorial(space, 2)
        assert half == [
            point for point in full_factorial(space)
            if sum(space.indices(point)) % 2 == 0
        ]
        assert 0 < len(half) < space.size()

    def test_fraction_one_is_full(self):
        space = _space()
        assert fractional_factorial(space, 1) == full_factorial(space)

    def test_fraction_below_one_rejected(self):
        with pytest.raises(DseError):
            fractional_factorial(_space(), 0)

    def test_neighbors_differ_in_exactly_one_axis(self):
        space = _space()
        base = {"width": 16, "hardening": "none"}
        got = list(neighbors(space, base))
        assert len(got) == 3
        for other in got:
            assert sum(1 for k in base if base[k] != other[k]) == 1
