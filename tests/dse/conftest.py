"""Shared fixtures: a cheap HistogramUnit design space.

The engine tests explore the histogram block instead of the full ExpoCU
— a point costs ~0.2s cold, so factorial + evolutionary + warm-store
assertions all fit in tier-1 time.  The full ExpoCU acceptance space
lives in ``test_expocu_acceptance.py`` (marked slow).
"""

import random

import pytest

from repro.dse import Axis, CampaignSpec, DesignSpace
from repro.expocu.histogram import HistogramUnit
from repro.fault.campaign import CampaignConfig
from repro.hdl import NS, Clock, Signal
from repro.types import Bit
from repro.types.spec import bit

HIST_IDLE = dict(pix=0, pix_valid=0, frame_start=0)


def hist_factory(count_bits=8):
    return HistogramUnit[count_bits]("h", Clock("clk", 10 * NS),
                                     Signal("rst", bit(), Bit(1)))


def hist_space(count_bits=(6, 8), hardening=("none", "parity")):
    axes = [Axis("count_bits", list(count_bits))]
    if hardening:
        axes.append(Axis("hardening", list(hardening), role="hardening"))
    return DesignSpace("hist", hist_factory, axes)


def hist_spec(n_faults=12, seed=3, cycles=40):
    rng = random.Random(7)
    stimulus = [
        dict(pix=rng.randint(0, 255), pix_valid=1,
             frame_start=1 if cycle == 0 else 0)
        for cycle in range(cycles)
    ]
    return CampaignSpec(
        stimulus=stimulus,
        config=CampaignConfig(reset_name="reset",
                              detect_signals=("parity_err",),
                              idle_input=dict(HIST_IDLE)),
        n_faults=n_faults,
        seed=seed,
    )


@pytest.fixture
def space():
    return hist_space()


@pytest.fixture
def spec():
    return hist_spec()
