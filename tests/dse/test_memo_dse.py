"""Warm-store behaviour: a second exploration re-simulates nothing.

The satellite guarantee of the DSE engine: every previously evaluated
point replays from the CAS — per-stage hit counters show a hit for every
point's ``dse_point`` entry and zero misses anywhere, and the emitted
report is byte-identical to the cold one.
"""

import pytest

from repro.dse import EvolutionaryConfig, PointEvaluator, explore
from repro.store import ArtifactStore


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "library")


class TestWarmExploration:
    def test_second_run_hits_every_point(self, space, spec, store_dir):
        cold_store = ArtifactStore(store_dir)
        cold = explore(space, spec, store=cold_store)
        n_points = space.size()
        assert cold_store.counters["miss"]["dse_point"] == n_points

        warm_store = ArtifactStore(store_dir)
        warm = explore(space, spec, store=warm_store)
        # Every evaluated point replays from the CAS...
        assert warm_store.counters["hit"]["dse_point"] == n_points
        # ...nothing is recomputed anywhere in the pipeline...
        assert dict(warm_store.counters["miss"]) == {}
        assert dict(warm_store.counters["store"]) == {}
        # ...and the flow prefix stages were warm for every point too.
        for stage in ("synthesize", "techmap", "opt"):
            assert warm_store.counters["hit"][stage] == n_points
        # The report replays byte-identically.
        assert warm.to_json() == cold.to_json()

    def test_hardened_netlists_never_leave_disk_when_warm(
            self, space, spec, store_dir):
        explore(space, spec, store=ArtifactStore(store_dir))
        warm_store = ArtifactStore(store_dir)
        evaluator = PointEvaluator(space, spec, store=warm_store)
        for assignment in (
            {"count_bits": 6, "hardening": "parity"},
            {"count_bits": 8, "hardening": "parity"},
        ):
            result = evaluator.evaluate(assignment)
            assert result.ok
        # harden entries hit lazily: digest-only, no deserialization.
        assert warm_store.counters["hit"]["harden"] == 2
        assert dict(warm_store.counters["miss"]) == {}

    def test_evolutionary_rides_the_factorial_cache(
            self, space, spec, store_dir):
        factorial = explore(space, spec, store=ArtifactStore(store_dir))
        warm_store = ArtifactStore(store_dir)
        evolved = explore(
            space, spec, strategy="evolutionary", store=warm_store,
            evolution=EvolutionaryConfig(population=4, generations=4,
                                         seed=9),
        )
        # The search revisits only cached points: zero misses, and once
        # it has seen every point its report sections match factorial's.
        assert dict(warm_store.counters["miss"]) == {}
        if len(evolved.points) == space.size():
            assert evolved.doc["points"] == factorial.doc["points"]
            assert evolved.pareto_ids == factorial.pareto_ids

    def test_campaign_spec_changes_miss(self, space, spec, store_dir):
        explore(space, spec, store=ArtifactStore(store_dir))
        other = type(spec)(
            stimulus=spec.stimulus,
            config=spec.config,
            n_faults=spec.n_faults + 1,
            seed=spec.seed,
            backend=spec.backend,
        )
        store = ArtifactStore(store_dir)
        explore(space, other, store=store)
        # Flow prefix stays warm; every point's campaign re-runs.
        assert store.counters["miss"]["dse_point"] == space.size()
        assert store.counters["hit"]["synthesize"] == space.size()

    def test_backend_is_cache_transparent(self, space, spec, store_dir):
        cold = explore(space, spec, store=ArtifactStore(store_dir))
        other = type(spec)(
            stimulus=spec.stimulus,
            config=spec.config,
            n_faults=spec.n_faults,
            seed=spec.seed,
            backend="event",
        )
        store = ArtifactStore(store_dir)
        warm = explore(space, other, store=store)
        # Backends produce byte-identical campaigns, so the spec
        # fingerprint excludes them: the event-backend run replays the
        # bit-parallel run's entries.
        assert dict(store.counters["miss"]) == {}
        assert warm.to_json() == cold.to_json()
