"""End-to-end engine tests on the cheap HistogramUnit space."""

import json

import pytest

from repro.dse import (
    Axis,
    DesignSpace,
    DseError,
    EvolutionaryConfig,
    Objective,
    PointEvaluator,
    dominates,
    evolutionary_search,
    explore,
    factorial_search,
)
from repro.store import StoreError, serialize_dse_report
from repro.synth import SynthesisError

from tests.dse.conftest import hist_factory


def oracle_front_ids(doc):
    """Brute-force front over a report's points, by id."""
    objectives = [Objective(o["name"], o["sense"], o["weight"])
                  for o in doc["objectives"]]
    points = doc["points"]
    return [
        a["id"] for a in points
        if not any(dominates(b["objectives"], a["objectives"], objectives)
                   for b in points if b is not a)
    ]


class TestFactorialExplore:
    def test_report_shape_and_front(self, space, spec):
        result = explore(space, spec)
        doc = result.doc
        assert doc["schema"] == "repro-dse/v1"
        assert doc["space"]["name"] == "hist"
        assert doc["strategy"] == {"name": "factorial", "fraction": 1,
                                   "points": 4}
        assert len(doc["points"]) == 4
        ids = [p["id"] for p in doc["points"]]
        assert ids == sorted(ids)
        assert doc["failures"] == []
        # The reported front matches the brute-force oracle exactly.
        assert doc["pareto"] == oracle_front_ids(doc)
        # Ranking is total, best first, scores non-decreasing.
        scores = [entry["score"] for entry in doc["ranking"]]
        assert sorted(entry["id"] for entry in doc["ranking"]) == ids
        assert scores == sorted(scores)
        # Every point carries the full objective vector.
        for point in doc["points"]:
            for name in ("area_ge", "fmax_mhz", "sdc_rate", "sim_cycles"):
                assert name in point["objectives"]

    def test_hardening_axis_changes_hardware(self, space, spec):
        doc = explore(space, spec).doc
        by_id = {p["id"]: p for p in doc["points"]}
        plain = by_id["count_bits=8,hardening=none"]
        parity = by_id["count_bits=8,hardening=parity"]
        assert parity["metrics"]["area_ge"] > plain["metrics"]["area_ge"]
        # The parity point's campaign saw the detector, the plain did not.
        assert parity["campaign"]["detect_signals"] == ["parity_err"]
        assert plain["campaign"]["detect_signals"] == []

    def test_summary_text(self, space, spec):
        result = explore(space, spec)
        text = result.summary()
        assert "4 evaluated" in text
        for point in result.points:
            assert point["id"] in text

    def test_json_roundtrip(self, space, spec):
        result = explore(space, spec)
        assert json.loads(result.to_json()) == result.doc

    def test_unknown_strategy_rejected(self, space, spec):
        with pytest.raises(DseError):
            explore(space, spec, strategy="annealing")


class TestFailureRecording:
    def test_failing_point_recorded_not_fatal(self, spec):
        def factory(count_bits=8):
            if count_bits == 7:
                raise SynthesisError("unsupported histogram width")
            return hist_factory(count_bits)

        space = DesignSpace("hist", factory, [Axis("count_bits", [7, 8])])
        doc = explore(space, spec).doc
        assert [p["id"] for p in doc["points"]] == ["count_bits=8"]
        assert len(doc["failures"]) == 1
        failure = doc["failures"][0]
        assert failure["id"] == "count_bits=7"
        assert failure["error"].startswith("SynthesisError:")
        assert doc["pareto"] == ["count_bits=8"]


class TestEvolutionaryExplore:
    def test_finds_the_factorial_front(self, space, spec):
        factorial = explore(space, spec)
        evolved = explore(
            space, spec, strategy="evolutionary",
            evolution=EvolutionaryConfig(population=4, generations=4,
                                         seed=9),
        )
        assert set(factorial.pareto_ids) <= set(evolved.pareto_ids)
        history = evolved.doc["strategy"]["history"]
        assert len(history) == 4
        assert history[-1]["evaluated"] >= history[0]["evaluated"]

    def test_fixed_seed_reproduces_the_search(self, space, spec):
        config = EvolutionaryConfig(population=4, generations=3, seed=5)
        first = explore(space, spec, strategy="evolutionary",
                        evolution=config)
        again = explore(space, spec, strategy="evolutionary",
                        evolution=config)
        assert first.to_json() == again.to_json()

    def test_empty_space_degrades_to_empty_outcome(self, spec):
        space = DesignSpace("empty", hist_factory, [Axis("count_bits", [])])
        evaluator = PointEvaluator(space, spec)
        outcome = evolutionary_search(evaluator)
        assert outcome.results == []
        assert outcome.meta["history"] == []

    def test_config_validation(self):
        with pytest.raises(DseError):
            EvolutionaryConfig(population=1)
        with pytest.raises(DseError):
            EvolutionaryConfig(generations=0)
        with pytest.raises(DseError):
            EvolutionaryConfig(tournament=0)


class TestFractionalSearch:
    def test_fraction_skips_points(self, space, spec):
        evaluator = PointEvaluator(space, spec)
        outcome = factorial_search(evaluator, fraction=2)
        assert outcome.meta["fraction"] == 2
        assert 0 < len(outcome.results) < space.size()


class TestReportValidation:
    def _doc(self):
        return {
            "space": {"name": "s", "axes": []},
            "strategy": {"name": "factorial"},
            "objectives": [],
            "points": [{"id": "a"}, {"id": "b"}],
            "failures": [],
            "pareto": ["a"],
            "ranking": [{"id": "b", "score": 0.0}],
        }

    def test_valid_doc_is_stamped(self):
        doc = serialize_dse_report(self._doc())
        assert doc["schema"] == "repro-dse/v1"

    def test_unsorted_points_rejected(self):
        doc = self._doc()
        doc["points"] = doc["points"][::-1]
        with pytest.raises(StoreError):
            serialize_dse_report(doc)

    def test_unknown_pareto_id_rejected(self):
        doc = self._doc()
        doc["pareto"] = ["zz"]
        with pytest.raises(StoreError):
            serialize_dse_report(doc)

    def test_missing_section_rejected(self):
        doc = self._doc()
        del doc["ranking"]
        with pytest.raises(StoreError):
            serialize_dse_report(doc)
