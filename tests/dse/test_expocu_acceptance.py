"""The PR's acceptance criterion, end to end on the real ExpoCU.

On the bundled 24-point ``full`` space (2 dividers × 2 counter widths ×
2 schedulers × 3 hardening modes, ``side=4`` geometry):

* the factorial ``repro-dse/v1`` report's Pareto front matches the
  brute-force O(n²) oracle exactly;
* the evolutionary strategy with a fixed seed finds every
  factorial-front point;
* a warm re-run replays byte-identically from the store with zero
  misses.

One cold factorial populates a module-scoped store; everything else
rides its cache.
"""

import pytest

from repro.dse import (
    EvolutionaryConfig,
    Objective,
    dominates,
    expocu_campaign_spec,
    expocu_space,
    explore,
)
from repro.store import ArtifactStore

pytestmark = pytest.mark.slow

N_FAULTS = 12
EVOLUTION = EvolutionaryConfig(population=12, generations=10, seed=1)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("dse-library"))


@pytest.fixture(scope="module")
def cold_report(store_dir):
    space = expocu_space("full")
    spec = expocu_campaign_spec(faults=N_FAULTS)
    return explore(space, spec, store=ArtifactStore(store_dir))


class TestExpoCuAcceptance:
    def test_space_has_at_least_24_points(self):
        assert expocu_space("full").size() >= 24

    def test_factorial_front_matches_bruteforce_oracle(self, cold_report):
        doc = cold_report.doc
        assert doc["schema"] == "repro-dse/v1"
        assert len(doc["points"]) == 24
        assert doc["failures"] == []
        objectives = [Objective(o["name"], o["sense"], o["weight"])
                      for o in doc["objectives"]]
        oracle = [
            a["id"] for a in doc["points"]
            if not any(
                dominates(b["objectives"], a["objectives"], objectives)
                for b in doc["points"] if b is not a
            )
        ]
        assert doc["pareto"] == oracle

    def test_axes_shape_the_hardware(self, cold_report):
        by_id = {p["id"]: p for p in cold_report.points}
        base = "i2c_divider=2,count_bits=8,scheduler={},hardening={}"
        plain = by_id[base.format("round_robin", "none")]
        tmr = by_id[base.format("round_robin", "tmr")]
        fcfs = by_id[base.format("fcfs", "none")]
        # TMR triplicates every flop (plus voters): strictly bigger.
        assert tmr["metrics"]["flops"] == 3 * plain["metrics"]["flops"]
        assert tmr["metrics"]["area_ge"] > 1.5 * plain["metrics"]["area_ge"]
        # FCFS arbitration needs age counters: different hardware.
        assert fcfs["metrics"]["area_ge"] != plain["metrics"]["area_ge"]

    def test_evolutionary_finds_every_factorial_front_point(
            self, cold_report, store_dir):
        store = ArtifactStore(store_dir)
        evolved = explore(
            expocu_space("full"), expocu_campaign_spec(faults=N_FAULTS),
            strategy="evolutionary", evolution=EVOLUTION, store=store,
        )
        assert set(cold_report.pareto_ids) <= set(evolved.pareto_ids)
        # The search only replayed cached points: nothing re-simulated.
        assert dict(store.counters["miss"]) == {}

    def test_warm_rerun_is_byte_identical(self, cold_report, store_dir):
        store = ArtifactStore(store_dir)
        warm = explore(
            expocu_space("full"), expocu_campaign_spec(faults=N_FAULTS),
            store=store,
        )
        assert warm.to_json() == cold_report.to_json()
        assert dict(store.counters["miss"]) == {}
        assert store.counters["hit"]["dse_point"] == 24
