"""Property tests: the Pareto front against a brute-force O(n²) oracle.

The engine's front (sorted simple-cull) must match, point for point,
the definitionally-obvious oracle that compares every pair — over
seeded random vector sets with duplicates forced in, and over the
degenerate shapes (single objective, single point, all-duplicates,
empty input).
"""

import random

import pytest

from repro.dse import (
    DseError,
    Objective,
    dominates,
    mcdm_ranking,
    pareto_front,
)


def oracle_front(vectors, objectives):
    """Brute force: index i survives iff no j dominates it."""
    return [
        i for i, a in enumerate(vectors)
        if not any(dominates(b, a, objectives)
                   for j, b in enumerate(vectors) if j != i)
    ]


def random_vectors(rng, n, objectives, grid=4):
    """Vectors drawn from a small value grid so duplicates are common."""
    return [
        {o.name: float(rng.randrange(grid)) for o in objectives}
        for _ in range(n)
    ]


class TestParetoProperty:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed)
        dims = rng.randint(1, 4)
        objectives = [
            Objective(f"o{k}", rng.choice(("min", "max")))
            for k in range(dims)
        ]
        vectors = random_vectors(rng, rng.randint(1, 60), objectives,
                                 grid=rng.choice((2, 4, 9)))
        assert pareto_front(vectors, objectives) == \
            oracle_front(vectors, objectives)

    @pytest.mark.parametrize("seed", (0, 7, 23))
    def test_front_members_are_mutually_nondominating(self, seed):
        rng = random.Random(seed)
        objectives = [Objective("a"), Objective("b", "max"), Objective("c")]
        vectors = random_vectors(rng, 40, objectives)
        front = pareto_front(vectors, objectives)
        for i in front:
            for j in front:
                assert not dominates(vectors[i], vectors[j], objectives)

    def test_duplicates_all_stay_on_front(self):
        objectives = [Objective("x"), Objective("y")]
        vectors = [{"x": 1.0, "y": 2.0}] * 5
        assert pareto_front(vectors, objectives) == [0, 1, 2, 3, 4]

    def test_duplicate_of_a_front_point_survives_too(self):
        objectives = [Objective("x"), Objective("y")]
        vectors = [
            {"x": 0.0, "y": 5.0},
            {"x": 5.0, "y": 0.0},
            {"x": 0.0, "y": 5.0},   # duplicate of index 0
            {"x": 9.0, "y": 9.0},   # dominated
        ]
        assert pareto_front(vectors, objectives) == [0, 1, 2]

    def test_single_objective_keeps_only_minima(self):
        objectives = [Objective("cost")]
        vectors = [{"cost": v} for v in (3.0, 1.0, 2.0, 1.0)]
        assert pareto_front(vectors, objectives) == [1, 3]

    def test_single_objective_max_sense(self):
        objectives = [Objective("gain", "max")]
        vectors = [{"gain": v} for v in (3.0, 9.0, 9.0, 2.0)]
        assert pareto_front(vectors, objectives) == [1, 2]

    def test_single_point(self):
        assert pareto_front([{"x": 4.0}], [Objective("x")]) == [0]

    def test_empty_input(self):
        assert pareto_front([], [Objective("x")]) == []

    def test_no_objectives_rejected(self):
        with pytest.raises(DseError):
            pareto_front([{"x": 1.0}], [])

    def test_missing_objective_value_rejected(self):
        with pytest.raises(DseError):
            pareto_front([{"x": 1.0}], [Objective("y")])


class TestDominates:
    def test_strictly_better_everywhere(self):
        objectives = [Objective("a"), Objective("b")]
        assert dominates({"a": 0.0, "b": 0.0}, {"a": 1.0, "b": 1.0},
                         objectives)

    def test_equal_vectors_do_not_dominate(self):
        objectives = [Objective("a"), Objective("b")]
        v = {"a": 1.0, "b": 2.0}
        assert not dominates(v, dict(v), objectives)

    def test_trade_off_does_not_dominate(self):
        objectives = [Objective("a"), Objective("b")]
        assert not dominates({"a": 0.0, "b": 2.0}, {"a": 2.0, "b": 0.0},
                             objectives)

    def test_max_sense_flips_direction(self):
        objectives = [Objective("fmax", "max")]
        assert dominates({"fmax": 100.0}, {"fmax": 50.0}, objectives)
        assert not dominates({"fmax": 50.0}, {"fmax": 100.0}, objectives)


class TestMcdmRanking:
    def test_orders_by_weighted_distance(self):
        objectives = [Objective("a"), Objective("b")]
        vectors = [
            {"a": 0.0, "b": 0.0},   # best in both
            {"a": 1.0, "b": 1.0},   # worst in both
            {"a": 0.0, "b": 1.0},
        ]
        ranking = mcdm_ranking(vectors, objectives)
        assert [i for i, _ in ranking] == [0, 2, 1]
        assert ranking[0][1] == 0.0
        assert ranking[-1][1] == 2.0

    def test_weights_scale_contributions(self):
        objectives = [Objective("a", weight=3.0), Objective("b", weight=1.0)]
        vectors = [{"a": 1.0, "b": 0.0}, {"a": 0.0, "b": 1.0}]
        ranking = dict(mcdm_ranking(vectors, objectives))
        assert ranking[0] == 3.0
        assert ranking[1] == 1.0

    def test_constant_objective_contributes_nothing(self):
        objectives = [Objective("a"), Objective("b")]
        vectors = [{"a": 5.0, "b": 0.0}, {"a": 5.0, "b": 1.0}]
        ranking = mcdm_ranking(vectors, objectives)
        assert ranking == [(0, 0.0), (1, 1.0)]

    def test_ties_break_by_index(self):
        objectives = [Objective("a")]
        vectors = [{"a": 1.0}, {"a": 1.0}]
        assert mcdm_ranking(vectors, objectives) == [(0, 0.0), (1, 0.0)]

    def test_empty(self):
        assert mcdm_ranking([], [Objective("a")]) == []

    def test_ranking_is_total(self):
        rng = random.Random(5)
        objectives = [Objective("a"), Objective("b", "max")]
        vectors = random_vectors(rng, 30, objectives)
        ranking = mcdm_ranking(vectors, objectives)
        assert sorted(i for i, _ in ranking) == list(range(30))


class TestObjective:
    def test_bad_sense_rejected(self):
        with pytest.raises(DseError):
            Objective("x", "upward")

    def test_negative_weight_rejected(self):
        with pytest.raises(DseError):
            Objective("x", weight=-1.0)
