"""Tests for shared/global objects and their schedulers (paper §6/§8)."""

import pytest

from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.osss import (
    Fcfs,
    HwClass,
    RoundRobin,
    SharedAccessError,
    SharedObject,
    StaticPriority,
)
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Alu(HwClass):
    @classmethod
    def layout(cls):
        return {"ops": unsigned(8)}

    def add(self, a: unsigned(8), b: unsigned(8)) -> unsigned(8):
        self.ops = (self.ops + 1).resized(8)
        return (a + b).resized(8)


class TestSchedulerPolicies:
    def test_static_priority(self):
        assert StaticPriority().pick([2, 0, 3], 4) == 0

    def test_round_robin_rotates(self):
        rr = RoundRobin()
        assert rr.pick([0, 1, 2], 3) == 0
        assert rr.pick([0, 1, 2], 3) == 1
        assert rr.pick([0, 2], 3) == 2
        assert rr.pick([0, 2], 3) == 0

    def test_round_robin_reset(self):
        rr = RoundRobin()
        rr.pick([1], 3)
        rr.reset()
        assert rr.pointer == 0

    def test_fcfs_prefers_oldest(self):
        fcfs = Fcfs()
        fcfs.note_waiting([1])
        fcfs.note_waiting([0, 1])
        assert fcfs.pick([0, 1], 2) == 1

    def test_fcfs_tie_breaks_low_index(self):
        fcfs = Fcfs()
        fcfs.note_waiting([0, 1])
        assert fcfs.pick([0, 1], 2) == 0

    def test_fcfs_saturation(self):
        fcfs = Fcfs(age_bits=2)
        for _ in range(10):
            fcfs.note_waiting([0, 1])
        assert fcfs.pick([0, 1], 2) == 0  # both saturated, index wins

    def test_fcfs_age_saturates_exactly_at_ceiling(self):
        fcfs = Fcfs(age_bits=3)
        for _ in range(20):
            fcfs.note_waiting([1])
        assert fcfs._ages[1] == (1 << 3) - 1  # clamped, no overflow

    def test_fcfs_reset_restores_initial_state(self):
        fcfs = Fcfs()
        fcfs.note_waiting([0, 1])
        fcfs.note_waiting([1])
        assert fcfs.pick([0, 1], 2) == 1  # 1 is older...
        fcfs.reset()
        assert fcfs._ages == {}
        fcfs.note_waiting([0, 1])
        assert fcfs.pick([0, 1], 2) == 0  # ...but history is gone now

    def test_round_robin_reset_restores_initial_grants(self):
        rr = RoundRobin()
        fresh = [rr.pick([0, 1, 2], 3) for _ in range(4)]
        rr.reset()
        assert rr.pointer == 0
        assert [rr.pick([0, 1, 2], 3) for _ in range(4)] == fresh


class TestSharedObjectStructure:
    def test_requires_hwclass(self):
        with pytest.raises(TypeError):
            SharedObject("x", object())

    def test_client_port_indices(self):
        shared = SharedObject("alu", Alu())
        assert shared.client_port("a").index == 0
        assert shared.client_port("b").index == 1
        assert shared.num_clients == 2

    def test_call_direct(self):
        shared = SharedObject("alu", Alu())
        assert shared.call_direct("add", Unsigned(8, 1),
                                  Unsigned(8, 2)).value == 3

    def test_post_unknown_method(self):
        shared = SharedObject("alu", Alu())
        shared.client_port("a")

        class Host(Module):
            def __init__(self, name, clk):
                super().__init__(name)
                self.cthread(self.run, clock=clk)

            def run(self):
                shared.post(0, "bogus", ())
                yield

        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.h = Host("h", top.clk)
        sim = Simulator(top)
        with pytest.raises(SharedAccessError):
            sim.run(20 * NS)


class _Client(Module):
    def __init__(self, name, clk, rst, port, a, b, delay=0):
        super().__init__(name)
        self.result = Signal("result", unsigned(8))
        self.done_at = None
        self.port, self.a, self.b, self.delay = port, a, b, delay
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        yield
        for _ in range(self.delay):
            yield
        value = yield from self.port.call(
            "add", Unsigned(8, self.a), Unsigned(8, self.b)
        )
        self.result.write(value)
        from repro.hdl.kernel import current_simulator

        self.done_at = current_simulator().now
        while True:
            yield


def run_pair(scheduler, delay0=0, delay1=0):
    shared = SharedObject("alu", Alu(), scheduler=scheduler)
    top = Module("top")
    top.clk = Clock("clk", 10 * NS)
    top.rst = Signal("rst", bit(), Bit(0))
    top.c0 = _Client("c0", top.clk, top.rst, shared.client_port("c0"),
                     3, 4, delay0)
    top.c1 = _Client("c1", top.clk, top.rst, shared.client_port("c1"),
                     10, 5, delay1)
    sim = Simulator(top)
    sim.run(400 * NS)
    return top, shared


class TestArbitrationTiming:
    def test_uncontended_latency_two_cycles(self):
        top, shared = run_pair(RoundRobin(), delay0=0, delay1=20)
        # c0 posts at the 2nd edge (15ns), resumes two cycles later (35ns).
        assert top.c0.done_at == 35 * NS

    def test_contention_serializes(self):
        top, shared = run_pair(RoundRobin())
        assert top.c0.result.read().value == 7
        assert top.c1.result.read().value == 15
        assert abs(top.c0.done_at - top.c1.done_at) == 10 * NS

    def test_priority_order(self):
        top, shared = run_pair(StaticPriority())
        assert top.c0.done_at < top.c1.done_at

    def test_grant_history_recorded(self):
        top, shared = run_pair(RoundRobin())
        winners = [w for _, w in shared.grant_history]
        assert sorted(winners) == [0, 1]

    def test_object_state_mutated_once_per_call(self):
        top, shared = run_pair(RoundRobin())
        assert shared.instance.ops.value == 2

    def test_reset_clears_protocol(self):
        top, shared = run_pair(RoundRobin())
        shared.reset()
        assert shared.grant_history == [] or shared._requests == {}
        assert shared._results == {}

    def test_double_post_rejected(self):
        shared = SharedObject("alu", Alu())
        port = shared.client_port("a")

        class Greedy(Module):
            def __init__(self, name, clk):
                super().__init__(name)
                self.cthread(self.run, clock=clk)

            def run(self):
                shared.post(0, "add", (Unsigned(8, 1), Unsigned(8, 1)))
                shared.post(0, "add", (Unsigned(8, 1), Unsigned(8, 1)))
                yield

        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.g = Greedy("g", top.clk)
        sim = Simulator(top)
        with pytest.raises(SharedAccessError):
            sim.run(20 * NS)


class _Looper(Module):
    """Re-posts a shared call forever: a bandwidth hog."""

    def __init__(self, name, clk, rst, port):
        super().__init__(name)
        self.port = port
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        yield
        while True:
            yield from self.port.call(
                "add", Unsigned(8, 1), Unsigned(8, 1)
            )


class _Victim(Module):
    """A single call that may never be granted under StaticPriority."""

    def __init__(self, name, clk, rst, port):
        super().__init__(name)
        self.port = port
        self.done = False
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        yield
        yield from self.port.call("add", Unsigned(8, 2), Unsigned(8, 2))
        self.done = True
        while True:
            yield


def _starvation_bench(watchdog_rounds):
    # Three hogs saturate the arbiter: each hog's call pipeline (post,
    # grant, fetch, turnaround) occupies one grant every three rounds,
    # so with StaticPriority the lowest-priority victim never wins.
    shared = SharedObject("alu", Alu(), scheduler=StaticPriority(),
                          watchdog_rounds=watchdog_rounds)
    top = Module("top")
    top.clk = Clock("clk", 10 * NS)
    top.rst = Signal("rst", bit(), Bit(0))
    for k in range(3):
        setattr(top, f"hog{k}",
                _Looper(f"hog{k}", top.clk, top.rst,
                        shared.client_port(f"h{k}")))
    top.victim = _Victim("victim", top.clk, top.rst,
                         shared.client_port("v"))
    return top, shared


class TestWatchdog:
    def test_rounds_validated_at_construction(self):
        with pytest.raises(ValueError):
            SharedObject("alu", Alu(), watchdog_rounds=0)

    def test_starved_client_raises_with_diagnostics(self):
        # Two high-priority hogs monopolize the object; the low-priority
        # victim trips the watchdog instead of waiting forever.
        top, shared = _starvation_bench(watchdog_rounds=8)
        sim = Simulator(top)
        with pytest.raises(SharedAccessError) as exc:
            sim.run(2000 * NS)
        message = str(exc.value)
        assert "OSS303" in message
        assert "watchdog" in message
        assert "static-priority" in message or "StaticPriority" in message
        assert not top.victim.done

    def test_timed_out_request_slot_is_released(self):
        top, shared = _starvation_bench(watchdog_rounds=8)
        sim = Simulator(top)
        with pytest.raises(SharedAccessError):
            sim.run(2000 * NS)
        assert top.victim.port.index not in shared._requests

    def test_none_disables_the_watchdog(self):
        # Same starvation, no watchdog: the victim just waits (the
        # pre-hardening behaviour), and nobody raises.
        top, shared = _starvation_bench(watchdog_rounds=None)
        sim = Simulator(top)
        sim.run(2000 * NS)
        assert not top.victim.done  # still starved, just silently

    def test_default_budget_is_generous(self):
        shared = SharedObject("alu", Alu())
        assert shared.watchdog_rounds == SharedObject.DEFAULT_WATCHDOG_ROUNDS
        assert shared.watchdog_rounds >= 1000
