"""Tests for polymorphic storage and dispatch (paper §6/§8)."""

import pytest

from repro.osss import HwClass, HwClassError, PolyVar
from repro.types import Unsigned
from repro.types.spec import unsigned


class Op(HwClass):
    abstract = True

    @classmethod
    def layout(cls):
        return {"acc": unsigned(8)}

    def execute(self, a, b):
        raise NotImplementedError


class Add(Op):
    def execute(self, a, b):
        return (a + b).resized(8)


class Mul(Op):
    def execute(self, a, b):
        return (a * b).resized(8)


class Wide(Op):
    @classmethod
    def layout(cls):
        return {"extra": unsigned(16)}

    def execute(self, a, b):
        self.extra = (a * b).resized(16)
        return self.extra.resized(8)


class TestGeometry:
    def test_tag_width(self):
        assert PolyVar(Op, [Add, Mul]).tag_width == 1
        assert PolyVar(Op, [Add, Mul, Wide]).tag_width == 2

    def test_state_width_is_max(self):
        poly = PolyVar(Op, [Add, Wide])
        assert poly.state_width == 24  # acc(8) + extra(16)
        assert poly.total_width == 25


class TestDispatch:
    def test_virtual_call(self):
        poly = PolyVar(Op, [Add, Mul])
        assert poly.execute(Unsigned(4, 3), Unsigned(4, 5)).value == 8
        poly.assign(Mul())
        assert poly.execute(Unsigned(4, 3), Unsigned(4, 5)).value == 15

    def test_call_by_name(self):
        poly = PolyVar(Op, [Add, Mul])
        assert poly.call("execute", Unsigned(4, 2), Unsigned(4, 2)).value == 4

    def test_tag_tracks_class(self):
        poly = PolyVar(Op, [Add, Mul, Wide])
        assert poly.tag == 0
        poly.assign(Wide())
        assert poly.tag == 2

    def test_assign_copies(self):
        source = Add()
        poly = PolyVar(Op, [Add, Mul])
        poly.assign(source)
        source.acc = 99
        assert poly.current.acc.value == 0

    def test_interface_enforced(self):
        poly = PolyVar(Op, [Add, Mul])
        with pytest.raises(AttributeError):
            poly.nonexistent(1)


class TestErrors:
    def test_non_subclass_rejected(self):
        class Foreign(HwClass):
            pass

        with pytest.raises(HwClassError):
            PolyVar(Op, [Add, Foreign])

    def test_assign_outside_set(self):
        poly = PolyVar(Op, [Add])
        with pytest.raises(HwClassError):
            poly.assign(Mul())

    def test_base_must_be_hwclass(self):
        with pytest.raises(TypeError):
            PolyVar(int)

    def test_empty_subclass_set(self):
        class Lonely(HwClass):
            abstract = True

        with pytest.raises(HwClassError):
            PolyVar(Lonely, [])


class TestPackedRepresentation:
    def test_pack_load_roundtrip(self):
        poly = PolyVar(Op, [Add, Mul, Wide])
        wide = Wide()
        wide.acc = 7
        wide.extra = 1234
        poly.assign(wide)
        tag, raw = poly.pack()
        other = PolyVar(Op, [Add, Mul, Wide])
        other.load(tag, raw)
        assert other.tag == 2
        assert other.current.extra.value == 1234

    def test_load_bad_tag(self):
        poly = PolyVar(Op, [Add, Mul])
        with pytest.raises(ValueError):
            poly.load(5, 0)
