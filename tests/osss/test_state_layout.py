"""Tests for the object↔bit-vector mapping (paper §8, claim R3 basis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.osss import HwClass, StateLayout, pack_object, template, unpack_object
from repro.types import Bit, BitVector, Unsigned
from repro.types.spec import bit, bits, signed, unsigned


class Mixed(HwClass):
    @classmethod
    def layout(cls):
        return {"flag": bit(), "count": unsigned(8), "delta": signed(4),
                "pattern": bits(3)}


class TestLayoutGeometry:
    def test_packing_order_lsb_first(self):
        layout = StateLayout.of(Mixed)
        assert layout.slots["flag"].offset == 0
        assert layout.slots["count"].offset == 1
        assert layout.slots["delta"].offset == 9
        assert layout.slots["pattern"].offset == 13
        assert layout.total_width == 16

    def test_msb(self):
        assert StateLayout.of(Mixed).slots["count"].msb == 8

    def test_memoized(self):
        assert StateLayout.of(Mixed) is StateLayout.of(Mixed)

    def test_empty_class_min_width(self):
        class Empty(HwClass):
            pass

        assert StateLayout.of(Empty).total_width == 1

    def test_inherited_members_first(self):
        class Base(HwClass):
            @classmethod
            def layout(cls):
                return {"a": unsigned(4)}

        class Derived(Base):
            @classmethod
            def layout(cls):
                return {"b": unsigned(4)}

        layout = StateLayout.of(Derived)
        assert layout.slots["a"].offset == 0
        assert layout.slots["b"].offset == 4

    def test_non_hwclass_rejected(self):
        with pytest.raises(TypeError):
            StateLayout(int)

    def test_describe_lists_fields(self):
        text = StateLayout.of(Mixed).describe()
        assert "count" in text and "16 bit" in text


class TestPackUnpack:
    @given(flag=st.integers(0, 1), count=st.integers(0, 255),
           delta=st.integers(-8, 7), pattern=st.integers(0, 7))
    def test_roundtrip(self, flag, count, delta, pattern):
        obj = Mixed()
        obj.flag = Bit(flag)
        obj.count = Unsigned(8, count)
        from repro.types import Signed

        obj.delta = Signed(4, delta)
        obj.pattern = BitVector(3, pattern)
        packed = pack_object(obj)
        restored = unpack_object(Mixed, packed)
        assert restored == obj
        assert restored.delta.value == delta

    def test_field_raw(self):
        obj = Mixed()
        obj.count = Unsigned(8, 0xAB)
        layout = StateLayout.of(Mixed)
        assert layout.field_raw(layout.pack(obj), "count") == 0xAB

    def test_pack_wrong_class(self):
        class Other(HwClass):
            pass

        with pytest.raises(TypeError):
            StateLayout.of(Mixed).pack(Other())

    def test_unpack_accepts_plain_int(self):
        obj = unpack_object(Mixed, 0)
        assert obj.count.value == 0

    def test_template_specializations_distinct(self):
        @template("W")
        class Box(HwClass):
            @classmethod
            def layout(cls):
                return {"v": unsigned(cls.W)}

        assert StateLayout.of(Box[4]).total_width == 4
        assert StateLayout.of(Box[9]).total_width == 9
