"""Tests for synthesizable templates (paper §6, Fig. 3–4)."""

import pytest

from repro.osss import (
    HwClass,
    TemplateError,
    is_generic,
    is_template,
    template,
    template_binding,
)
from repro.types import BitVector
from repro.types.spec import bits, unsigned


@template("WIDTH", "RESET", MODE=0)
class Reg(HwClass):
    @classmethod
    def layout(cls):
        return {"value": bits(cls.WIDTH)}

    def construct(self):
        self.value = BitVector(self.WIDTH, self.RESET)


class TestSpecialization:
    def test_subscript_creates_specialization(self):
        cls = Reg[4, 0]
        assert cls.WIDTH == 4 and cls.RESET == 0 and cls.MODE == 0

    def test_memoized(self):
        assert Reg[4, 0] is Reg[4, 0]
        assert Reg[4, 0] is not Reg[8, 0]

    def test_naming(self):
        assert Reg[4, 1].__name__ == "Reg_4_1_0"

    def test_keyword_form(self):
        cls = Reg.specialize(WIDTH=6, RESET=2, MODE=1)
        assert cls.WIDTH == 6 and cls.MODE == 1
        assert cls is Reg[6, 2, 1]

    def test_defaults_apply(self):
        assert Reg[4, 0].MODE == 0

    def test_layout_uses_parameters(self):
        assert Reg[12, 0]().value.width == 12

    def test_instance_behaviour(self):
        assert Reg[4, 5]().value.value == 5


class TestErrors:
    def test_generic_not_instantiable(self):
        with pytest.raises(Exception):
            Reg()

    def test_missing_required(self):
        with pytest.raises(TemplateError):
            Reg[4]

    def test_too_many(self):
        with pytest.raises(TemplateError):
            Reg[1, 2, 3, 4]

    def test_unknown_keyword(self):
        with pytest.raises(TemplateError):
            Reg.specialize(WIDTH=4, RESET=0, BOGUS=1)

    def test_duplicate_parameter_declaration(self):
        with pytest.raises(TemplateError):
            template("A", "A")(type("X", (), {}))


class TestIntrospection:
    def test_is_template(self):
        assert is_template(Reg) and is_template(Reg[4, 0])
        assert not is_template(HwClass)

    def test_is_generic(self):
        assert is_generic(Reg) and not is_generic(Reg[4, 0])

    def test_binding(self):
        assert template_binding(Reg[4, 1]) == {
            "WIDTH": 4, "RESET": 1, "MODE": 0,
        }
        assert template_binding(int) == {}


class TestClassTypedParameters:
    def test_class_as_template_argument(self):
        """OSSS allows 'even complex types like classes' as parameters."""

        class Payload(HwClass):
            @classmethod
            def layout(cls):
                return {"x": unsigned(4)}

        @template("ITEM")
        class Wrapper(HwClass):
            @classmethod
            def layout(cls):
                from repro.osss import StateLayout

                width = StateLayout.of(cls.ITEM).total_width
                return {"slot": unsigned(width)}

        specialized = Wrapper[Payload]
        assert specialized.ITEM is Payload
        assert specialized().slot.width == 4

    def test_template_on_module(self):
        from repro.hdl import Module

        @template("DEPTH")
        class Fifo(Module):
            pass

        assert Fifo[8].DEPTH == 8
