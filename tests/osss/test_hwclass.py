"""Tests for hardware classes: members, inheritance, operators (Fig. 2)."""

import pytest

from repro.osss import HwClass, HwClassError, registry
from repro.types import Bit, BitVector, Unsigned
from repro.types.spec import bit, bits, unsigned


class Point(HwClass):
    @classmethod
    def layout(cls):
        return {"x": unsigned(8), "y": unsigned(8)}

    def construct(self):
        self.x = Unsigned(8, 1)

    def translate(self, dx, dy):
        self.x = (self.x + dx).resized(8)
        self.y = (self.y + dy).resized(8)

    def manhattan(self):
        return (self.x + self.y).resized(9)


class Point3(Point):
    @classmethod
    def layout(cls):
        return {"z": unsigned(8)}


class TestMembers:
    def test_defaults_then_construct(self):
        p = Point()
        assert p.x.value == 1 and p.y.value == 0

    def test_member_write_checked(self):
        p = Point()
        p.x = Unsigned(8, 5)
        with pytest.raises(ValueError):
            p.x = Unsigned(4, 5)

    def test_int_coercion(self):
        p = Point()
        p.x = 300  # wraps like hardware
        assert p.x.value == 44

    def test_undeclared_member_rejected(self):
        p = Point()
        with pytest.raises(HwClassError):
            p.unknown = Unsigned(8, 0)

    def test_unknown_read_raises(self):
        with pytest.raises(AttributeError):
            Point().unknown

    def test_private_attributes_allowed(self):
        p = Point()
        p._scratch = 42
        assert p._scratch == 42

    def test_hw_members_snapshot(self):
        p = Point()
        members = p.hw_members()
        assert list(members) == ["x", "y"]


class TestMethodsAndOperators:
    def test_method_mutation(self):
        p = Point()
        p.translate(Unsigned(8, 4), Unsigned(8, 7))
        assert (p.x.value, p.y.value) == (5, 7)

    def test_method_return(self):
        p = Point()
        p.translate(Unsigned(8, 2), Unsigned(8, 3))
        assert p.manhattan().value == 6

    def test_default_equality(self):
        a, b = Point(), Point()
        assert a == b
        b.x = 9
        assert a != b

    def test_copy_is_value_copy(self):
        a = Point()
        b = a.copy()
        b.x = 99
        assert a.x.value == 1

    def test_repr_mentions_members(self):
        assert "x=" in repr(Point())


class TestInheritance:
    def test_layout_merge_base_first(self):
        assert list(Point3.full_layout()) == ["x", "y", "z"]

    def test_inherited_methods(self):
        p = Point3()
        p.translate(Unsigned(8, 1), Unsigned(8, 1))
        assert p.x.value == 2

    def test_conflicting_redeclaration(self):
        class Clash(Point):
            @classmethod
            def layout(cls):
                return {"x": unsigned(4)}  # conflicts with base

        with pytest.raises(HwClassError):
            Clash.full_layout()

    def test_bad_layout_entry(self):
        class Bad(HwClass):
            @classmethod
            def layout(cls):
                return {"x": 8}

        with pytest.raises(HwClassError):
            Bad()

    def test_abstract_flag_not_inherited(self):
        class Iface(HwClass):
            abstract = True

        class Impl(Iface):
            pass

        with pytest.raises(HwClassError):
            Iface()
        Impl()  # concrete


class TestRegistry:
    def test_classes_registered(self):
        assert Point in registry.all_classes()
        assert Point3 in registry.all_classes()

    def test_concrete_subclasses(self):
        subs = registry.concrete_subclasses(Point)
        assert Point in subs and Point3 in subs
