"""Direct unit tests for the reporting and effort-metric helpers.

Complements ``test_eval.py`` (which exercises these through full flow
runs) with protocol-level stubs, so formatting and ratio arithmetic are
pinned down without synthesizing anything.
"""

from repro.eval.effort import (
    EffortMetrics,
    i2c_effort_comparison,
    measure_source,
)
from repro.eval.report import (
    flow_comparison,
    format_table,
    module_inventory,
    paper_anchor,
)
from repro.eval.sweep import SweepPoint


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table([{"a": 1, "bee": "xy"}, {"a": 100, "bee": "z"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bee"]
        assert set(lines[1]) <= {"-", " "}
        # All rows padded to equal width per column.
        assert lines[2].startswith("1  ")
        assert lines[3].startswith("100")

    def test_explicit_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]
        assert "2" not in text.splitlines()[2]

    def test_missing_keys_render_empty(self):
        # Columns come from the first row; later rows may omit keys.
        text = format_table([{"a": 1, "b": 5}, {"a": 2}])
        lines = text.splitlines()
        assert "5" in lines[2]
        assert lines[3].rstrip() == "2"

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"


class _Timing:
    def __init__(self, fmax, critical):
        self.fmax_mhz = fmax
        self.critical_path_ns = critical


class _Circuit:
    def __init__(self, n_flops):
        self._n = n_flops

    def flops(self):
        return [object()] * self._n


class _FakeFlow:
    """Just enough of the FlowResult protocol for the report helpers."""

    def __init__(self, name, area, cells, flops, fmax, fmax_routed,
                 critical):
        self.name = name
        self.area = area
        self.cells = cells
        self.circuit = _Circuit(flops)
        self.timing = _Timing(fmax, critical)
        self.timing_routed = _Timing(fmax_routed, critical)
        self.fmax_mhz = fmax_routed

    def summary(self):
        return {
            "flow": self.name,
            "area_ge": round(self.area, 1),
            "cells": self.cells,
            "flops": len(self.circuit.flops()),
            "fmax_mhz": round(self.timing.fmax_mhz, 1),
            "fmax_routed_mhz": round(self.fmax_mhz, 1),
            "critical_ns": round(self.timing_routed.critical_path_ns, 3),
        }


class _FakeAreaReport:
    def __init__(self):
        self.by_module = {"top/a": 60.0, "top/b": 40.0}
        self.total = 100.0


class TestFlowComparison:
    def test_ratio_row(self):
        osss = _FakeFlow("osss", 150.0, 30, 8, 100.0, 90.0, 11.0)
        vhdl = _FakeFlow("vhdl", 100.0, 20, 4, 50.0, 45.0, 22.0)
        text = flow_comparison(osss, vhdl)
        lines = text.splitlines()
        assert len(lines) == 5  # header + rule + two flows + ratio
        ratio = lines[-1]
        assert ratio.startswith("osss / vhdl")
        assert "1.5" in ratio  # area and cells ratio
        assert "2.0" in ratio  # flops and fmax ratio
        assert "0.5" in ratio  # critical-path ratio

    def test_zero_flop_vhdl_does_not_divide_by_zero(self):
        osss = _FakeFlow("osss", 10.0, 5, 3, 10.0, 10.0, 1.0)
        vhdl = _FakeFlow("vhdl", 10.0, 5, 0, 10.0, 10.0, 1.0)
        text = flow_comparison(osss, vhdl)
        assert "3.0" in text.splitlines()[-1]


class TestModuleInventory:
    def test_shares_and_total_row(self):
        flow = _FakeFlow("osss", 100.0, 10, 2, 10.0, 10.0, 1.0)
        flow.area_report = lambda depth=2: _FakeAreaReport()
        text = module_inventory(flow)
        lines = text.splitlines()
        assert "top/a" in lines[2] and "60.0" in lines[2]
        assert lines[-1].startswith("TOTAL")
        assert "100.0" in lines[-1]


class TestPaperAnchor:
    def test_format(self):
        text = paper_anchor("E1", "smaller area", "1.9x larger")
        assert text.startswith("[E1] paper: smaller area")
        assert "measured: 1.9x larger" in text


class TestSweepPointRow:
    def test_row_merges_params_and_summary(self):
        flow = _FakeFlow("osss", 42.0, 7, 2, 10.0, 9.0, 3.0)
        point = SweepPoint({"width": 8}, flow)
        row = point.row()
        assert row["width"] == 8
        assert row["area_ge"] == 42.0
        assert row["cells"] == 7


class TestEffortMetrics:
    def test_score_weighting(self):
        metrics = EffortMetrics("x", sloc=10, decisions=2,
                                state_carriers=3, explicit_assignments=4)
        assert metrics.effort_score == 10 + 6 + 6 + 6
        record = metrics.as_dict()
        assert record["style"] == "x"
        assert record["score"] == 28.0

    def test_measure_source_counts_constructs(self):
        def sample():
            """Docstring lines are not SLOC."""
            x = 0
            if x:          # decision 1
                x = 1
            while x:       # decision 2
                x -= 1
            y = mux(x, 1, 0)      # decision 3    # noqa: F821
            register("r")         # state carrier # noqa: F821
            next("n")             # explicit assignment
            return y

        metrics = measure_source("sample", sample)
        assert metrics.decisions == 3
        assert metrics.state_carriers == 1
        assert metrics.explicit_assignments == 1
        assert metrics.sloc >= 8

    def test_i2c_comparison_shape_and_ordering(self):
        styles = i2c_effort_comparison()
        assert set(styles) == {"osss", "systemc_procedural", "vhdl_rtl"}
        # The paper's R8 ordering: behavioral OSSS costs the least.
        assert (styles["osss"].effort_score
                < styles["systemc_procedural"].effort_score)
