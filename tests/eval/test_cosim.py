"""Tests for the kernel↔RTL/gate co-simulation shell."""

from repro.baseline import i2c_rtl, sync_rtl
from repro.eval import RtlCosimModule
from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.netlist import GateSimulator, map_module, optimize
from repro.types import Bit
from repro.types.spec import bit


def host(engine=None, rtl=None):
    top = Module("top")
    top.clk = Clock("clk", 10 * NS)
    top.rst = Signal("rst", bit(), Bit(1))
    top.dut = RtlCosimModule("dut", rtl or sync_rtl(), top.clk, top.rst,
                             engine=engine)
    sim = Simulator(top)
    sim.run(20 * NS)
    top.rst.write(0)
    return top, sim


class TestRtlCosim:
    def test_ports_mirror_rtl_interface(self):
        top, _ = host()
        ports = top.dut.ports()
        assert ports["pix_valid"].direction == "in"
        assert ports["frame_start"].direction == "out"
        assert "reset" not in ports  # driven from the kernel reset signal

    def test_behaviour_matches_direct_rtl_sim(self):
        from repro.rtl import RtlSimulator

        top, sim = host()
        reference = RtlSimulator(sync_rtl())
        reference.step(reset=1)
        reference.step(reset=1)
        drive = [0, 1, 1, 0, 0, 1, 0, 0]
        for level in drive:
            top.dut.port("frame_strobe").drive(level)
            sim.run(10 * NS)
            reference.step(reset=0, frame_strobe=level, pix_valid=0,
                           line_strobe=0)
            assert int(top.dut.port("frame_start").read()) == \
                reference.peek_outputs()["frame_start"]

    def test_reset_passthrough(self):
        top, sim = host()
        top.dut.port("frame_strobe").drive(1)
        sim.run(30 * NS)
        top.rst.write(1)  # re-assert kernel reset
        sim.run(30 * NS)
        assert int(top.dut.port("frame_start").read()) == 0

    def test_gate_level_engine(self):
        circuit = map_module(sync_rtl())
        optimize(circuit)
        top, sim = host(engine=GateSimulator(circuit))
        pulses = 0
        for level in (0, 1, 1, 0, 0, 0, 0):
            top.dut.port("frame_strobe").drive(level)
            sim.run(10 * NS)
            pulses += int(top.dut.port("frame_start").read())
        assert pulses == 1

    def test_wraps_multi_state_fsm(self):
        top, sim = host(rtl=i2c_rtl(2))
        top.dut.port("dev_addr").drive(0x21)
        top.dut.port("reg_addr").drive(1)
        top.dut.port("data").drive(2)
        top.dut.port("sda_in").drive(0)
        top.dut.port("start").drive(1)
        assert sim.run_until(lambda: int(top.dut.port("busy").read()),
                             200 * 10 * NS)
        top.dut.port("start").drive(0)
        assert sim.run_until(lambda: int(top.dut.port("done").read()),
                             3000 * 10 * NS)
