"""Tests for the parameter-sweep harness."""

import pytest

from repro.eval.sweep import PointRunner, grid, monotonic, sweep
from repro.expocu import HistogramUnit
from repro.hdl import Clock, NS, Signal
from repro.synth import SynthesisError
from repro.types import Bit
from repro.types.spec import bit


def hist_factory(count_bits):
    return HistogramUnit[count_bits](
        "h", Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))
    )


class TestGrid:
    def test_single_axis(self):
        assert grid(a=[1, 2]) == [{"a": 1}, {"a": 2}]

    def test_cartesian_product(self):
        points = grid(a=[1, 2], b=["x", "y"])
        assert len(points) == 4
        assert {"a": 2, "b": "x"} in points

    def test_empty(self):
        assert grid() == [{}]

    def test_empty_axis_list_empties_the_grid(self):
        assert grid(a=[], b=["x", "y"]) == []


class TestMonotonic:
    def test_weak_and_strict(self):
        rows = [{"x": 1, "y": 5}, {"x": 2, "y": 5}, {"x": 3, "y": 9}]
        assert monotonic(rows, "x", "y")
        assert not monotonic(rows, "x", "y", strict=True)

    def test_unordered_input(self):
        rows = [{"x": 3, "y": 9}, {"x": 1, "y": 1}, {"x": 2, "y": 4}]
        assert monotonic(rows, "x", "y", strict=True)


class TestSweep:
    def test_sweep_runs_flow_per_point(self):
        points = sweep(hist_factory, grid(count_bits=[8, 12]))
        assert len(points) == 2
        assert points[0].params == {"count_bits": 8}
        assert points[1].result.area > points[0].result.area
        row = points[0].row()
        assert {"count_bits", "area_ge", "cells", "flops",
                "fmax_mhz"} <= set(row)
        assert all(point.ok for point in points)

    def test_empty_point_list_is_an_empty_sweep(self):
        assert sweep(hist_factory, grid(count_bits=[])) == []

    def test_single_point_space(self):
        points = sweep(hist_factory, grid(count_bits=[8]))
        assert len(points) == 1
        assert points[0].ok
        assert points[0].params == {"count_bits": 8}

    def test_mid_sweep_failure_recorded_and_sweep_continues(self):
        def flaky_factory(count_bits):
            if count_bits == 10:
                raise SynthesisError("10-bit histograms unsupported")
            return hist_factory(count_bits)

        points = sweep(flaky_factory, grid(count_bits=[8, 10, 12]))
        # All three points are present, in order; only the middle failed.
        assert [p.params["count_bits"] for p in points] == [8, 10, 12]
        assert [p.ok for p in points] == [True, False, True]
        failed = points[1]
        assert failed.result is None
        assert isinstance(failed.error, SynthesisError)
        row = failed.row()
        assert row["count_bits"] == 10
        assert row["error"].startswith("SynthesisError:")
        # The surviving points still carry full flow results.
        assert points[2].result.area > points[0].result.area

    def test_on_error_raise_restores_fail_fast(self):
        def bad_factory(count_bits):
            raise SynthesisError("always broken")

        with pytest.raises(SynthesisError):
            sweep(bad_factory, grid(count_bits=[8]), on_error="raise")

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            sweep(hist_factory, [], on_error="ignore")


class TestPointRunner:
    def test_reentrant_over_points(self):
        runner = PointRunner(hist_factory)
        first = runner.run({"count_bits": 8})
        second = runner.run({"count_bits": 12})
        assert first.ok and second.ok
        assert second.result.area > first.result.area

    def test_records_flow_errors(self):
        def bad_factory(count_bits):
            raise SynthesisError("nope")

        point = PointRunner(bad_factory).run({"count_bits": 8})
        assert not point.ok
        assert isinstance(point.error, SynthesisError)

    def test_store_requires_default_flow(self):
        with pytest.raises(ValueError):
            PointRunner(hist_factory, flow=lambda module: None,
                        store=object())
