"""Tests for the parameter-sweep harness."""

from repro.eval.sweep import grid, monotonic, sweep
from repro.expocu import HistogramUnit
from repro.hdl import Clock, NS, Signal
from repro.types import Bit
from repro.types.spec import bit


class TestGrid:
    def test_single_axis(self):
        assert grid(a=[1, 2]) == [{"a": 1}, {"a": 2}]

    def test_cartesian_product(self):
        points = grid(a=[1, 2], b=["x", "y"])
        assert len(points) == 4
        assert {"a": 2, "b": "x"} in points

    def test_empty(self):
        assert grid() == [{}]


class TestMonotonic:
    def test_weak_and_strict(self):
        rows = [{"x": 1, "y": 5}, {"x": 2, "y": 5}, {"x": 3, "y": 9}]
        assert monotonic(rows, "x", "y")
        assert not monotonic(rows, "x", "y", strict=True)

    def test_unordered_input(self):
        rows = [{"x": 3, "y": 9}, {"x": 1, "y": 1}, {"x": 2, "y": 4}]
        assert monotonic(rows, "x", "y", strict=True)


class TestSweep:
    def test_sweep_runs_flow_per_point(self):
        def factory(count_bits):
            return HistogramUnit[count_bits](
                "h", Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))
            )

        points = sweep(factory, grid(count_bits=[8, 12]))
        assert len(points) == 2
        assert points[0].params == {"count_bits": 8}
        assert points[1].result.area > points[0].result.area
        row = points[0].row()
        assert {"count_bits", "area_ge", "cells", "flops",
                "fmax_mhz"} <= set(row)
