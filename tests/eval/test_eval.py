"""Tests for the evaluation harness itself."""

import pytest

from repro.eval import (
    EquivalenceReport,
    FlowResult,
    KernelStage,
    RtlStage,
    check_all_stages,
    flow_comparison,
    format_table,
    i2c_effort_comparison,
    lockstep,
    measure_source,
    module_inventory,
    run_osss_flow,
    run_rtl,
    simulation_rates,
    speedup_table,
)
from repro.expocu import CamSync
from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Inc(Module):
    x = Input(unsigned(8))
    y = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.y.write(Unsigned(8, 0))
        yield
        while True:
            self.y.write((self.x.read() + 1).resized(8))
            yield


class Dec(Inc):
    def run(self):
        self.y.write(Unsigned(8, 0))
        yield
        while True:
            self.y.write((self.x.read() - 1).resized(8))
            yield


class TestLockstep:
    def test_detects_divergence(self):
        stim = [dict(x=i) for i in range(10)]
        inc = KernelStage(lambda c, r: Inc("i", c, r), ["y"])
        dec_rtl = synthesize(Dec("d", Clock("clk", 10 * NS),
                                 Signal("rst", bit(), Bit(1))))
        inc.sim.activate()
        report = lockstep([inc, RtlStage(dec_rtl, ["y"])], stim)
        assert not report.equivalent
        assert report.mismatches[0].cycle <= 1

    def test_mismatch_repr_shows_diff(self):
        stim = [dict(x=5)] * 3
        inc = KernelStage(lambda c, r: Inc("i", c, r), ["y"])
        dec_rtl = synthesize(Dec("d", Clock("clk", 10 * NS),
                                 Signal("rst", bit(), Bit(1))))
        inc.sim.activate()
        report = lockstep([inc, RtlStage(dec_rtl, ["y"])], stim)
        assert "y" in repr(report.mismatches[0])

    def test_max_mismatches_truncates(self):
        stim = [dict(x=i) for i in range(50)]
        inc = KernelStage(lambda c, r: Inc("i", c, r), ["y"])
        dec_rtl = synthesize(Dec("d", Clock("clk", 10 * NS),
                                 Signal("rst", bit(), Bit(1))))
        inc.sim.activate()
        report = lockstep([inc, RtlStage(dec_rtl, ["y"])], stim,
                          max_mismatches=3)
        assert len(report.mismatches) == 3

    def test_equivalent_report(self):
        stim = [dict(x=i % 11) for i in range(30)]
        report = check_all_stages(lambda c, r: Inc("i", c, r), stim, ["y"])
        assert report.equivalent and report.cycles == 30
        assert "OK" in repr(report)


class TestFlows:
    def test_flow_result_fields(self):
        result = run_osss_flow(
            CamSync("s", Clock("clk", 10 * NS),
                    Signal("rst", bit(), Bit(1))), name="osss-sync"
        )
        assert result.area > 0 and result.fmax_mhz > 0
        summary = result.summary()
        assert summary["flow"] == "osss-sync" and summary["flops"] > 0

    def test_flow_comparison_table(self):
        from repro.baseline import sync_rtl

        osss = run_osss_flow(CamSync("s", Clock("clk", 10 * NS),
                                     Signal("rst", bit(), Bit(1))))
        vhdl = run_rtl(sync_rtl(), "vhdl")
        table = flow_comparison(osss, vhdl)
        assert "osss / vhdl" in table and "area_ge" in table

    def test_module_inventory_lists_total(self):
        osss = run_osss_flow(CamSync("s", Clock("clk", 10 * NS),
                                     Signal("rst", bit(), Bit(1))))
        assert "TOTAL" in module_inventory(osss)

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4 and len(set(map(len, lines))) == 1


class TestEffortMetrics:
    def test_three_styles_ordered(self):
        metrics = i2c_effort_comparison()
        assert metrics["osss"].effort_score \
            < metrics["systemc_procedural"].effort_score \
            < metrics["vhdl_rtl"].effort_score

    def test_fields_positive(self):
        metrics = i2c_effort_comparison()
        for record in metrics.values():
            data = record.as_dict()
            assert data["sloc"] > 0 and data["score"] > 0

    def test_rtl_style_counts_registers(self):
        metrics = i2c_effort_comparison()
        assert metrics["vhdl_rtl"].state_carriers >= 10
        assert metrics["osss"].state_carriers == 0


class TestSimulationRates:
    def test_speed_ordering(self, rng):
        stim = [dict(x=rng.randint(0, 255)) for _ in range(60)]
        rates = simulation_rates(lambda c, r: Inc("i", c, r), stim, ["y"],
                                 repeat=3)
        # On a tiny design the RTL/gate margin is noise-sensitive; the
        # robust invariant is that all three stages measured something and
        # the normalization is anchored at the gate level.  The full
        # ordering claim is exercised on real designs by bench_e7.
        assert all(sample.cycles_per_second > 0
                   for sample in rates.values())
        table = speedup_table(rates)
        assert table["gate"] == 1.0
        assert set(rates) == {"behavioral", "rtl", "gate"}
