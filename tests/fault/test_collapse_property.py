"""Collapse correctness property: the report is byte-identical.

For seeded random circuits, the same fault list runs three ways — the
plain uncollapsed oracle, ``collapse=True`` sequentially, and
``collapse=True`` sharded over two worker processes — and all three
serialized reports must agree byte-for-byte.  This is the end-to-end
guarantee that equivalence canonicalization and quiescence pruning are
classification-preserving on arbitrary structure, not just the ExpoCU.
"""

import functools
import random

import pytest

from repro.fault import (
    CampaignConfig,
    Fault,
    GateFaultInjector,
    FaultableGateSimulator,
    generate_fault_list,
    run_campaign,
    stuck_at_universe,
)
from tests.netlist.test_sim_oracle import random_circuit

CYCLES = 20


def _collapse_circuit(seed: int):
    """A random netlist plus the unused reset input campaigns drive."""
    circuit = random_circuit(seed, n_inputs=4, n_cells=40, n_flops=6,
                             n_outputs=8)
    reset = circuit.new_net("reset")
    circuit.mark_input("reset", [reset])
    circuit.validate()
    return circuit


def _make_injector(seed: int):
    """Module-level (hence picklable) factory for worker processes."""
    return GateFaultInjector(
        FaultableGateSimulator(_collapse_circuit(seed), backend="compiled")
    )


def _stimulus(seed: int) -> list[dict]:
    rng = random.Random(seed + 1)
    return [{"x": rng.randrange(16)} for _ in range(CYCLES)]


def _config() -> CampaignConfig:
    return CampaignConfig(reset_name="reset", reset_cycles=1,
                          observed=None, done_signal=None)


def _fault_list(injector, seed: int) -> list[Fault]:
    # The classical single-cycle universe (where collapsing bites) plus
    # seeded multi-cycle faults of every kind, including the seu/flip
    # kinds collapsing must pass through untouched.
    return (stuck_at_universe(injector, cycle=1)
            + generate_fault_list(injector, 40, CYCLES, seed))


@pytest.mark.parametrize("seed", (0, 3, 11))
def test_collapsed_report_is_byte_identical(seed):
    factory = functools.partial(_make_injector, seed)
    stimulus = _stimulus(seed)
    config = _config()
    faults = _fault_list(factory(), seed)

    full = run_campaign(factory(), stimulus, faults, config, seed=seed)
    collapsed = run_campaign(factory(), stimulus, faults, config,
                             seed=seed, collapse=True)
    sharded = run_campaign(None, stimulus, faults, config, seed=seed,
                           collapse=True, jobs=2,
                           injector_factory=factory)

    assert full.golden_selfcheck == "masked"
    assert collapsed.to_json() == full.to_json()
    assert sharded.to_json() == full.to_json()

    stats = collapsed.collapse
    assert stats is not None and full.collapse is None
    assert stats["simulated"] < stats["unique"] <= stats["faults"]
    assert stats["equivalence_merged"] > 0
    assert stats["simulated"] == (stats["unique"]
                                  - stats["equivalence_merged"]
                                  - stats["quiescence_pruned"])


def test_net_scores_rank_sdc_targets():
    seed = 3
    factory = functools.partial(_make_injector, seed)
    result = run_campaign(factory(), _stimulus(seed),
                          _fault_list(factory(), seed), _config(),
                          seed=seed, collapse=True)
    assert result.net_scores, "gate-flow collapse runs attach net scores"
    ranking = result.sdc_ranking()
    sdc_targets = {r.fault.target for r in result.records
                   if r.outcome == "sdc"}
    assert {name for name, _ in ranking} <= sdc_targets
    scores = [score for _, score in ranking]
    assert scores == sorted(scores)


def test_uncollapsed_run_attaches_no_extras():
    seed = 0
    factory = functools.partial(_make_injector, seed)
    result = run_campaign(factory(), _stimulus(seed),
                          _fault_list(factory(), seed)[:10], _config(),
                          seed=seed)
    assert result.collapse is None
    assert result.net_scores is None
    assert result.sdc_ranking() == []
