"""The ``repro inject`` command: formats, outputs, determinism."""

import json

import pytest

from repro.cli import main


class TestFormats:
    def test_text_format_prints_summary(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # keep the default report out of repo
        code = main(["inject", "--flow", "rtl", "--faults", "0",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "golden run: selfcheck=masked" in out
        assert "outcome" in out or "masked" in out

    def test_json_format_parses(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(["inject", "--flow", "rtl", "--faults", "0",
                     "--seed", "1", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-fault-campaign/v1"
        assert payload["flow"] == "rtl"
        assert payload["golden"]["selfcheck"] == "masked"
        assert payload["golden"]["done"] is True
        assert all(n == 0 for n in payload["outcomes"].values())
        assert payload["faults"] == []

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        code = main(["inject", "--flow", "rtl", "--faults", "0",
                     "--seed", "1", "--output", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-fault-campaign/v1"

    def test_default_report_lands_in_benchmarks_results(
            self, tmp_path, monkeypatch, capsys):
        (tmp_path / "benchmarks" / "results").mkdir(parents=True)
        monkeypatch.chdir(tmp_path)
        assert main(["inject", "--flow", "rtl", "--faults", "0",
                     "--seed", "1"]) == 0
        report = (tmp_path / "benchmarks" / "results"
                  / "fault_rtl_none_seed1.json")
        assert report.exists()
        assert json.loads(report.read_text())["seed"] == 1


class TestUsageErrors:
    def test_rtl_flow_rejects_hardening(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError, match="netlist"):
            main(["inject", "--flow", "rtl", "--hardening", "tmr",
                  "--faults", "0"])

    def test_unknown_hardening_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["inject", "--hardening", "ecc"])

    def test_rtl_flow_rejects_compiled_backend(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError, match="netlist"):
            main(["inject", "--flow", "rtl", "--backend", "compiled",
                  "--faults", "0"])

    def test_unknown_backend_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["inject", "--backend", "turbo"])


@pytest.mark.slow
class TestParallelJobs:
    def test_jobs_report_byte_identical(self, tmp_path, capsys):
        paths = [tmp_path / "seq.json", tmp_path / "par.json"]
        for path, jobs in zip(paths, ("1", "2")):
            code = main(["inject", "--flow", "rtl", "--faults", "6",
                         "--seed", "1", "--jobs", jobs,
                         "--output", str(path)])
            assert code == 0
        assert paths[0].read_text() == paths[1].read_text()

    def test_compiled_backend_report_tagged(self, tmp_path, monkeypatch,
                                            capsys):
        (tmp_path / "benchmarks" / "results").mkdir(parents=True)
        monkeypatch.chdir(tmp_path)
        assert main(["inject", "--flow", "netlist", "--faults", "2",
                     "--seed", "1", "--backend", "compiled"]) == 0
        report = (tmp_path / "benchmarks" / "results"
                  / "fault_netlist_none_seed1_compiled.json")
        assert report.exists()
        payload = json.loads(report.read_text())
        assert payload["flow"] == "netlist"
        assert sum(payload["outcomes"].values()) == 2


@pytest.mark.slow
class TestCollapse:
    def test_collapse_report_byte_identical(self, tmp_path, capsys):
        paths = [tmp_path / "plain.json", tmp_path / "collapsed.json"]
        for path, extra in zip(paths, ([], ["--collapse"])):
            code = main(["inject", "--flow", "netlist", "--faults", "8",
                         "--seed", "1", "--backend", "compiled",
                         "--output", str(path)] + extra)
            assert code == 0
        assert paths[0].read_text() == paths[1].read_text()
        assert "collapse: simulated" in capsys.readouterr().out


class TestResilienceCli:
    def test_quarantined_faults_exit_code_3(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.chdir(tmp_path)
        # A 100µs deadline no Python-level replay can meet: every fault
        # quarantines, which must surface as the distinct exit code.
        code = main(["inject", "--flow", "rtl", "--faults", "2",
                     "--seed", "1", "--fault-timeout", "0.0001",
                     "--max-retries", "0"])
        out = capsys.readouterr().out
        assert code == 3
        assert "quarantined:" in out
        assert "resilience:" in out

    @pytest.mark.slow
    def test_journal_resume_round_trip(self, tmp_path, capsys):
        journal = tmp_path / "campaign.jsonl"
        first, resumed = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["inject", "--flow", "rtl", "--faults", "4",
                     "--seed", "1", "--journal", str(journal),
                     "--output", str(first)]) == 0
        assert main(["inject", "--flow", "rtl", "--faults", "4",
                     "--seed", "1", "--journal", str(journal), "--resume",
                     "--output", str(resumed)]) == 0
        assert first.read_text() == resumed.read_text()
        assert "journal_hits=" in capsys.readouterr().out

    @pytest.mark.slow
    def test_resume_derives_journal_from_cache_dir(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        report = tmp_path / "report.json"
        assert main(["inject", "--flow", "rtl", "--faults", "2",
                     "--seed", "1", "--resume", "--cache-dir", str(cache),
                     "--output", str(report)]) == 0
        assert (cache / "journals" / "fault_rtl_none_seed1.jsonl").exists()


@pytest.mark.slow
class TestDeterminism:
    def test_same_seed_same_report(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code = main(["inject", "--flow", "rtl", "--faults", "5",
                         "--seed", "1", "--format", "json",
                         "--output", str(path)])
            assert code == 0
        first, second = (p.read_text() for p in paths)
        assert first == second
        payload = json.loads(first)
        assert len(payload["faults"]) == 5
        assert sum(payload["outcomes"].values()) == 5
