"""Campaign resilience: chaos kills, deadlines, SIGKILL + resume."""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.exec import CHAOS_ENV, SupervisedPool
from repro.fault import (
    CampaignError,
    FaultableGateSimulator,
    GateFaultInjector,
    OUTCOMES,
    RtlFaultInjector,
    generate_fault_list,
    run_campaign,
)
from repro.rtl import RtlSimulator
from tests.fault.test_campaign import config, latching_module, stimulus

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _injector():
    return RtlFaultInjector(RtlSimulator(latching_module()))


class SlowStepInjector(RtlFaultInjector):
    """Injector burning wall-clock per cycle: deadline/kill test dilator."""

    delay = 0.05

    def step(self, entry):
        time.sleep(self.delay)
        return super().step(entry)


def _slow_injector():
    return SlowStepInjector(RtlSimulator(latching_module()))


class SelectivelySlowInjector(RtlFaultInjector):
    """Crawls only while replaying faults on one target.

    Deadline tests want a *partial* quarantine — some faults timed out,
    the rest classified normally — to pin the summary-rate denominator.
    """

    slow_target = "busy"
    delay = 0.05
    _crawl = False

    def inject(self, fault):
        self._crawl = fault.target == self.slow_target
        super().inject(fault)

    def clear_faults(self):
        self._crawl = False
        super().clear_faults()

    def step(self, entry):
        if self._crawl:
            time.sleep(self.delay)
        return super().step(entry)


def _selectively_slow_injector():
    return SelectivelySlowInjector(RtlSimulator(latching_module()))


def _faults(n=8):
    return generate_fault_list(_injector(), n, 12, seed=4)


def _oracle(faults):
    return run_campaign(_injector(), stimulus(), faults, config(),
                        design="latcher", seed=4)


class TestChaos:
    def test_chaos_kills_keep_report_byte_identical(self, monkeypatch):
        faults = _faults(12)
        oracle = _oracle(faults)
        monkeypatch.setenv(CHAOS_ENV, "0.3")
        chaotic = run_campaign(None, stimulus(), faults, config(),
                               design="latcher", seed=4, jobs=3,
                               injector_factory=_injector)
        assert chaotic.to_json() == oracle.to_json()
        assert multiprocessing.active_children() == []


class TestInterrupt:
    def test_keyboard_interrupt_leaves_no_children(self, monkeypatch):
        """Regression: Ctrl-C used to orphan pool workers as zombies."""
        def interrupting_poll(self, block):
            raise KeyboardInterrupt

        monkeypatch.setattr(SupervisedPool, "_poll", interrupting_poll)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(None, stimulus(), _faults(), config(),
                         design="latcher", seed=4, jobs=2,
                         injector_factory=_injector)
        assert multiprocessing.active_children() == []


class TestStartMethods:
    @pytest.mark.slow
    def test_spawn_smoke_byte_identical(self):
        faults = _faults(6)
        spawned = run_campaign(None, stimulus(), faults, config(),
                               design="latcher", seed=4, jobs=2,
                               injector_factory=_injector,
                               start_method="spawn")
        assert spawned.to_json() == _oracle(faults).to_json()

    def test_unpicklable_factory_is_a_clear_error(self):
        with pytest.raises(CampaignError, match="pickle"):
            run_campaign(None, stimulus(), _faults(), config(),
                         design="latcher", seed=4, jobs=2,
                         injector_factory=lambda: _injector(),
                         start_method="spawn")


class TestDeadlines:
    def test_sequential_timeout_quarantines(self):
        faults = _faults(2)
        result = run_campaign(_slow_injector(), stimulus(), faults,
                              config(), design="latcher", seed=4,
                              fault_timeout=0.05, max_retries=1)
        assert result.records == []
        assert len(result.errors) == 2
        assert all(err["error"] == "timed_out" for err in result.errors)
        assert result.errors[0]["fault"] == faults[0].as_dict()
        assert result.exec_stats["quarantined"] == 2
        assert result.exec_stats["timeouts"] == 4  # one retry per fault
        assert result.exec_stats["timeout_retries"] == 2
        doc = result.as_dict()
        assert [err["error"] for err in doc["errors"]] == ["timed_out"] * 2
        assert doc["injected"] == 0

    def test_parallel_timeout_quarantines(self):
        faults = _faults(2)
        result = run_campaign(None, stimulus(), faults, config(),
                              design="latcher", seed=4, jobs=2,
                              injector_factory=_slow_injector,
                              fault_timeout=0.2, max_retries=0)
        assert result.records == []
        assert len(result.errors) == 2
        assert result.exec_stats["quarantined"] == 2
        assert multiprocessing.active_children() == []

    def test_clean_run_has_no_errors_section(self):
        result = _oracle(_faults(2))
        assert result.errors == []
        assert "errors" not in result.as_dict()
        assert result.exec_stats["quarantined"] == 0

    def test_all_quarantined_rates_are_zero(self):
        result = run_campaign(_slow_injector(), stimulus(), _faults(2),
                              config(), design="latcher", seed=4,
                              fault_timeout=0.05, max_retries=0)
        assert result.records == []
        assert result.outcome_rates() == {k: 0.0 for k in OUTCOMES}

    def test_partial_quarantine_rates_use_simulated_denominator(self):
        """Regression: rates divided by the full fault-list length.

        Quarantined faults were never classified, so counting them in
        the denominator understated every outcome share.  Rates must be
        taken over ``len(records)``, and the totals must reconcile:
        classified + quarantined == the injected fault list.
        """
        faults = list(dict.fromkeys(_faults(12)))  # dedup: 1 record each
        result = run_campaign(_selectively_slow_injector(), stimulus(),
                              faults, config(), design="latcher", seed=4,
                              fault_timeout=0.05, max_retries=0)
        assert result.errors, "no fault hit the deadline"
        assert result.records, "every fault hit the deadline"
        assert len(result.records) + len(result.errors) == len(faults)
        assert all(err["fault"]["target"] == "busy"
                   for err in result.errors)
        rates = result.outcome_rates()
        counts = result.outcomes
        simulated = len(result.records)
        assert rates == {k: counts[k] / simulated for k in OUTCOMES}
        assert sum(rates.values()) == pytest.approx(1.0)


RESUME_SCRIPT = textwrap.dedent("""\
    import sys
    from tests.fault.test_campaign import config, stimulus
    from tests.fault.test_resilience import SlowStepInjector, _faults, \\
        _slow_injector
    from repro.fault import run_campaign

    SlowStepInjector.delay = 0.05
    run_campaign(_slow_injector(), stimulus(), _faults(), config(),
                 design="latcher", seed=4, journal=sys.argv[1])
""")


class TestJournalResume:
    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = (f"{REPO_ROOT}/src:{REPO_ROOT}:"
                             + env.get("PYTHONPATH", ""))
        return env

    def test_sigkill_midflight_then_resume_byte_identical(self, tmp_path):
        faults = _faults()
        oracle = _oracle(faults)
        total = oracle.exec_stats["simulated"]
        journal = tmp_path / "campaign.jsonl"
        script = tmp_path / "victim.py"
        script.write_text(RESUME_SCRIPT)
        victim = subprocess.Popen(
            [sys.executable, str(script), str(journal)],
            cwd=REPO_ROOT, env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for two durable records (header + meta + 2), then
            # SIGKILL: no atexit, no cleanup, exactly like the OOM killer.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if (journal.exists()
                        and len(journal.read_bytes().splitlines()) >= 4):
                    break
                if victim.poll() is not None:
                    pytest.fail("victim campaign finished before the kill")
                time.sleep(0.01)
            else:
                pytest.fail("victim campaign never journaled two records")
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.wait()

        resumed = run_campaign(_injector(), stimulus(), faults, config(),
                               design="latcher", seed=4,
                               journal=str(journal), resume=True)
        assert resumed.to_json() == oracle.to_json()
        hits = resumed.exec_stats["journal_hits"]
        assert hits >= 2  # the killed run's work was not thrown away
        assert resumed.exec_stats["simulated"] == total - hits

    def test_full_resume_simulates_nothing(self, tmp_path):
        faults = _faults(4)
        journal = tmp_path / "campaign.jsonl"
        first = run_campaign(_injector(), stimulus(), faults, config(),
                             design="latcher", seed=4, journal=str(journal))
        resumed = run_campaign(None, stimulus(), faults, config(),
                               design="latcher", seed=4,
                               journal=str(journal), resume=True)
        assert resumed.to_json() == first.to_json()
        assert resumed.exec_stats["simulated"] == 0
        assert (resumed.exec_stats["journal_hits"]
                == first.exec_stats["simulated"])

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="journal"):
            run_campaign(_injector(), stimulus(), [], config(), resume=True)

    def test_resume_with_stale_journal_restarts(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        faults = _faults(3)
        run_campaign(_injector(), stimulus(), faults, config(),
                     design="latcher", seed=4, journal=str(journal))
        # A different campaign (other seed → other fault list) must not
        # trust the stale journal: fingerprint mismatch → fresh start.
        other = generate_fault_list(_injector(), 3, 12, seed=9)
        result = run_campaign(_injector(), stimulus(), other, config(),
                              design="latcher", seed=9,
                              journal=str(journal), resume=True)
        assert result.exec_stats["journal_hits"] == 0
        assert result.exec_stats["simulated"] > 0


class SlowGateInjector(GateFaultInjector):
    """Gate-level wall-clock dilator for the collapse-resume kill test."""

    delay = 0.01

    def step(self, entry):
        time.sleep(self.delay)
        return super().step(entry)


def _collapse_circuit_injector(slow=False, seed=0):
    from tests.fault.test_collapse_property import _collapse_circuit

    cls = SlowGateInjector if slow else GateFaultInjector
    return cls(FaultableGateSimulator(_collapse_circuit(seed),
                                      backend="compiled"))


def _collapse_faults(seed=0):
    from tests.fault.test_collapse_property import _fault_list

    return _fault_list(_collapse_circuit_injector(seed=seed), seed)


COLLAPSE_RESUME_SCRIPT = textwrap.dedent("""\
    import sys
    from tests.fault.test_resilience import (SlowGateInjector,
        _collapse_circuit_injector, _collapse_faults)
    from tests.fault.test_collapse_property import _config, _stimulus
    from repro.fault import run_campaign

    SlowGateInjector.delay = 0.01
    run_campaign(_collapse_circuit_injector(slow=True), _stimulus(0),
                 _collapse_faults(), _config(), seed=0, collapse=True,
                 journal=sys.argv[1])
""")


class TestCollapseJournalResume:
    """Regression: journal keys vs collapse-canonicalized fault ids.

    A collapsed campaign simulates equivalence-class representatives
    but the journal serves *faults*; resuming used to miss every entry
    because representative keys and expanded fault keys never matched.
    The fingerprint also deliberately excludes the collapse flag, so
    one journal serves both modes — in either direction.
    """

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = (f"{REPO_ROOT}/src:{REPO_ROOT}:"
                             + env.get("PYTHONPATH", ""))
        return env

    def _run(self, faults, **kwargs):
        from tests.fault.test_collapse_property import _config, _stimulus

        return run_campaign(_collapse_circuit_injector(), _stimulus(0),
                            faults, _config(), seed=0, **kwargs)

    def test_sigkill_then_resume_collapse_byte_identical(self, tmp_path):
        faults = _collapse_faults()
        oracle = self._run(faults)
        journal = tmp_path / "campaign.jsonl"
        script = tmp_path / "victim.py"
        script.write_text(COLLAPSE_RESUME_SCRIPT)
        victim = subprocess.Popen(
            [sys.executable, str(script), str(journal)],
            cwd=REPO_ROOT, env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for two durable records (header + meta + 2), then
            # SIGKILL mid-collapsed-campaign: the journal now holds
            # records keyed by class representatives only.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if (journal.exists()
                        and len(journal.read_bytes().splitlines()) >= 4):
                    break
                if victim.poll() is not None:
                    pytest.fail("victim campaign finished before the kill")
                time.sleep(0.01)
            else:
                pytest.fail("victim campaign never journaled two records")
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.wait()

        resumed = self._run(faults, collapse=True, journal=str(journal),
                            resume=True)
        assert resumed.to_json() == oracle.to_json()
        assert resumed.exec_stats["journal_hits"] >= 2

    def test_plain_journal_serves_collapsed_resume(self, tmp_path):
        faults = _collapse_faults()
        journal = tmp_path / "campaign.jsonl"
        plain = self._run(faults, journal=str(journal))
        collapsed = self._run(faults, collapse=True, journal=str(journal),
                              resume=True)
        assert collapsed.to_json() == plain.to_json()
        assert collapsed.exec_stats["simulated"] == 0
        assert collapsed.exec_stats["journal_hits"] > 0

    def test_collapsed_journal_serves_plain_resume(self, tmp_path):
        faults = _collapse_faults()
        journal = tmp_path / "campaign.jsonl"
        collapsed = self._run(faults, collapse=True, journal=str(journal))
        plain = self._run(faults, journal=str(journal), resume=True)
        assert plain.to_json() == collapsed.to_json()
        assert plain.exec_stats["simulated"] == 0
