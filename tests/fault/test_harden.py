"""Hardening primitives: voters, TMR, parity — and their payoff."""

import pytest

from repro.fault import (
    FaultableGateSimulator,
    add_parity_guards,
    harden_circuit,
    majority_voter,
    tmr_harden,
)
from repro.netlist import Circuit, GateSimulator, map_module, optimize
from repro.netlist.circuit import NetlistError
from repro.rtl import Read, RtlBuilder
from repro.types.spec import unsigned


def register_circuit(width=4):
    """A ``width``-bit register loading ``x`` every cycle."""
    b = RtlBuilder("reg")
    x = b.input("x", unsigned(width))
    r = b.register("r", unsigned(width))
    b.next(r, x)
    b.output("y", Read(r))
    circuit = map_module(b.build())
    optimize(circuit)
    return circuit


class TestMajorityVoter:
    @pytest.mark.parametrize("a,b,c", [(a, b, c) for a in (0, 1)
                                       for b in (0, 1) for c in (0, 1)])
    def test_truth_table(self, a, b, c):
        circuit = Circuit("vote")
        ins = [circuit.new_net(n) for n in "abc"]
        out = circuit.new_net("maj")
        majority_voter(circuit, *ins, out, "v")
        for k, net in enumerate(ins):
            circuit.mark_input("abc"[k], [net])
        circuit.mark_output("maj", [out])
        sim = GateSimulator(circuit)
        sim.step(a=a, b=b, c=c)
        assert sim.peek_outputs()["maj"] == (a + b + c >= 2)

    def test_rejects_driven_output(self):
        circuit = register_circuit()
        driven = circuit.output_buses["y"][0]
        nets = [circuit.new_net(f"n{k}") for k in range(3)]
        with pytest.raises(NetlistError):
            majority_voter(circuit, *nets, driven, "v")


class TestTmr:
    def test_triplicates_flops(self):
        circuit = register_circuit(4)
        before = len(circuit.flops())
        hardened = tmr_harden(circuit)
        assert hardened == before
        assert len(circuit.flops()) == 3 * before
        circuit.validate()

    def test_fault_free_behaviour_preserved(self):
        plain = GateSimulator(register_circuit(4))
        tmr = GateSimulator(harden_circuit(register_circuit(4), "tmr"))
        plain.step(reset=1)
        tmr.step(reset=1)
        for value in (5, 9, 0, 15, 3):
            plain.step(reset=0, x=value)
            tmr.step(reset=0, x=value)
            assert plain.peek_outputs()["y"] == tmr.peek_outputs()["y"]

    def test_single_copy_seu_is_voted_out(self):
        circuit = harden_circuit(register_circuit(4), "tmr")
        sim = FaultableGateSimulator(circuit)
        sim.step(reset=1)
        sim.step(reset=0, x=5)
        copy_q = next(f.pins["q"] for f in circuit.flops()
                      if "__tmr_qb" in f.pins["q"].name)
        sim.flip_net(copy_q)
        assert sim.peek_outputs()["y"] == 5  # voter masks the upset

    def test_rejects_non_dff(self):
        circuit = register_circuit()
        comb = circuit.comb_cells()[0]
        with pytest.raises(NetlistError):
            tmr_harden(circuit, [comb])


class TestParity:
    def test_adds_error_output_and_flop_per_group(self):
        circuit = register_circuit(4)
        flops = len(circuit.flops())
        groups = add_parity_guards(circuit)
        assert groups == 1  # one register stem: reg/r[k]
        assert len(circuit.flops()) == flops + groups
        assert "parity_err" in circuit.output_buses
        circuit.validate()

    def test_quiet_without_faults(self):
        circuit = register_circuit(4)
        add_parity_guards(circuit)
        sim = GateSimulator(circuit)
        sim.step(reset=1)
        for value in (5, 9, 0, 15):
            sim.step(reset=0, x=value)
            assert sim.peek_outputs()["parity_err"] == 0

    def test_state_upset_raises_error_flag(self):
        circuit = register_circuit(4)
        add_parity_guards(circuit)
        sim = FaultableGateSimulator(circuit)
        sim.step(reset=1)
        sim.step(reset=0, x=5)
        state_q = next(f.pins["q"] for f in circuit.flops()
                       if "__par" not in f.name)
        sim.flip_net(state_q)
        assert sim.peek_outputs()["parity_err"] == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(NetlistError):
            harden_circuit(register_circuit(), "ecc")


@pytest.mark.slow
class TestExpoCuHardeningPayoff:
    """Acceptance: hardened ExpoCU has strictly fewer sdc+hang outcomes."""

    def test_tmr_strictly_reduces_sdc_and_hang(self):
        from repro.fault import expocu_campaign

        plain = expocu_campaign(flow="netlist", faults=12, seed=1,
                                hardening="none")
        tmr = expocu_campaign(flow="netlist", faults=12, seed=1,
                              hardening="tmr")
        assert plain.golden_selfcheck == tmr.golden_selfcheck == "masked"
        assert plain.golden_done and tmr.golden_done
        plain_bad = plain.outcomes["sdc"] + plain.outcomes["hang"]
        tmr_bad = tmr.outcomes["sdc"] + tmr.outcomes["hang"]
        assert plain_bad > 0, plain.outcomes
        assert tmr_bad < plain_bad, (plain.outcomes, tmr.outcomes)
