"""Injector-level tests: SEU flips, stuck-at forcing, snapshots."""

import pytest

from repro.fault.campaign import Fault
from repro.fault.inject import (
    FaultInjectionError,
    FaultableGateSimulator,
    GateFaultInjector,
    RtlFaultInjector,
)
from repro.netlist import map_module, optimize
from repro.rtl import Read, RtlBuilder, RtlSimulator
from repro.types.spec import unsigned


def pipeline_module(width=4):
    b = RtlBuilder("pipe")
    x = b.input("x", unsigned(width))
    s1 = b.register("s1", unsigned(width))
    s2 = b.register("s2", unsigned(width))
    b.next(s1, x)
    b.next(s2, Read(s1))
    b.output("y", Read(s2))
    return b.build()


def pipeline_circuit(width=4):
    circuit = map_module(pipeline_module(width))
    optimize(circuit)
    return circuit


class TestRtlInjector:
    def test_flip_register_changes_state(self):
        sim = RtlSimulator(pipeline_module())
        injector = RtlFaultInjector(sim)
        sim.step(x=5)
        reg = sim.find_register("s1")
        before = sim.register_value(reg)
        injector.flip_register("s1", 1)
        assert sim.register_value(reg) == before ^ 2

    def test_seu_corrupts_then_flushes(self):
        sim = RtlSimulator(pipeline_module())
        injector = RtlFaultInjector(sim)
        sim.step(x=0)
        sim.step(x=0)
        injector.inject(Fault("seu", "s2", 0, 0))
        assert sim.peek_outputs()["y"] == 1  # upset visible immediately
        sim.step(x=0)
        assert sim.peek_outputs()["y"] == 0  # clean stream overwrites it

    def test_flip_rejects_bad_targets(self):
        injector = RtlFaultInjector(RtlSimulator(pipeline_module()))
        with pytest.raises(FaultInjectionError):
            injector.flip_register("nope", 0)
        with pytest.raises(FaultInjectionError):
            injector.flip_register("s1", 99)

    def test_rtl_rejects_net_faults(self):
        injector = RtlFaultInjector(RtlSimulator(pipeline_module()))
        with pytest.raises(FaultInjectionError):
            injector.inject(Fault("sa0", "s1", 0, 1))

    def test_snapshot_restore_replays_identically(self):
        sim = RtlSimulator(pipeline_module())
        injector = RtlFaultInjector(sim)
        sim.step(x=9)
        snap = injector.snapshot()
        sim.step(x=3)
        injector.restore(snap)
        replay = [sim.step(x=3), sim.step(x=7)]
        injector.restore(snap)
        assert [sim.step(x=3), sim.step(x=7)] == replay

    def test_seu_targets_deterministic(self):
        module = pipeline_module()
        sim = RtlSimulator(module)
        a = RtlFaultInjector(sim).seu_targets()
        b = RtlFaultInjector(sim).seu_targets()
        assert a == b
        assert ("s1", 4) in a and ("s2", 4) in a

    def test_poke_register_masks_to_width(self):
        sim = RtlSimulator(pipeline_module())
        reg = sim.find_register("s1")
        sim.poke_register(reg, 0x1F5)
        assert sim.register_value(reg) == 0x5


class TestGateInjector:
    def test_stuck_at_forces_and_releases(self):
        sim = FaultableGateSimulator(pipeline_circuit())
        sim.step(reset=1)
        net = sim.circuit.output_buses["y"][0]
        sim.force_net(net, 1)
        for _ in range(3):
            sim.step(reset=0, x=0)
        assert sim.peek_outputs()["y"] & 1 == 1
        sim.release_all()
        for _ in range(3):
            sim.step(reset=0, x=0)
        assert sim.peek_outputs()["y"] == 0

    def test_seu_flip_visible_then_flushed(self):
        sim = FaultableGateSimulator(pipeline_circuit())
        injector = GateFaultInjector(sim)
        sim.step(reset=1)
        for _ in range(3):
            sim.step(reset=0, x=0)
        names = [name for name, _ in injector.seu_targets()]
        assert names
        before = list(sim._values)
        injector.inject(Fault("seu", names[0], 0, 0))
        assert sim._values != before  # state bit flipped and propagated
        for _ in range(3):
            sim.step(reset=0, x=0)
        assert sim.peek_outputs()["y"] == 0

    def test_snapshot_restore_clears_forcing(self):
        sim = FaultableGateSimulator(pipeline_circuit())
        injector = GateFaultInjector(sim)
        sim.step(reset=1)
        snap = injector.snapshot()
        net = sim.circuit.output_buses["y"][0]
        sim.force_net(net, 1)
        injector.restore(snap)
        for _ in range(3):
            sim.step(reset=0, x=0)
        assert sim.peek_outputs()["y"] == 0

    def test_matches_plain_simulator_when_fault_free(self):
        from repro.netlist import GateSimulator

        circuit_a = pipeline_circuit()
        reference = GateSimulator(circuit_a)
        faultable = FaultableGateSimulator(pipeline_circuit())
        reference.step(reset=1)
        faultable.step(reset=1)
        for value in (5, 9, 3, 7, 0, 15):
            reference.step(reset=0, x=value)
            faultable.step(reset=0, x=value)
            assert reference.peek_outputs() == faultable.peek_outputs()

    def test_unknown_net_rejected(self):
        injector = GateFaultInjector(
            FaultableGateSimulator(pipeline_circuit())
        )
        with pytest.raises(FaultInjectionError):
            injector.inject(Fault("sa1", "no-such-net", 0, 0))

    def test_requires_faultable_simulator(self):
        from repro.netlist import GateSimulator

        with pytest.raises(TypeError):
            GateFaultInjector(GateSimulator(pipeline_circuit()))
