"""Bit-parallel (PPSFP) campaign correctness: byte-identical reports.

The lane-packed ``backend="bitparallel"`` evaluator classifies up to 64
stuck-at faults per replay.  These tests pin its end-to-end guarantee on
seeded random circuits: however the campaign is run — sequentially,
collapsed, sharded over worker processes, or resumed from a journal —
the serialized report must be byte-for-byte the one the scalar compiled
oracle produces.  Alongside ride the boundary-condition regressions the
bit-parallel work flushed out: transients injected on the final
stimulus cycle and one-cycle fault lists.
"""

import functools
import random

import pytest

from repro.fault import (
    CampaignConfig,
    Fault,
    FaultableGateSimulator,
    GateFaultInjector,
    generate_fault_list,
    run_campaign,
    stuck_at_universe,
)
from repro.netlist import map_module, optimize
from tests.fault.test_campaign import latching_module
from tests.fault.test_collapse_property import (
    CYCLES,
    _collapse_circuit,
    _config,
    _stimulus,
)

BACKENDS = ("event", "compiled", "bitparallel")


def _make_injector(seed: int, backend: str = "bitparallel"):
    """Module-level (hence picklable) factory for worker processes."""
    return GateFaultInjector(
        FaultableGateSimulator(_collapse_circuit(seed), backend=backend)
    )


def _stuck_list(injector, seed: int) -> list[Fault]:
    # Stuck-at heavy so batches actually fill: the full single-cycle
    # universe plus seeded multi-cycle sa0/sa1 spread over the stimulus.
    return (stuck_at_universe(injector, cycle=1)
            + generate_fault_list(injector, 30, CYCLES, seed,
                                  kinds=("sa0", "sa1")))


def _mixed_list(injector, seed: int) -> list[Fault]:
    # All four gate kinds: seu and flip lanes must fall back to the
    # scalar classifier without perturbing the batched stuck-at lanes.
    return (stuck_at_universe(injector, cycle=1)
            + generate_fault_list(injector, 30, CYCLES, seed))


class TestBitparallelByteIdentity:
    @pytest.mark.parametrize("seed", (0, 3, 11))
    def test_matches_compiled_oracle(self, seed):
        faults = _stuck_list(_make_injector(seed), seed)
        oracle = run_campaign(_make_injector(seed, "compiled"),
                              _stimulus(seed), faults, _config(),
                              seed=seed)
        wide = run_campaign(_make_injector(seed), _stimulus(seed), faults,
                            _config(), seed=seed)
        assert wide.to_json() == oracle.to_json()
        assert wide.exec_stats["lane_batches"] > 0

    @pytest.mark.parametrize("seed", (0, 11))
    def test_mixed_kinds_fall_back_per_fault(self, seed):
        faults = _mixed_list(_make_injector(seed), seed)
        oracle = run_campaign(_make_injector(seed, "compiled"),
                              _stimulus(seed), faults, _config(),
                              seed=seed)
        wide = run_campaign(_make_injector(seed), _stimulus(seed), faults,
                            _config(), seed=seed)
        assert wide.to_json() == oracle.to_json()
        assert wide.exec_stats["lane_batches"] > 0  # sa0/sa1 still batch

    def test_collapse_and_jobs_compose(self):
        seed = 3
        factory = functools.partial(_make_injector, seed)
        faults = _stuck_list(factory(), seed)
        oracle = run_campaign(_make_injector(seed, "compiled"),
                              _stimulus(seed), faults, _config(),
                              seed=seed)
        collapsed = run_campaign(factory(), _stimulus(seed), faults,
                                 _config(), seed=seed, collapse=True)
        sharded = run_campaign(None, _stimulus(seed), faults, _config(),
                               seed=seed, jobs=2, injector_factory=factory)
        both = run_campaign(None, _stimulus(seed), faults, _config(),
                            seed=seed, jobs=2, collapse=True,
                            injector_factory=factory)
        assert collapsed.to_json() == oracle.to_json()
        assert sharded.to_json() == oracle.to_json()
        assert both.to_json() == oracle.to_json()
        assert collapsed.collapse["simulated"] < collapsed.collapse["unique"]

    def test_journal_resume_byte_identical(self, tmp_path):
        seed = 0
        faults = _stuck_list(_make_injector(seed), seed)
        oracle = run_campaign(_make_injector(seed, "compiled"),
                              _stimulus(seed), faults, _config(),
                              seed=seed)
        journal = tmp_path / "campaign.jsonl"
        first = run_campaign(_make_injector(seed), _stimulus(seed), faults,
                             _config(), seed=seed, journal=str(journal))
        resumed = run_campaign(_make_injector(seed), _stimulus(seed),
                               faults, _config(), seed=seed,
                               journal=str(journal), resume=True)
        assert first.to_json() == oracle.to_json()
        assert resumed.to_json() == oracle.to_json()
        assert resumed.exec_stats["simulated"] == 0
        assert (resumed.exec_stats["journal_hits"]
                == first.exec_stats["simulated"])


def _gate_latcher(backend: str) -> GateFaultInjector:
    circuit = map_module(latching_module())
    optimize(circuit)
    return GateFaultInjector(FaultableGateSimulator(circuit,
                                                    backend=backend))


class TestFinalCycleTransient:
    """Regression: a flip on the last stimulus cycle is one glitch.

    The glitch is clamped through exactly one step — the final stimulus
    step — and healed before the drain, under every backend.  The event
    engine used to let it persist into the drain (a transient acting
    stuck), while a compiled settle healed it before anything sampled
    it (the fault silently dropped), so the same fault classified
    differently per backend.
    """

    CFG = dict(reset_name="reset", done_signal="busy", done_value=0,
               drain_budget=4, idle_input=dict(x=0, go=0, clear=0))

    def _stim(self):
        stim = [dict(x=1, go=1, clear=0)] * 6
        stim += [dict(x=0, go=0, clear=1)]
        stim += [dict(x=0, go=0, clear=0)] * 2
        return stim

    def test_backends_agree_and_glitch_is_sampled(self):
        stim = self._stim()
        last = len(stim) - 1
        targets = _gate_latcher("event").net_targets()
        faults = [Fault("flip", target, 0, last) for target in targets]
        reports = {}
        for backend in BACKENDS:
            result = run_campaign(_gate_latcher(backend), stim, faults,
                                  CampaignConfig(**self.CFG), seed=0)
            reports[backend] = result.to_json()
            # The glitch lands on the very cycle the flops sample, so
            # at least one flip must perturb state or outputs — a
            # backend that heals it pre-sample reports all-masked.
            # (A flip feeding busy's next-state CAN legitimately hang:
            # the corrupted latch outlives the one-cycle glitch.)
            assert any(r.outcome != "masked" for r in result.records)
        assert reports["event"] == reports["compiled"]
        assert reports["compiled"] == reports["bitparallel"]

    def test_mid_run_transients_also_agree(self):
        stim = self._stim()
        targets = _gate_latcher("event").net_targets()
        rng = random.Random(7)
        faults = [Fault("flip", target, 0, rng.randrange(1, len(stim)))
                  for target in targets]
        reports = [run_campaign(_gate_latcher(backend), stim, faults,
                                CampaignConfig(**self.CFG),
                                seed=0).to_json()
                   for backend in BACKENDS]
        assert reports[0] == reports[1] == reports[2]


class TestOneCycleStimulus:
    """Regression: ``generate_fault_list`` with ``cycles=1``.

    ``randrange(1, 1)`` used to raise; the boundary now injects at
    cycle 0, which a one-entry stimulus can actually replay.
    """

    def test_cycles_one_injects_at_zero(self):
        injector = _make_injector(0)
        faults = generate_fault_list(injector, 8, 1, seed=2)
        assert faults and all(fault.cycle == 0 for fault in faults)

    def test_one_cycle_campaign_runs(self):
        seed = 0
        faults = generate_fault_list(_make_injector(seed), 6, 1, seed=2,
                                     kinds=("sa0", "sa1"))
        stim = _stimulus(seed)[:1]
        oracle = run_campaign(_make_injector(seed, "compiled"), stim,
                              faults, _config(), seed=seed)
        wide = run_campaign(_make_injector(seed), stim, faults, _config(),
                            seed=seed)
        assert wide.to_json() == oracle.to_json()
        assert len(oracle.records) == 6
