"""Campaign engine: fault lists, classification, determinism, reports."""

import json

import pytest

from repro.fault import (
    CampaignConfig,
    Fault,
    FaultableGateSimulator,
    GateFaultInjector,
    OUTCOMES,
    RtlFaultInjector,
    generate_fault_list,
    run_campaign,
)
from repro.netlist import map_module, optimize
from repro.rtl import Read, RtlBuilder, RtlSimulator, mux
from repro.types.spec import bit, unsigned


def latching_module():
    """4-bit accumulator with a busy flag: rich enough for all outcomes.

    ``acc`` accumulates ``x`` while ``go`` is high; ``busy`` is a
    set-dominant latch cleared only by ``clear`` — an SEU setting it
    with no clear in the stimulus tail is a *hang*.
    """
    b = RtlBuilder("latcher")
    x = b.input("x", unsigned(4))
    go = b.input("go", bit())
    clear = b.input("clear", bit())
    acc = b.register("acc", unsigned(4))
    busy = b.register("busy", bit())
    b.next(acc, mux(go, (Read(acc) + x).resized(4), Read(acc)))
    b.next(busy, mux(clear, 0, Read(busy) | go))
    b.output("y", Read(acc))
    b.output("busy", Read(busy))
    return b.build()


def make_injector():
    return RtlFaultInjector(RtlSimulator(latching_module()))


def stimulus():
    stim = [dict(x=1, go=1, clear=0)] * 8    # accumulate, busy latches
    stim += [dict(x=0, go=0, clear=1)]       # clear pulse
    stim += [dict(x=0, go=0, clear=0)] * 3   # quiet tail (no clear!)
    return stim


def config():
    return CampaignConfig(
        reset_name="reset",
        done_signal="busy",
        done_value=0,
        drain_budget=4,
        idle_input=dict(x=0, go=0, clear=0),
    )


class TestFaultListGeneration:
    def test_deterministic_per_seed(self):
        injector = make_injector()
        a = generate_fault_list(injector, 20, 10, seed=5)
        b = generate_fault_list(injector, 20, 10, seed=5)
        assert a == b
        assert generate_fault_list(injector, 20, 10, seed=6) != a

    def test_targets_and_cycles_in_range(self):
        injector = make_injector()
        names = {name for name, _ in injector.seu_targets()}
        for fault in generate_fault_list(injector, 50, 10, seed=1):
            assert fault.target in names
            assert 1 <= fault.cycle < 10
            assert fault.kind == "seu"

    def test_no_targets_errors(self):
        class Hollow:
            flow = "rtl"

            def seu_targets(self):
                return []

            def net_targets(self):
                return []

        with pytest.raises(ValueError):
            generate_fault_list(Hollow(), 3, 10, seed=1)


class TestClassification:
    def test_zero_faults_golden_only(self):
        result = run_campaign(make_injector(), stimulus(), [], config(),
                              design="latcher", seed=0)
        assert result.golden_selfcheck == "masked"
        assert result.golden_done
        assert result.outcomes == {k: 0 for k in OUTCOMES}

    def test_acc_seu_is_sdc(self):
        # Corrupting the accumulator mid-run changes y forever: sdc.
        fault = Fault("seu", "acc", 3, 4)
        result = run_campaign(make_injector(), stimulus(), [fault],
                              config(), seed=0)
        record = result.records[0]
        assert record.outcome == "sdc"
        assert record.first_divergence == 4

    def test_busy_seu_during_tail_is_hang(self):
        # Setting busy after the clear pulse leaves it latched: hang.
        fault = Fault("seu", "busy", 0, 10)
        result = run_campaign(make_injector(), stimulus(), [fault],
                              config(), seed=0)
        assert result.records[0].outcome == "hang"

    def test_busy_seu_before_clear_is_masked_for_busy(self):
        # busy flips at cycle 2 but the stimulus clears it at the end and
        # y never depends on busy — the upset is wiped: masked... except
        # busy itself is observed, so the divergence classifies as sdc.
        fault = Fault("seu", "busy", 0, 2)
        result = run_campaign(make_injector(), stimulus(), [fault],
                              config(), seed=0)
        assert result.records[0].outcome == "sdc"

    def test_every_fault_gets_exactly_one_outcome(self):
        injector = make_injector()
        faults = generate_fault_list(injector, 30, 12, seed=9)
        result = run_campaign(injector, stimulus(), faults, config(), seed=9)
        assert len(result.records) == 30
        assert all(r.outcome in OUTCOMES for r in result.records)
        assert sum(result.outcomes.values()) == 30

    def test_fault_cycle_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(make_injector(), stimulus(),
                         [Fault("seu", "acc", 0, 99)], config())


class TestDetection:
    def test_parity_detects_gate_state_upset(self):
        from repro.fault.harden import add_parity_guards

        b = RtlBuilder("reg4")
        x = b.input("x", unsigned(4))
        r = b.register("r", unsigned(4))
        b.next(r, x)
        b.output("y", Read(r))
        circuit = map_module(b.build())
        optimize(circuit)
        add_parity_guards(circuit)
        injector = GateFaultInjector(FaultableGateSimulator(circuit))
        seu = [name for name, _ in injector.seu_targets()
               if "__par" not in name]
        faults = [Fault("seu", seu[0], 0, 3)]
        cfg = CampaignConfig(observed=("y",),
                             detect_signals=("parity_err",))
        stim = [dict(x=5) for _ in range(8)]
        result = run_campaign(injector, stim, faults, cfg, seed=0)
        assert result.records[0].outcome == "detected"


def guarded_module():
    """A design whose error detector can only fire *after* the stimulus.

    ``r`` and its shadow ``s`` load the same input; the comparator is
    registered, so ``err`` rises one full cycle after the registers
    disagree.  The observed output ``y`` reads the shadow only — an SEU
    on ``r`` at the last stimulus cycle never perturbs ``y`` and its
    detection is visible exclusively during the drain phase.
    """
    b = RtlBuilder("guard")
    x = b.input("x", unsigned(4))
    r = b.register("r", unsigned(4))
    s = b.register("s", unsigned(4))
    err = b.register("err", bit())
    b.next(r, x)
    b.next(s, x)
    b.next(err, Read(r).ne(Read(s)))
    b.output("y", Read(s))
    b.output("err", Read(err))
    return b.build()


class TestDrainPhaseDetection:
    """Regression: detect signals must stay monitored while draining."""

    CFG = dict(observed=("y",), detect_signals=("err",),
               done_signal="err", done_value=0, drain_budget=4,
               idle_input=dict(x=0))

    def _run(self, fault_cycle):
        injector = RtlFaultInjector(RtlSimulator(guarded_module()))
        stim = [dict(x=v) for v in (3, 5, 9, 6)]
        fault = Fault("seu", "r", 1, fault_cycle)
        return run_campaign(injector, stim, [fault],
                            CampaignConfig(**self.CFG), seed=0)

    def test_late_firing_detector_caught_during_drain(self):
        # SEU at the last stimulus cycle: err first rises on drain
        # cycle 1.  Before the fix this classified as masked.
        result = self._run(fault_cycle=3)
        record = result.records[0]
        assert record.outcome == "detected"
        assert record.first_divergence is None  # y never diverged
        assert result.golden_done

    def test_mid_stimulus_detection_still_works(self):
        # Injected early, the registered comparator fires within the
        # stimulus window — the pre-existing path must keep working.
        result = self._run(fault_cycle=1)
        assert result.records[0].outcome == "detected"


def _latcher_injector():
    """Module-level factory: picklable for worker processes."""
    return RtlFaultInjector(RtlSimulator(latching_module()))


class TestParallelCampaign:
    def test_jobs_report_byte_identical(self):
        faults = generate_fault_list(make_injector(), 12, 12, seed=4)
        sequential = run_campaign(make_injector(), stimulus(), faults,
                                  config(), design="latcher", seed=4)
        for jobs in (2, 3, 64):  # 64 > unique faults: clamps to the list
            parallel = run_campaign(
                None, stimulus(), faults, config(), design="latcher",
                seed=4, jobs=jobs, injector_factory=_latcher_injector,
            )
            assert parallel.to_json() == sequential.to_json()

    def test_jobs_without_factory_rejected(self):
        with pytest.raises(ValueError, match="injector_factory"):
            run_campaign(make_injector(), stimulus(), [], config(), jobs=2)

    def test_duplicate_faults_share_one_record(self):
        fault = Fault("seu", "acc", 3, 4)
        other = Fault("seu", "busy", 0, 10)
        result = run_campaign(make_injector(), stimulus(),
                              [fault, other, fault, fault], config(), seed=0)
        assert len(result.records) == 4
        assert result.records[0] is result.records[2] is result.records[3]
        assert result.records[0].outcome == "sdc"
        assert result.records[1].outcome == "hang"


class TestReport:
    def test_json_schema_and_determinism(self):
        injector = make_injector()
        faults = generate_fault_list(injector, 10, 12, seed=3)
        result = run_campaign(injector, stimulus(), faults, config(),
                              design="latcher", seed=3)
        payload = json.loads(result.to_json())
        assert payload["schema"] == "repro-fault-campaign/v1"
        assert set(payload["outcomes"]) == set(OUTCOMES)
        assert payload["golden"]["selfcheck"] == "masked"
        assert len(payload["faults"]) == 10
        for record in payload["faults"]:
            assert {"kind", "target", "bit", "cycle",
                    "outcome"} <= set(record)
        # end-to-end determinism: fresh injector, same seed, same bytes
        injector2 = make_injector()
        faults2 = generate_fault_list(injector2, 10, 12, seed=3)
        result2 = run_campaign(injector2, stimulus(), faults2, config(),
                               design="latcher", seed=3)
        assert result.to_json() == result2.to_json()
