"""Shared fixtures and helpers for the test suite."""

import random

import pytest

from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.types import Bit
from repro.types.spec import bit


@pytest.fixture
def rng():
    """Deterministic RNG per test."""
    return random.Random(0xC0FFEE)


class Bench:
    """A tiny single-DUT testbench: clock, reset, simulator, cycle stepper."""

    def __init__(self, dut_factory, period=10 * NS, reset_cycles=2):
        self.clk = Clock("clk", period)
        self.rst = Signal("rst", bit(), Bit(1))
        self.period = period
        self.top = Module("bench")
        self.top.clk = self.clk
        self.top.rst = self.rst
        self.dut = dut_factory(self.clk, self.rst)
        self.top.dut = self.dut
        self.sim = Simulator(self.top)
        for _ in range(reset_cycles):
            self.sim.run(period)
        self.rst.write(0)

    def cycle(self, **drives):
        """Drive input ports by name, run one clock period."""
        self.sim.activate()
        for name, value in drives.items():
            self.dut.port(name).drive(value)
        self.sim.run(self.period)

    def out(self, name):
        """Integer value of an output port."""
        return int(self.dut.port(name).read())


@pytest.fixture
def bench_factory():
    """Build a :class:`Bench` around a DUT factory."""
    return Bench
