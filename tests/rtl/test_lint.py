"""The structural RTL linter and the public comb-loop check."""

import pytest

from repro.rtl.ir import Read, RtlModule, UnaryOp
from repro.rtl.lint import lint_module
from repro.rtl.simulate import CombinationalLoopError, RtlSimulator
from repro.types.spec import bit, unsigned


def _counter() -> RtlModule:
    module = RtlModule("counter")
    enable = module.add_input("enable", bit())
    count = module.add_register("count", unsigned(4))
    from repro.rtl.ir import BinOp, Const, Mux

    count.next = Mux(Read(enable),
                     BinOp("add", Read(count), Const(unsigned(4), 1)),
                     Read(count))
    module.add_output("q", Read(count))
    return module


def _looped() -> RtlModule:
    module = RtlModule("loop")
    module.add_input("a", bit())
    wire = module.add_wire("w", Read(module.inputs["a"]))
    wire.expr = UnaryOp("invert", Read(wire))  # w = ~w: cyclic
    module.add_output("q", Read(wire))
    return module


class TestCheckNoCombLoops:
    def test_clean_module_passes(self):
        RtlSimulator(_counter()).check_no_comb_loops()

    def test_cycle_raises(self):
        with pytest.raises(CombinationalLoopError):
            RtlSimulator(_looped()).check_no_comb_loops()

    def test_state_is_untouched(self):
        sim = RtlSimulator(_counter())
        before = dict(sim.state)
        sim.check_no_comb_loops()
        assert sim.state == before


class TestLintModule:
    def test_clean_module_reports_nothing(self):
        report = lint_module(_counter())
        assert report.clean

    def test_comb_loop_is_a_hard_error(self):
        with pytest.raises(CombinationalLoopError):
            lint_module(_looped())

    def test_unused_input_is_a_warning(self):
        module = _counter()
        module.add_input("spare", bit())
        report = lint_module(module)
        assert report.unused_inputs == ["spare"]
        assert not report.clean
