"""Tests for the RTL simulator, builder, and linter."""

import pytest

from repro.rtl import (
    CombinationalLoopError,
    Const,
    Read,
    RtlBuilder,
    RtlError,
    RtlModule,
    RtlSimulator,
    lint_module,
    mux,
)
from repro.types.spec import bit, bits, unsigned


def counter_module(width=8):
    b = RtlBuilder("counter")
    enable = b.input("enable", bit())
    count = b.register("count", unsigned(width))
    b.next(count, mux(enable, (Read(count) + 1).resized(width), Read(count)))
    b.output("count", Read(count))
    return b.build()


class TestBuilder:
    def test_reset_folded_automatically(self):
        m = counter_module()
        sim = RtlSimulator(m)
        sim.step(reset=0, enable=1)
        sim.step(reset=0, enable=1)
        assert sim.peek_outputs()["count"] == 2
        sim.step(reset=1)
        assert sim.peek_outputs()["count"] == 0

    def test_double_next_rejected(self):
        b = RtlBuilder("m")
        reg = b.register("r", bit())
        b.next(reg, Const(bit(), 1))
        with pytest.raises(RtlError):
            b.next(reg, Const(bit(), 0))

    def test_next_width_checked(self):
        b = RtlBuilder("m")
        reg = b.register("r", unsigned(4))
        with pytest.raises(RtlError):
            b.next(reg, Const(unsigned(8), 0))

    def test_undriven_register_holds(self):
        b = RtlBuilder("m")
        reg = b.register("r", unsigned(4), reset=9)
        b.output("q", Read(reg))
        m = b.build()
        sim = RtlSimulator(m)
        sim.step(reset=0)
        assert sim.peek_outputs()["q"] == 9

    def test_no_reset_module(self):
        b = RtlBuilder("m", reset_port=None)
        reg = b.register("r", unsigned(4), reset=5)
        b.next(reg, (Read(reg) + 1).resized(4))
        b.output("q", Read(reg))
        m = b.build()
        sim = RtlSimulator(m)
        sim.step()
        assert sim.peek_outputs()["q"] == 6

    def test_instance_reset_autowired(self):
        child = counter_module()
        b = RtlBuilder("top")
        inst = b.instance("u0", child, enable=Const(bit(), 1))
        b.output("q", inst.output("count"))
        m = b.build()
        sim = RtlSimulator(m)
        sim.step(reset=1)
        sim.step(reset=0)
        sim.step(reset=0)
        assert sim.peek_outputs()["q"] == 2

    def test_wire_naming(self):
        b = RtlBuilder("m")
        a = b.input("a", unsigned(4))
        w = b.wire("doubled", (a + a).resized(4))
        b.output("q", w)
        m = b.build()
        sim = RtlSimulator(m)
        sim.drive(a=3)
        assert sim.peek_outputs()["q"] == 6


class TestSimulator:
    def test_outputs_sampled_before_commit(self):
        m = counter_module()
        sim = RtlSimulator(m)
        sim.step(reset=1)
        out = sim.step(reset=0, enable=1)
        assert out["count"] == 0  # pre-edge view
        assert sim.peek_outputs()["count"] == 1

    def test_unknown_input_rejected(self):
        sim = RtlSimulator(counter_module())
        with pytest.raises(RtlError):
            sim.step(bogus=1)

    def test_inputs_masked_to_width(self):
        b = RtlBuilder("m", reset_port=None)
        a = b.input("a", unsigned(4))
        b.output("q", a)
        sim = RtlSimulator(b.build())
        sim.drive(a=0x1F)
        assert sim.peek_outputs()["q"] == 0xF

    def test_run_stimulus(self):
        sim = RtlSimulator(counter_module())
        outs = sim.run([{"reset": 1}] + [{"reset": 0, "enable": 1}] * 3)
        assert [o["count"] for o in outs] == [0, 0, 1, 2]

    def test_run_within_cycle_budget(self):
        sim = RtlSimulator(counter_module())
        outs = sim.run([{"reset": 1}] * 4, max_cycles=4)
        assert len(outs) == 4

    def test_run_exceeding_cycle_budget_raises(self):
        def endless():
            while True:
                yield {"reset": 0, "enable": 1}

        sim = RtlSimulator(counter_module())
        with pytest.raises(RtlError, match="cycle budget"):
            sim.run(endless(), max_cycles=8)
        assert sim.cycle == 8  # stopped right at the budget

    def test_find_register(self):
        sim = RtlSimulator(counter_module())
        reg = sim.find_register("count")
        sim.step(reset=0, enable=1)
        assert sim.register_value(reg) == 1
        with pytest.raises(KeyError):
            sim.find_register("missing")

    def test_shared_module_object_rejected(self):
        child = counter_module()
        parent = RtlModule("p")
        i1 = parent.add_instance("a", child)
        i2 = parent.add_instance("b", child)
        for inst in (i1, i2):
            inst.connect("enable", Const(bit(), 1))
            inst.connect("reset", Const(bit(), 0))
        with pytest.raises(RtlError):
            RtlSimulator(parent)

    def test_hierarchical_evaluation(self):
        child = counter_module(4)
        b = RtlBuilder("top")
        run = b.input("run", bit())
        inst = b.instance("u0", child, enable=run)
        b.output("total", (inst.output("count") + 1).resized(4))
        sim = RtlSimulator(b.build())
        sim.step(reset=1)
        sim.step(reset=0, run=1)
        sim.step(reset=0, run=1)
        assert sim.peek_outputs()["total"] == 3


class TestLint:
    def test_clean_module(self):
        report = lint_module(counter_module())
        assert report.clean

    def test_unused_input_warning(self):
        b = RtlBuilder("m")
        b.input("unused", bit())
        reg = b.register("r", bit())
        b.next(reg, Read(reg))
        b.output("q", Read(reg))
        report = lint_module(b.build())
        assert "unused" in report.unused_inputs

    def test_combinational_loop_detected(self):
        m = RtlModule("loop")
        from repro.rtl.ir import WireCarrier

        # w = w + 1 (self-referential wire)
        placeholder = Const(unsigned(4), 0)
        wire = m.add_wire("w", placeholder)
        wire.expr = (Read(wire) + 1).resized(4)
        m.add_output("q", Read(wire))
        with pytest.raises(CombinationalLoopError):
            lint_module(m)
