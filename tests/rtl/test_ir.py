"""Tests for the RTL IR: expression semantics and module structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtl import (
    BinOp,
    Concat,
    Const,
    Mux,
    Read,
    Register,
    Resize,
    RtlError,
    RtlModule,
    ShiftConst,
    ShiftDyn,
    Slice,
    UnaryOp,
    mux,
)
from repro.types.spec import bit, bits, signed, unsigned


def ev(expr, **carrier_values):
    return expr.evaluate(lambda c: carrier_values[c.name])


class TestConstAndRead:
    def test_const_masks(self):
        assert Const(unsigned(4), 0x1F).raw == 0xF

    def test_read_carries_spec(self):
        reg = Register("r", unsigned(8))
        assert Read(reg).spec == unsigned(8)
        assert ev(Read(reg), r=42) == 42

    def test_exprs_immutable(self):
        with pytest.raises(AttributeError):
            Const(bit(), 1).raw = 0

    def test_no_truthiness(self):
        with pytest.raises(RtlError):
            bool(Const(bit(), 1))


class TestBinOpSemantics:
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_add_sub_mul_unsigned(self, a, b):
        ca, cb = Const(unsigned(8), a), Const(unsigned(8), b)
        assert ev(BinOp("add", ca, cb)) == (a + b) & 0xFF
        assert ev(BinOp("sub", ca, cb)) == (a - b) & 0xFF
        assert ev(BinOp("mul", ca, cb)) == a * b

    @given(a=st.integers(-128, 127), b=st.integers(-128, 127))
    def test_signed_compare(self, a, b):
        ca = Const(signed(8), a & 0xFF)
        cb = Const(signed(8), b & 0xFF)
        assert ev(BinOp("lt", ca, cb)) == int(a < b)
        assert ev(BinOp("ge", ca, cb)) == int(a >= b)

    def test_result_widths(self):
        a, b = Const(unsigned(8), 0), Const(unsigned(12), 0)
        assert BinOp("add", a, b).width == 12
        assert BinOp("mul", a, b).width == 20
        assert BinOp("and", a, b).width == 12
        assert BinOp("eq", a, b).width == 1

    def test_mixed_signedness_rejected(self):
        with pytest.raises(RtlError):
            BinOp("add", Const(unsigned(8), 0), Const(signed(8), 0))

    def test_operator_sugar(self):
        reg = Register("r", unsigned(8))
        expr = (Read(reg) + 1) * 2
        assert ev(expr, r=3) == 8

    def test_negative_int_with_unsigned_rejected(self):
        with pytest.raises(RtlError):
            Read(Register("r", unsigned(8))) + (-1)


class TestMuxSliceConcat:
    def test_mux(self):
        sel = Const(bit(), 1)
        assert ev(Mux(sel, Const(unsigned(4), 5), Const(unsigned(4), 9))) == 5

    def test_mux_validation(self):
        with pytest.raises(RtlError):
            Mux(Const(unsigned(2), 0), Const(bit(), 0), Const(bit(), 0))
        with pytest.raises(RtlError):
            Mux(Const(bit(), 0), Const(unsigned(2), 0), Const(unsigned(3), 0))

    def test_mux_helper_coerces_ints(self):
        sel = Const(bit(), 0)
        assert ev(mux(sel, 3, Const(unsigned(4), 9))) == 9
        with pytest.raises(RtlError):
            mux(sel, 1, 2)

    def test_slice_inclusive(self):
        v = Const(unsigned(8), 0b10110010)
        assert ev(Slice(v, 5, 2)) == 0b1100

    def test_slice_as_bit(self):
        v = Const(unsigned(8), 0b100)
        assert Slice(v, 2, 2, as_bit=True).spec == bit()

    def test_slice_bounds(self):
        with pytest.raises(RtlError):
            Slice(Const(unsigned(4), 0), 4, 0)

    def test_concat_msb_first(self):
        joined = Concat([Const(bits(2), 0b10), Const(bits(3), 0b011)])
        assert joined.width == 5 and ev(joined) == 0b10011


class TestShiftsAndResize:
    @given(v=st.integers(0, 255), k=st.integers(0, 10))
    def test_const_shifts(self, v, k):
        c = Const(unsigned(8), v)
        assert ev(ShiftConst(c, k, left=True)) == (v << k) & 0xFF
        assert ev(ShiftConst(c, k, left=False)) == v >> k

    def test_arithmetic_shift_right(self):
        c = Const(signed(8), 0xF0)  # -16
        assert ev(ShiftConst(c, 2, left=False)) == 0xFC  # -4

    @given(v=st.integers(0, 255), k=st.integers(0, 15))
    def test_dynamic_shift(self, v, k):
        c = Const(unsigned(8), v)
        amount = Const(unsigned(4), k)
        assert ev(ShiftDyn(c, amount, left=False)) == \
            (v >> k if k < 8 else 0)

    def test_dynamic_shift_signed_saturates_fill(self):
        c = Const(signed(8), 0x80)
        amount = Const(unsigned(4), 12)
        assert ev(ShiftDyn(c, amount, left=False)) == 0xFF

    def test_resize_sign_extension(self):
        c = Const(signed(4), 0b1000)  # -8
        assert ev(Resize(c, signed(8))) == 0xF8

    def test_resize_zero_extension(self):
        assert ev(Resize(Const(unsigned(4), 0xF), unsigned(8))) == 0x0F


class TestUnary:
    def test_invert_not_neg(self):
        assert ev(UnaryOp("invert", Const(unsigned(4), 0b1010))) == 0b0101
        assert ev(UnaryOp("not", Const(bit(), 0))) == 1
        assert ev(UnaryOp("neg", Const(unsigned(4), 3))) == 13

    def test_reductions(self):
        v = Const(unsigned(4), 0b0110)
        assert ev(UnaryOp("reduce_or", v)) == 1
        assert ev(UnaryOp("reduce_and", v)) == 0
        assert ev(UnaryOp("reduce_xor", v)) == 0


class TestModuleStructure:
    def test_duplicate_port_rejected(self):
        m = RtlModule("m")
        m.add_input("a", bit())
        with pytest.raises(RtlError):
            m.add_input("a", bit())

    def test_validate_undriven_register(self):
        m = RtlModule("m")
        m.add_register("r", unsigned(4))
        with pytest.raises(RtlError):
            m.validate()

    def test_validate_width_mismatch(self):
        m = RtlModule("m")
        reg = m.add_register("r", unsigned(4))
        reg.next = Const(unsigned(8), 0)
        with pytest.raises(RtlError):
            m.validate()

    def test_instance_connection_checks(self):
        child = RtlModule("child")
        child.add_input("x", unsigned(4))
        child.add_output("y", Read(child.inputs["x"]))
        parent = RtlModule("parent")
        inst = parent.add_instance("u0", child)
        with pytest.raises(RtlError):
            inst.connect("x", Const(unsigned(8), 0))
        with pytest.raises(RtlError):
            inst.connect("nope", Const(unsigned(4), 0))
        with pytest.raises(RtlError):
            inst.output("nope")
        inst.connect("x", Const(unsigned(4), 3))
        parent.add_output("y", inst.output("y"))
        parent.validate()

    def test_stats_counts(self):
        m = RtlModule("m")
        a = m.add_input("a", bit())
        reg = m.add_register("r", bit())
        reg.next = Mux(Read(a), Const(bit(), 1), Read(reg))
        m.add_output("q", Read(reg))
        stats = m.stats()
        assert stats["registers"] == 1 and stats["muxes"] == 1
