"""Tests for the behavioral Verilog emitter (Fig. 6 output format)."""

import pytest

from repro.expocu import CamSync
from repro.hdl import Clock, NS, Signal
from repro.rtl import Read, RtlBuilder, RtlModule, mux, to_verilog
from repro.synth import synthesize
from repro.types import Bit
from repro.types.spec import bit, signed, unsigned


def counter():
    b = RtlBuilder("counter")
    en = b.input("enable", bit())
    reg = b.register("count", unsigned(8), reset=3)
    b.next(reg, mux(en, (Read(reg) + 1).resized(8), Read(reg)))
    b.output("count", Read(reg))
    return b.build()


class TestStructure:
    def test_module_header_and_ports(self):
        text = to_verilog(counter())
        assert "module counter (" in text
        assert "input wire clk" in text
        assert "input wire enable" in text
        assert "output wire [7:0] count" in text
        assert text.strip().endswith("endmodule")

    def test_register_declaration_with_reset(self):
        text = to_verilog(counter())
        assert "reg [7:0] count = 8'd3;" in text

    def test_always_block(self):
        text = to_verilog(counter())
        assert "always @(posedge clk) begin" in text
        assert "count <=" in text

    def test_deterministic(self):
        assert to_verilog(counter()) == to_verilog(counter())

    def test_hierarchy_emits_children_first(self):
        child = counter()
        b = RtlBuilder("top")
        inst = b.instance("u0", child,
                          enable=b.input("run", bit()))
        b.output("q", inst.output("count"))
        text = to_verilog(b.build())
        assert text.index("module counter") < text.index("module top")
        assert ".enable(" in text and ".count(" in text

    def test_signed_operations_marked(self):
        m = RtlModule("s")
        a = m.add_input("a", signed(8))
        b2 = m.add_input("b", signed(8))
        m.add_output("lt", Read(a).lt(Read(b2)))
        m.add_output("sh", Read(a) >> 2)
        text = to_verilog(m)
        assert "$signed" in text and ">>>" in text

    def test_identifier_sanitizing(self):
        m = RtlModule("weird name!")
        a = m.add_input("in-1", bit())
        m.add_output("out", Read(a))
        text = to_verilog(m)
        assert "module weird_name_" in text
        assert "in_1" in text


class TestSynthesizedDesigns:
    def test_expocu_unit_emits(self):
        rtl = synthesize(CamSync("s", Clock("clk", 10 * NS),
                                 Signal("rst", bit(), Bit(1))))
        text = to_verilog(rtl)
        assert "module CamSync_s" in text
        assert text.count("endmodule") == 1

    def test_invalid_module_rejected(self):
        m = RtlModule("bad")
        m.add_register("r", unsigned(4))  # next never assigned
        with pytest.raises(Exception):
            to_verilog(m)
