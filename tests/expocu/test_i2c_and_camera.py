"""Tests for the I²C master against the camera model's slave, the camera
model itself, and the polymorphic ALU unit."""

import pytest

from repro.expocu import CameraModel, I2cMaster, PolyAluUnit, make_scene
from repro.expocu.camera import REG_EXPOSURE, REG_GAIN
from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.types import Bit
from repro.types.spec import bit


class I2cBench:
    """Master wired to the camera model's slave."""

    def __init__(self, divider=2):
        self.top = Module("top")
        self.top.clk = Clock("clk", 10 * NS)
        self.top.rst = Signal("rst", bit(), Bit(1))
        self.top.cam = CameraModel("cam", self.top.clk, self.top.rst)
        self.top.i2c = I2cMaster[divider]("i2c", self.top.clk, self.top.rst)
        i2c, cam = self.top.i2c, self.top.cam
        cam.port("scl").bind(i2c.port("scl"))
        cam.port("sda_master").bind(i2c.port("sda_out"))
        cam.port("sda_oe").bind(i2c.port("sda_oe"))
        i2c.port("sda_in").bind(cam.port("sda_in"))
        self.sim = Simulator(self.top)
        self.sim.run(20 * NS)
        self.top.rst.write(0)

    def write_register(self, reg, value, max_cycles=2000):
        i2c = self.top.i2c
        i2c.port("dev_addr").drive(0x21)
        i2c.port("reg_addr").drive(reg)
        i2c.port("data").drive(value)
        i2c.port("start").drive(1)
        self.sim.run_until(lambda: int(i2c.busy.read()) == 1,
                           max_cycles * 10 * NS)
        i2c.port("start").drive(0)
        done = self.sim.run_until(lambda: int(i2c.done.read()) == 1,
                                  max_cycles * 10 * NS)
        assert done, "transfer did not complete"


class TestI2cTransfer:
    def test_register_write_decoded_by_slave(self):
        bench = I2cBench()
        bench.write_register(REG_EXPOSURE, 0x5A)
        assert bench.top.cam.exposure == 0x5A
        assert bench.top.cam.register_log == [(REG_EXPOSURE, 0x5A)]

    def test_back_to_back_writes(self):
        bench = I2cBench()
        bench.write_register(REG_EXPOSURE, 10)
        bench.write_register(REG_GAIN, 99)
        assert bench.top.cam.exposure == 10
        assert bench.top.cam.gain == 99

    def test_slave_acks_no_error(self):
        bench = I2cBench()
        bench.write_register(REG_GAIN, 1)
        assert int(bench.top.i2c.ack_error.read()) == 0

    def test_no_slave_sets_ack_error(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.rst = Signal("rst", bit(), Bit(1))
        top.i2c = I2cMaster[2]("i2c", top.clk, top.rst)
        sim = Simulator(top)
        sim.run(20 * NS)
        top.rst.write(0)
        top.i2c.port("sda_in").drive(1)  # released bus: NACK
        top.i2c.port("start").drive(1)
        sim.run_until(lambda: int(top.i2c.busy.read()), 500 * 10 * NS)
        top.i2c.port("start").drive(0)
        assert sim.run_until(lambda: int(top.i2c.done.read()),
                             3000 * 10 * NS)
        assert int(top.i2c.ack_error.read()) == 1

    def test_unknown_register_ignored(self):
        bench = I2cBench()
        bench.write_register(0x77, 5)
        assert bench.top.cam.exposure == 128  # default untouched
        assert (0x77, 5) in bench.top.cam.register_log


class TestCameraModel:
    def test_scene_mean_close_to_request(self):
        scene = make_scene(16, 16, mean=110, seed=3)
        assert abs(sum(scene) / len(scene) - 110) < 12

    def test_scene_deterministic(self):
        assert make_scene(8, 8, 100, seed=5) == make_scene(8, 8, 100, seed=5)

    def test_sensor_response_monotonic_in_exposure(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.rst = Signal("rst", bit(), Bit(0))
        cam = CameraModel("cam", top.clk, top.rst)
        top.cam = cam
        dim = cam.mean_pixel()
        cam.exposure = 255
        assert cam.mean_pixel() > dim

    def test_pixel_clipping(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.rst = Signal("rst", bit(), Bit(0))
        cam = CameraModel("cam", top.clk, top.rst, scene_mean=250)
        top.cam = cam
        cam.exposure = 255
        cam.gain = 255
        assert max(cam.sensor_value(i) for i in range(16)) == 255

    def test_streams_frames(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.rst = Signal("rst", bit(), Bit(1))
        top.cam = CameraModel("cam", top.clk, top.rst, width=4, height=4,
                              blanking=1)
        sim = Simulator(top)
        sim.run(20 * NS)
        top.rst.write(0)
        valid_count = 0
        frame_pulses = 0
        for _ in range(80):
            sim.run(10 * NS)
            valid_count += int(top.cam.pix_valid.read())
            frame_pulses += int(top.cam.frame_strobe.read())
        assert valid_count >= 16  # at least one full 4x4 frame
        assert frame_pulses >= 2


class TestPolyAluUnit:
    def test_all_operations(self, bench_factory):
        bench = bench_factory(lambda c, r: PolyAluUnit("alu", c, r))
        expected = {0: 12 + 5, 1: (12 - 5) % (1 << 16), 2: 60, 3: 12}
        for sel, value in expected.items():
            bench.cycle(op_select=sel, a=12, b=5)
            bench.cycle(op_select=sel, a=12, b=5)
            assert bench.out("result") == value
            assert bench.out("history") == value
