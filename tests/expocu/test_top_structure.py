"""Structural tests of the complete ExpoCU (paper Fig. 1 / Fig. 12)."""

import pytest

from repro.expocu import ExpoCU
from repro.hdl import Clock, NS, Signal
from repro.synth import design_report, rtl_inventory, synthesize
from repro.types import Bit
from repro.types.spec import bit


@pytest.fixture(scope="module")
def expocu_rtl_pair():
    module = ExpoCU[16, 16]("expocu", Clock("clk", 15 * NS),
                            Signal("rst", bit(), Bit(1)))
    rtl = synthesize(module, observe_children=False)
    return module, rtl


class TestHierarchy:
    def test_all_paper_units_instantiated(self, expocu_rtl_pair):
        _, rtl = expocu_rtl_pair
        names = {instance.name for instance in rtl.instances}
        assert {"sync", "hist", "thresh", "params", "i2c"} <= names

    def test_shared_arbiter_generated_at_root(self, expocu_rtl_pair):
        _, rtl = expocu_rtl_pair
        arbiters = [i for i in rtl.instances
                    if i.name.startswith("arbiter_")]
        assert len(arbiters) == 1

    def test_ports_match_paper_interface(self, expocu_rtl_pair):
        _, rtl = expocu_rtl_pair
        assert {"pix", "pix_valid", "line_strobe", "frame_strobe",
                "sda_in", "reset"} <= set(rtl.inputs)
        assert {"scl", "sda_out", "sda_oe", "exposure", "gain",
                "mean"} <= set(rtl.outputs)

    def test_fsm_inventory(self, expocu_rtl_pair):
        _, rtl = expocu_rtl_pair
        inventory = rtl_inventory(rtl)
        assert "cam_ctrl" in inventory["fsms"]
        assert inventory["fsms"]["i2c.run"] > 20  # behavioral I2C is big
        assert inventory["state_bits"] > 200

    def test_design_report_covers_classes(self, expocu_rtl_pair):
        module, rtl = expocu_rtl_pair
        report = design_report(module, rtl)
        for expected in ("SharedMultiplier", "HistogramBins",
                         "SyncRegister"):
            assert expected in report

    def test_template_parameters_respected(self):
        small = ExpoCU[8, 8]("e", Clock("clk", 15 * NS),
                             Signal("rst", bit(), Bit(1)))
        assert small.FRAME_W == 8
        assert small.thresh.FRAME_PIXELS == 64

    def test_invalid_frame_geometry_rejected(self):
        with pytest.raises(ValueError):
            ExpoCU[10, 10]("e", Clock("clk", 15 * NS),
                           Signal("rst", bit(), Bit(1)))
