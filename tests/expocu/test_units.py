"""Functional tests of the ExpoCU units at kernel level."""

import pytest

from repro.expocu import (
    CamSync,
    ExpoParamsUnit,
    HistogramBins,
    HistogramUnit,
    ResetCtl,
    SyncRegister,
    ThresholdUnit,
)
from repro.types import Bit, Unsigned


class TestSyncRegisterClass:
    def test_shift_in_history(self):
        reg = SyncRegister[4, 0]()
        for value in (1, 1, 0, 1):
            reg.write(Bit(value))
        assert reg.value.to_binary() == "1101"[::-1][::-1]  # LSB newest
        assert reg.read_bit(0) == 1 and reg.read_bit(1) == 0

    def test_edges(self):
        reg = SyncRegister[4, 0]()
        reg.write(Bit(0))
        reg.write(Bit(1))
        assert reg.rising_edge(0) == 1 and reg.falling_edge(0) == 0
        reg.write(Bit(0))
        assert reg.falling_edge(0) == 1

    def test_reset_value_template(self):
        assert SyncRegister[4, 0b1010]().value.value == 0b1010

    def test_stable_high(self):
        reg = SyncRegister[3, 0]()
        for _ in range(3):
            reg.write(Bit(1))
        assert reg.stable_high() == 1

    def test_operator_eq_overload(self):
        a, b = SyncRegister[4, 0](), SyncRegister[4, 0]()
        assert a == b
        a.write(Bit(1))
        assert a != b


class TestCamSync:
    def test_strobe_to_pulse(self, bench_factory):
        bench = bench_factory(lambda c, r: CamSync("s", c, r))
        pulses = []
        drive = [0, 1, 1, 0, 0, 0, 0, 0]
        for level in drive:
            bench.cycle(frame_strobe=level)
            pulses.append(bench.out("frame_start"))
        assert sum(pulses) == 1  # exactly one clean pulse

    def test_valid_is_delayed_level(self, bench_factory):
        bench = bench_factory(lambda c, r: CamSync("s", c, r))
        bench.cycle(pix_valid=1)
        bench.cycle(pix_valid=1)
        bench.cycle(pix_valid=1)
        assert bench.out("pix_valid_sync") == 1


class TestHistogramBins:
    def test_add_and_get(self):
        bins = HistogramBins[8]()
        bins.add(Unsigned(3, 2))
        bins.add(Unsigned(3, 2))
        bins.add(Unsigned(3, 7))
        assert bins.get(2).value == 2
        assert bins.get(7).value == 1
        assert bins.get(0).value == 0

    def test_clear(self):
        bins = HistogramBins[8]()
        bins.add(Unsigned(3, 1))
        bins.clear()
        assert all(bins.get(i).value == 0 for i in range(8))


class TestHistogramUnit:
    def test_frame_accumulate_latch_clear(self, bench_factory):
        bench = bench_factory(
            lambda c, r: HistogramUnit[10]("h", c, r)
        )
        # Frame 1: three pixels in bin 0 (values < 32), one in bin 7.
        for pix in (3, 10, 20):
            bench.cycle(pix=pix, pix_valid=1, frame_start=0)
        bench.cycle(pix=250, pix_valid=1, frame_start=0)
        bench.cycle(pix=0, pix_valid=0, frame_start=1)
        bench.cycle(pix=0, pix_valid=0, frame_start=0)
        assert bench.out("hist0") == 3
        assert bench.out("hist7") == 1
        # Frame 2 starts clean.
        bench.cycle(pix=100, pix_valid=1, frame_start=0)
        bench.cycle(pix=0, pix_valid=0, frame_start=1)
        bench.cycle(pix=0, pix_valid=0, frame_start=0)
        assert bench.out("hist0") == 0
        assert bench.out("hist3") == 1

    def test_invalid_pixels_ignored(self, bench_factory):
        bench = bench_factory(lambda c, r: HistogramUnit[10]("h", c, r))
        bench.cycle(pix=10, pix_valid=0, frame_start=0)
        bench.cycle(pix=0, pix_valid=0, frame_start=1)
        bench.cycle(pix=0, pix_valid=0, frame_start=0)
        assert bench.out("hist0") == 0


class TestThresholdUnit:
    def drive_histogram(self, bench, counts):
        bench.cycle(hist_valid=1, **{f"hist{i}": c
                                     for i, c in enumerate(counts)})
        for _ in range(12):
            bench.cycle(hist_valid=0, **{f"hist{i}": c
                                         for i, c in enumerate(counts)})

    def test_uniform_histogram_mean(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ThresholdUnit[10, 256]("t", c, r)
        )
        self.drive_histogram(bench, [32] * 8)
        assert bench.out("mean") == 128
        assert bench.out("too_dark") == 0 and bench.out("too_bright") == 0

    def test_dark_frame_flags(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ThresholdUnit[10, 256]("t", c, r)
        )
        self.drive_histogram(bench, [256, 0, 0, 0, 0, 0, 0, 0])
        assert bench.out("mean") == 16
        assert bench.out("too_dark") == 1

    def test_bright_frame_flags(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ThresholdUnit[10, 256]("t", c, r)
        )
        self.drive_histogram(bench, [0, 0, 0, 0, 0, 0, 0, 256])
        assert bench.out("mean") == 240
        assert bench.out("too_bright") == 1

    def test_stats_valid_is_pulse(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ThresholdUnit[10, 256]("t", c, r)
        )
        bench.cycle(hist_valid=1, **{f"hist{i}": 32 for i in range(8)})
        pulses = 0
        for _ in range(14):
            bench.cycle(hist_valid=0, **{f"hist{i}": 32 for i in range(8)})
            pulses += bench.out("stats_valid")
        assert pulses == 1

    def test_non_power_of_two_frame_rejected(self):
        from repro.hdl import Clock, NS, Signal
        from repro.types.spec import bit as bitspec

        with pytest.raises(ValueError):
            ThresholdUnit[10, 200]("t", Clock("c", 10 * NS),
                                   Signal("r", bitspec(), Bit(1)))


class TestExpoParams:
    def run_update(self, bench, mean):
        bench.cycle(mean=mean, stats_valid=1)
        for _ in range(70):
            bench.cycle(mean=mean, stats_valid=0)
            if bench.out("params_valid"):
                break

    def test_dark_frame_raises_exposure(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ExpoParamsUnit[128]("p", c, r)
        )
        before = bench.out("exposure")
        self.run_update(bench, 40)
        assert bench.out("exposure") > before

    def test_bright_frame_lowers_exposure(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ExpoParamsUnit[128]("p", c, r)
        )
        before = bench.out("exposure")
        self.run_update(bench, 240)
        assert bench.out("exposure") < before

    def test_gain_tracks_division(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ExpoParamsUnit[128]("p", c, r)
        )
        self.run_update(bench, 64)  # target/mean = 2 -> gain_target = 128
        # One IIR step from 64 toward 128: (3*64 + 128) >> 2 = 80.
        assert bench.out("gain") == 80

    def test_on_target_small_step(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ExpoParamsUnit[128]("p", c, r)
        )
        self.run_update(bench, 128)
        assert abs(bench.out("exposure") - 128) <= 1

    def test_shared_multiplier_counts_ops(self, bench_factory):
        bench = bench_factory(
            lambda c, r: ExpoParamsUnit[128]("p", c, r)
        )
        self.run_update(bench, 40)
        assert bench.dut.shared.instance.op_count.value == 3


class TestResetCtl:
    def test_stretch(self):
        from repro.hdl import Clock, Module, NS, Signal, Simulator
        from repro.types.spec import bit as bitspec

        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.ext = Signal("ext", bitspec(), Bit(1))
        top.rc = ResetCtl[4]("rc", top.clk, top.ext)
        sim = Simulator(top)
        sim.run(30 * NS)
        top.ext.write(0)
        sim.run(20 * NS)
        assert int(top.rc.sys_reset.read()) == 1  # still stretching
        sim.run(40 * NS)
        assert int(top.rc.sys_reset.read()) == 0
