"""Closed-loop auto-exposure convergence, both flows (system test)."""

import pytest

from repro.baseline import expocu_rtl
from repro.eval import RtlCosimModule
from repro.expocu import CameraModel, ExpoCU
from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.types import Bit
from repro.types.spec import bit


def build_system(flavour, scene_mean=110, noise=0):
    top = Module("system")
    top.clk = Clock("clk", 15 * NS)
    top.rst = Signal("rst", bit(), Bit(1))
    top.cam = CameraModel("cam", top.clk, top.rst, width=16, height=16,
                          scene_mean=scene_mean, noise=noise)
    if flavour == "osss":
        top.dut = ExpoCU[16, 16]("expocu", top.clk, top.rst)
    else:
        top.dut = RtlCosimModule("expocu", expocu_rtl(), top.clk, top.rst)
    top.dut.port("pix").bind(top.cam.port("pix"))
    top.dut.port("pix_valid").bind(top.cam.port("pix_valid"))
    top.dut.port("line_strobe").bind(top.cam.port("line_strobe"))
    top.dut.port("frame_strobe").bind(top.cam.port("frame_strobe"))
    top.cam.port("scl").bind(top.dut.port("scl"))
    top.cam.port("sda_master").bind(top.dut.port("sda_out"))
    top.cam.port("sda_oe").bind(top.dut.port("sda_oe"))
    top.dut.port("sda_in").bind(top.cam.port("sda_in"))
    sim = Simulator(top)
    sim.run(10 * 15 * NS)
    top.rst.write(0)
    return top, sim


def run_frames(top, sim, frames, cycles_per_frame=700):
    means = []
    for _ in range(frames):
        sim.run(cycles_per_frame * 15 * NS)
        means.append(top.cam.mean_pixel())
    return means


@pytest.mark.parametrize("flavour", ["osss", "vhdl"])
class TestConvergence:
    def test_loop_converges_to_target(self, flavour):
        top, sim = build_system(flavour)
        means = run_frames(top, sim, 14)
        assert abs(means[-1] - 128) < 20, means

    def test_i2c_writes_happen(self, flavour):
        top, sim = build_system(flavour)
        run_frames(top, sim, 6)
        registers = {reg for reg, _ in top.cam.register_log}
        assert {0x10, 0x11} <= registers

    def test_dark_scene_pushes_exposure_up(self, flavour):
        top, sim = build_system(flavour, scene_mean=40)
        run_frames(top, sim, 8)
        assert top.cam.exposure > 128 or top.cam.gain > 64

    def test_bright_scene_pushes_exposure_down(self, flavour):
        top, sim = build_system(flavour, scene_mean=245)
        run_frames(top, sim, 8)
        assert top.cam.exposure < 128


class TestFlowAgreement:
    def test_both_flows_follow_same_trajectory(self):
        osss_top, osss_sim = build_system("osss")
        vhdl_top, vhdl_sim = build_system("vhdl")
        # NOTE: two simulators cannot interleave (global active kernel), so
        # run them frame-by-frame, re-activating each in turn.
        osss_means, vhdl_means = [], []
        for _ in range(8):
            osss_sim.activate()
            osss_sim.run(700 * 15 * NS)
            osss_means.append(round(osss_top.cam.mean_pixel()))
            vhdl_sim.activate()
            vhdl_sim.run(700 * 15 * NS)
            vhdl_means.append(round(vhdl_top.cam.mean_pixel()))
        # Same algorithm, same scene: trajectories stay close.
        assert all(abs(a - b) <= 8 for a, b in
                   zip(osss_means, vhdl_means)), (osss_means, vhdl_means)

    def test_noise_robustness(self):
        top, sim = build_system("osss", noise=6)
        means = run_frames(top, sim, 14)
        assert abs(means[-1] - 128) < 28
