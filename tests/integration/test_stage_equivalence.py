"""Claim R6: bit- and cycle-accuracy across every stage (paper §12).

Each ExpoCU unit (and the full unit) is driven with identical stimulus at
the OSSS-simulation, generated-RTL and optimized-netlist levels.
"""

import random

import pytest

from repro.eval import check_all_stages
from repro.expocu import (
    CamSync,
    ExpoCU,
    ExpoParamsUnit,
    HistogramUnit,
    I2cMaster,
    PolyAluUnit,
    ThresholdUnit,
)


def frame_stimulus(rng, frames=2, side=8, idle=40):
    stim = []
    for _ in range(frames):
        stim.append(dict(pix=0, pix_valid=0, line_strobe=0,
                         frame_strobe=1, sda_in=1))
        stim.append(dict(pix=0, pix_valid=0, line_strobe=0,
                         frame_strobe=1, sda_in=1))
        for _ in range(side):
            stim.append(dict(pix=0, pix_valid=0, line_strobe=1,
                             frame_strobe=0, sda_in=1))
            for _ in range(side):
                stim.append(dict(pix=rng.randint(0, 255), pix_valid=1,
                                 line_strobe=0, frame_strobe=0, sda_in=1))
        for _ in range(idle):
            stim.append(dict(pix=0, pix_valid=0, line_strobe=0,
                             frame_strobe=0, sda_in=1))
    return stim


class TestUnitEquivalence:
    def test_camsync_all_stages(self, rng):
        stim = [dict(pix_valid=rng.randint(0, 1),
                     line_strobe=rng.randint(0, 1),
                     frame_strobe=rng.randint(0, 1)) for _ in range(150)]
        report = check_all_stages(
            lambda c, r: CamSync("s", c, r), stim,
            ["pix_valid_sync", "line_start", "frame_start"],
        )
        assert report.equivalent, report.mismatches[:3]

    def test_histogram_all_stages(self, rng):
        stim = []
        for _ in range(3):
            stim.append(dict(pix=0, pix_valid=0, frame_start=1))
            stim.extend(dict(pix=rng.randint(0, 255),
                             pix_valid=rng.randint(0, 1), frame_start=0)
                        for _ in range(30))
        report = check_all_stages(
            lambda c, r: HistogramUnit[10]("h", c, r), stim,
            [f"hist{i}" for i in range(8)] + ["hist_valid"],
        )
        assert report.equivalent, report.mismatches[:3]

    def test_threshold_all_stages(self, rng):
        stim = []
        for _ in range(3):
            hist = {f"hist{i}": rng.randint(0, 60) for i in range(8)}
            stim.append(dict(hist_valid=1, **hist))
            stim.extend([dict(hist_valid=0, **hist)] * 13)
        report = check_all_stages(
            lambda c, r: ThresholdUnit[10, 256]("t", c, r), stim,
            ["mean", "too_dark", "too_bright", "stats_valid"],
        )
        assert report.equivalent, report.mismatches[:3]

    def test_expoparams_all_stages(self):
        stim = []
        for mean in (40, 90, 200, 128):
            stim.append(dict(mean=mean, stats_valid=1))
            stim.extend([dict(mean=mean, stats_valid=0)] * 60)
        report = check_all_stages(
            lambda c, r: ExpoParamsUnit[128]("p", c, r), stim,
            ["exposure", "gain", "params_valid", "busy"],
        )
        assert report.equivalent, report.mismatches[:3]

    def test_i2c_all_stages(self):
        stim = [dict(start=1, dev_addr=0x21, reg_addr=0x10, data=0xA5,
                     sda_in=0)]
        stim += [dict(start=0, dev_addr=0x21, reg_addr=0x10, data=0xA5,
                      sda_in=0)] * 500
        report = check_all_stages(
            lambda c, r: I2cMaster[2]("i", c, r), stim,
            ["scl", "sda_out", "sda_oe", "busy", "done", "ack_error"],
        )
        assert report.equivalent, report.mismatches[:3]

    def test_polymorphic_alu_all_stages(self, rng):
        stim = [dict(op_select=rng.randint(0, 3), a=rng.randint(0, 255),
                     b=rng.randint(0, 255)) for _ in range(120)]
        report = check_all_stages(
            lambda c, r: PolyAluUnit("alu", c, r), stim,
            ["result", "history"],
        )
        assert report.equivalent, report.mismatches[:3]


class TestFullExpoCU:
    def test_expocu_kernel_vs_rtl(self, rng):
        """The complete unit, RTL stage only (gate level covered by E6)."""
        stim = frame_stimulus(rng, frames=1, side=8, idle=120)
        report = check_all_stages(
            lambda c, r: ExpoCU[8, 8]("expocu", c, r), stim,
            ["scl", "sda_out", "sda_oe", "exposure", "gain", "mean",
             "too_dark", "too_bright", "ctrl_busy"],
            include_gates=False,
        )
        assert report.equivalent, report.mismatches[:3]

    @pytest.mark.slow
    def test_expocu_all_stages(self, rng):
        stim = frame_stimulus(rng, frames=1, side=8, idle=100)
        report = check_all_stages(
            lambda c, r: ExpoCU[8, 8]("expocu", c, r), stim,
            ["scl", "sda_out", "sda_oe", "exposure", "gain", "mean"],
        )
        assert report.equivalent, report.mismatches[:3]
