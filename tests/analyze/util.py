"""Shared helpers for the analyzer tests."""

from repro.analyze import analyze_design
from repro.hdl import Clock, Module, NS, Signal
from repro.types import Bit
from repro.types.spec import bit


def clkrst():
    return Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))


def thread_module(body_fn, ports=None, extra=None):
    """Build a one-thread module around *body_fn* (no synthesis)."""
    namespace = {"__init__": _init_with(body_fn), "run": body_fn}
    if ports:
        namespace.update(ports)
    if extra:
        namespace.update(extra)
    cls = type("Dut", (Module,), namespace)
    clk, rst = clkrst()
    return cls("dut", clk, rst)


def _init_with(body_fn):
    def __init__(self, name, clk, rst):
        Module.__init__(self, name)
        self.cthread(self.run, clock=clk, reset=rst)

    return __init__


def codes_of(design, **kwargs):
    """The diagnostic codes :func:`analyze_design` reports for *design*."""
    return [d.code for d in analyze_design(design, **kwargs)]
