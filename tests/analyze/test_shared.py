"""Shared-object hazard detection (OSS3xx)."""

from repro.analyze import analyze_design
from repro.hdl import Input, Module
from repro.osss import HwClass, SharedObject
from repro.types import Unsigned
from repro.types.spec import bit, unsigned

from tests.analyze import designs
from tests.analyze.util import clkrst, codes_of


class Spin(HwClass):
    @classmethod
    def layout(cls):
        return {"x": unsigned(4)}

    def spin(self):
        return self.spin()


class DirectAccess(Module):
    """A thread bypassing the arbiter with ``call_direct``."""

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.shared = SharedObject(f"{name}_alu", designs.Alu())
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        yield
        while True:
            self.shared.call_direct("mac", Unsigned(8, 1), Unsigned(8, 1))
            yield


class CombCaller(Module):
    """A combinational method blocking on the arbiter: deadlock."""

    a = Input(bit())

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.shared = SharedObject(f"{name}_alu", designs.Alu())
        self.p = self.shared.client_port("p")
        self.cmethod(self.comb, [self.port("a")])

    def comb(self):
        result = yield from self.p.call("mac", Unsigned(8, 1),  # noqa: F841
                                        Unsigned(8, 1))


class GuardedCycle(Module):
    """A guarded object whose method calls back into itself."""

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.shared = SharedObject(f"{name}_spin", Spin())
        self.p = self.shared.client_port("p")
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        yield
        while True:
            result = yield from self.p.call("spin")  # noqa: F841
            yield


class PortSharers(Module):
    """Two threads driving one client port (contract: one per process)."""

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.shared = SharedObject(f"{name}_alu", designs.Alu())
        self.p = self.shared.client_port("p")
        self.cthread(self.one, clock=clk, reset=rst)
        self.cthread(self.two, clock=clk, reset=rst)

    def one(self):
        yield
        while True:
            r = yield from self.p.call("mac", Unsigned(8, 1),  # noqa: F841
                                       Unsigned(8, 1))
            yield

    def two(self):
        yield
        while True:
            r = yield from self.p.call("mac", Unsigned(8, 2),  # noqa: F841
                                       Unsigned(8, 2))
            yield


def _build(cls):
    clk, rst = clkrst()
    return cls("dut", clk, rst)


class TestSharedObjectHazards:
    def test_oss301_direct_access(self):
        diagnostics = analyze_design(_build(DirectAccess),
                                     design_lints=False)
        codes = [d.code for d in diagnostics]
        assert "OSS301" in codes
        (diag,) = [d for d in diagnostics if d.code == "OSS301"]
        assert "call_direct" not in diag.message  # names the object instead
        assert "dut_alu" in diag.message
        assert diag.line is not None

    def test_oss302_call_in_combinational_method(self):
        codes = codes_of(_build(CombCaller), design_lints=False)
        assert "OSS302" in codes
        assert "OSS301" not in codes  # the port is the sanctioned path

    def test_oss303_guarded_call_cycle(self):
        codes = codes_of(_build(GuardedCycle), design_lints=False)
        assert "OSS303" in codes
        assert "OSS201" not in codes  # guarded: deadlock, not recursion

    def test_oss304_port_shared_by_two_threads(self):
        diagnostics = analyze_design(_build(PortSharers),
                                     design_lints=False)
        (diag,) = [d for d in diagnostics if d.code == "OSS304"]
        assert "one" in diag.message and "two" in diag.message

    def test_single_user_port_is_fine(self):
        codes = codes_of(_build(GuardedCycle), design_lints=False)
        assert "OSS304" not in codes
