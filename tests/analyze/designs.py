"""Fixture designs for the analyzer tests.

These live in a real module (not inside test function bodies built from
strings) because the analyzer retrieves process sources with
``inspect.getsourcelines``.  ``build()``/``build_clean()`` are factories
for the CLI's ``--design pkg.mod:factory`` option.
"""

from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.osss import HwClass, SharedObject
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Alu(HwClass):
    @classmethod
    def layout(cls):
        return {"acc": unsigned(16)}

    def mac(self, a, b):
        self.acc = (self.acc + a * b).resized(16)
        return self.acc


class BadTrio(Module):
    """Three independent violations for the fail-slow acceptance test:

    * a float constant in ``one`` (subset break, OSS102);
    * direct ``call_direct`` access to a shared object from both threads,
      bypassing the arbiter (race, OSS301);
    * a 16-bit product written to an 8-bit output in ``two``
      (truncation, RTL401).
    """

    narrow = Output(unsigned(8))
    level = Input(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.shared = SharedObject(f"{name}_alu", Alu())
        self.cthread(self.one, clock=clk, reset=rst)
        self.cthread(self.two, clock=clk, reset=rst)

    def one(self):
        gain = 0.5  # noqa: F841  -- float constant: subset break
        yield
        while True:
            self.shared.call_direct("mac", Unsigned(8, 1), Unsigned(8, 2))
            yield

    def two(self):
        yield
        while True:
            wide = self.level.read() * self.level.read()
            self.narrow.write(wide)  # 16 bits into 8: truncation
            self.shared.call_direct("mac", Unsigned(8, 3), Unsigned(8, 4))
            yield


class CleanCounter(Module):
    """A small design the analyzer finds nothing wrong with."""

    q = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        count = Unsigned(8, 0)
        self.q.write(count)
        yield
        while True:
            count = (count + 1).resized(8)
            self.q.write(count)
            yield


class WarnOnly(Module):
    """Only a width-truncation warning: clean unless ``--strict``."""

    narrow = Output(unsigned(8))
    level = Input(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        yield
        while True:
            self.narrow.write(self.level.read() * self.level.read())
            yield


def _clkrst():
    return Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))


def build():
    clk, rst = _clkrst()
    return BadTrio("bad", clk, rst)


def build_clean():
    clk, rst = _clkrst()
    return CleanCounter("clean", clk, rst)


def build_warny():
    clk, rst = _clkrst()
    return WarnOnly("warny", clk, rst)
