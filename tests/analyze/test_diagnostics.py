"""Tests for the diagnostic model: codes, rendering, suppressions."""

import pytest

from repro.analyze import RULES, Diagnostic, DiagnosticCollector, Suppressions
from repro.synth import SynthesisError


class TestRuleRegistry:
    def test_every_code_has_severity_and_title(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.severity in ("error", "warning")
            assert rule.title

    def test_severity_follows_code_family(self):
        for code, rule in RULES.items():
            # RTL4xx structural findings and OSS5xx netlist testability
            # findings are warnings; every source-level OSS code is an
            # error (a synthesis blocker).
            warning = code.startswith("RTL4") or code.startswith("OSS5")
            expected = "warning" if warning else "error"
            assert rule.severity == expected, code


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("OSS999", "nope")

    def test_render_with_location(self):
        diag = Diagnostic("OSS103", "no wait", where="top.run",
                          file="a.py", line=7)
        assert diag.render() == "a.py:7: error OSS103: no wait [top.run]"

    def test_render_without_location(self):
        diag = Diagnostic("RTL403", "unused", where="top")
        assert diag.render() == "<design>: warning RTL403: unused [top]"

    def test_as_dict_round_trips_fields(self):
        diag = Diagnostic("RTL401", "truncates", where="w", file="f.py",
                          line=3)
        assert diag.as_dict() == {
            "code": "RTL401", "severity": "warning",
            "message": "truncates", "where": "w", "file": "f.py", "line": 3,
        }

    def test_sort_orders_by_file_then_line(self):
        first = Diagnostic("OSS101", "x", file="a.py", line=9)
        second = Diagnostic("OSS101", "x", file="a.py", line=12)
        third = Diagnostic("OSS101", "x", file="b.py", line=1)
        assert sorted([third, second, first], key=Diagnostic.sort_key) \
            == [first, second, third]


class TestCollector:
    def test_deduplicates_identical_findings(self):
        collector = DiagnosticCollector()
        for _ in range(3):
            collector.emit("OSS103", "same", where="m.run",
                           file="a.py", line=4)
        assert len(collector.diagnostics()) == 1

    def test_error_count_ignores_warnings(self):
        collector = DiagnosticCollector()
        collector.emit("OSS103", "err")
        collector.emit("RTL401", "warn")
        assert collector.error_count == 1

    def test_from_synthesis_error_keeps_structure(self):
        collector = DiagnosticCollector()
        exc = SynthesisError("float constant", where="top.run",
                             code="OSS102")
        collector.from_synthesis_error(exc, file="a.py")
        (diag,) = collector.diagnostics()
        assert diag.code == "OSS102"
        assert diag.where == "top.run"
        assert diag.file == "a.py"


class TestSuppressions:
    def _diag(self, code="OSS103", line=5):
        return Diagnostic(code, "msg", file="x.py", line=line)

    def test_bare_ignore_suppresses_everything(self):
        table = Suppressions()
        table.scan("x.py", ["a = 1  # repro: ignore"], first_lineno=5)
        assert table.is_suppressed(self._diag("OSS103"))
        assert table.is_suppressed(self._diag("RTL401"))

    def test_listed_codes_only(self):
        table = Suppressions()
        table.scan("x.py", ["a = 1  # repro: ignore[OSS103,RTL401]"],
                   first_lineno=5)
        assert table.is_suppressed(self._diag("OSS103"))
        assert table.is_suppressed(self._diag("RTL401"))
        assert not table.is_suppressed(self._diag("OSS102"))

    def test_other_lines_unaffected(self):
        table = Suppressions()
        table.scan("x.py", ["a = 1  # repro: ignore"], first_lineno=5)
        assert not table.is_suppressed(self._diag(line=6))

    def test_no_location_never_suppressed(self):
        table = Suppressions()
        table.scan("x.py", ["# repro: ignore"], first_lineno=1)
        assert not table.is_suppressed(Diagnostic("OSS103", "msg"))
