"""Design-level lints: truncation, unused ports/signals, report folding."""

from repro.analyze import analyze_design, diagnostics_from_lint_report
from repro.hdl import Input, Module, Output, Signal
from repro.rtl.lint import LintReport
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned

from tests.analyze.util import clkrst, codes_of, thread_module


class TestWidthTruncation:
    def test_rtl401_product_written_to_narrow_port(self):
        ports = {"level": Input(unsigned(8)), "narrow": Output(unsigned(8))}

        def run(self):
            yield
            while True:
                wide = self.level.read() * self.level.read()
                self.narrow.write(wide)
                yield

        assert "RTL401" in codes_of(thread_module(run, ports))

    def test_explicit_resize_is_clean(self):
        ports = {"level": Input(unsigned(8)), "narrow": Output(unsigned(8))}

        def run(self):
            yield
            while True:
                wide = self.level.read() * self.level.read()
                self.narrow.write(wide.resized(8))
                yield

        assert "RTL401" not in codes_of(thread_module(run, ports))

    def test_unknown_width_does_not_fire(self):
        ports = {"narrow": Output(unsigned(8))}

        def helper_free(self):
            yield
            while True:
                self.narrow.write(Unsigned(8, 0))
                yield

        assert "RTL401" not in codes_of(thread_module(helper_free, ports))


class TestUnusedElements:
    def test_rtl403_unreferenced_unbound_port(self):
        ports = {"spare": Input(bit()), "q": Output(unsigned(8))}

        def run(self):
            yield
            while True:
                self.q.write(Unsigned(8, 1))
                yield

        diagnostics = analyze_design(thread_module(run, ports))
        (diag,) = [d for d in diagnostics if d.code == "RTL403"]
        assert "spare" in diag.message

    def test_rtl405_unconnected_signal(self):
        class Dangling(Module):
            q = Output(bit())

            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.orphan = Signal("orphan", bit(), Bit(0))
                self.cthread(self.run, clock=clk, reset=rst)

            def run(self):
                yield
                while True:
                    self.q.write(Bit(1))
                    yield

        clk, rst = clkrst()
        diagnostics = analyze_design(Dangling("dut", clk, rst))
        (diag,) = [d for d in diagnostics if d.code == "RTL405"]
        assert "orphan" in diag.message

    def test_referenced_port_not_flagged(self):
        ports = {"q": Output(unsigned(8))}

        def run(self):
            yield
            while True:
                self.q.write(Unsigned(8, 1))
                yield

        assert "RTL403" not in codes_of(thread_module(run, ports))


class TestLintReportFold:
    def test_report_becomes_warning_diagnostics(self):
        report = LintReport()
        report.unused_inputs.append("spare")
        report.unread_registers.append("stale")
        diagnostics = diagnostics_from_lint_report(report, "osss")
        assert [d.code for d in diagnostics] == ["RTL403", "RTL404"]
        assert all(d.severity == "warning" for d in diagnostics)
        assert all(d.where == "osss" for d in diagnostics)

    def test_clean_report_yields_nothing(self):
        assert diagnostics_from_lint_report(LintReport()) == []
