"""Emitter tests: text summary, stable JSON, SARIF 2.1.0, golden files."""

import json
from pathlib import Path

from repro.analyze import Diagnostic, analyze_design
from repro.analyze.emit import (
    RENDERERS,
    TOOL_NAME,
    render_json,
    render_sarif,
    render_text,
)
from repro.expocu import ExpoCU
from repro.hdl import Clock, NS, Signal
from repro.types import Bit
from repro.types.spec import bit

from tests.analyze import designs

GOLDEN = Path(__file__).parent / "golden"


def _sample():
    return [
        Diagnostic("OSS103", "no wait", where="top.run", file="a.py",
                   line=7),
        Diagnostic("RTL401", "truncates", where="top.run", file="a.py",
                   line=9),
    ]


def _expocu():
    return ExpoCU[16, 16]("expocu", Clock("clk", 15 * NS),
                          Signal("rst", bit(), Bit(1)))


class TestText:
    def test_summary_line_counts_severities(self):
        out = render_text(_sample())
        assert out.endswith("1 error(s), 1 warning(s)")
        assert "a.py:7: error OSS103: no wait [top.run]" in out

    def test_empty_run(self):
        assert render_text([]) == "0 error(s), 0 warning(s)"


class TestJson:
    def test_document_shape(self):
        document = json.loads(render_json(_sample()))
        assert document["version"] == 1
        assert document["tool"]["name"] == TOOL_NAME
        assert document["summary"] == {"errors": 1, "warnings": 1}
        assert [d["code"] for d in document["diagnostics"]] \
            == ["OSS103", "RTL401"]

    def test_output_is_deterministic(self):
        assert render_json(_sample()) == render_json(_sample())


class TestSarif:
    def test_valid_sarif_shape(self):
        document = json.loads(render_sarif(_sample()))
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == TOOL_NAME
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] \
            == ["OSS103", "RTL401"]
        first, second = run["results"]
        assert first["ruleId"] == "OSS103"
        assert first["level"] == "error"
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "a.py"
        assert location["region"]["startLine"] == 7
        assert second["level"] == "warning"

    def test_seeded_design_round_trips(self):
        diagnostics = analyze_design(designs.build())
        document = json.loads(render_sarif(diagnostics))
        results = document["runs"][0]["results"]
        assert len(results) == len(diagnostics)
        rule_ids = {r["ruleId"] for r in results}
        assert {"OSS102", "OSS301", "RTL401"} <= rule_ids


class TestGolden:
    """The clean ExpoCU run is byte-stable across machines (no paths)."""

    def test_clean_expocu_json_matches_golden(self):
        rendered = render_json(analyze_design(_expocu()))
        golden = (GOLDEN / "clean_expocu.json").read_text()
        assert rendered == golden

    def test_clean_expocu_sarif_matches_golden(self):
        rendered = render_sarif(analyze_design(_expocu()))
        golden = (GOLDEN / "clean_expocu.sarif").read_text()
        assert rendered == golden


class TestRegistry:
    def test_renderers_cover_all_cli_formats(self):
        assert set(RENDERERS) == {"text", "json", "sarif"}
