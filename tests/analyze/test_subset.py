"""Fail-slow subset checking: one focused test per diagnostic code."""

from repro.analyze import analyze_design
from repro.hdl import Input, Output
from repro.osss import HwClass
from repro.types import Unsigned
from repro.types.spec import bit, unsigned

from tests.analyze import designs
from tests.analyze.util import codes_of, thread_module


class TestStatementRules:
    def test_oss101_banned_statement(self):
        def run(self):
            yield
            while True:
                try:
                    pass
                except ValueError:
                    pass
                yield

        codes = codes_of(thread_module(run), design_lints=False)
        assert "OSS101" in codes

    def test_oss102_float_constant(self):
        def run(self):
            yield
            while True:
                x = 1.5  # noqa: F841
                yield

        assert "OSS102" in codes_of(thread_module(run), design_lints=False)

    def test_oss103_dynamic_loop_without_yield(self):
        ports = {"seed": Input(unsigned(8))}

        def run(self):
            yield
            while True:
                value = self.seed.read()
                while value < 200:
                    value = (value + 1).resized(8)
                yield

        codes = codes_of(thread_module(run, ports), design_lints=False)
        assert "OSS103" in codes

    def test_oss103_thread_without_any_yield(self):
        def run(self):
            pass

        assert "OSS103" in codes_of(thread_module(run), design_lints=False)

    def test_oss104_for_over_non_range(self):
        def run(self):
            yield
            for _ in (1, 2, 3):
                yield

        assert "OSS104" in codes_of(thread_module(run), design_lints=False)

    def test_oss109_thread_returning_value(self):
        def run(self):
            yield
            return 5

        assert "OSS109" in codes_of(thread_module(run), design_lints=False)

    def test_rtl402_unreachable_statement(self):
        def run(self):
            yield
            while True:
                yield
            return  # unreachable: the loop never breaks

        assert "RTL402" in codes_of(thread_module(run), design_lints=False)


class TestExpressionRules:
    def test_oss105_true_division(self):
        def run(self):
            yield
            value = Unsigned(8, 10)
            while True:
                value = (value // 3).resized(8)
                yield

        assert "OSS105" in codes_of(thread_module(run), design_lints=False)

    def test_oss106_chained_comparison(self):
        def run(self):
            yield
            v = Unsigned(8, 1)
            while True:
                if 0 < v < 5:
                    pass
                yield

        assert "OSS106" in codes_of(thread_module(run), design_lints=False)

    def test_oss107_keyword_arguments(self):
        def run(self):
            yield
            while True:
                x = Unsigned(8, value=1)  # noqa: F841
                yield

        assert "OSS107" in codes_of(thread_module(run), design_lints=False)

    def test_oss108_yield_from_non_call(self):
        def run(self):
            yield
            while True:
                yield from range(3)
                yield

        assert "OSS108" in codes_of(thread_module(run), design_lints=False)

    def test_oss108_yield_with_value(self):
        def run(self):
            yield
            while True:
                yield 1

        assert "OSS108" in codes_of(thread_module(run), design_lints=False)

    def test_oss113_list_literal(self):
        def run(self):
            yield
            while True:
                xs = [1, 2]  # noqa: F841
                yield

        assert "OSS113" in codes_of(thread_module(run), design_lints=False)

    def test_oss116_unknown_helper(self):
        def run(self):
            yield
            while True:
                yield from self.missing()
                yield

        assert "OSS116" in codes_of(thread_module(run), design_lints=False)


class TestHelperAndMethodRules:
    def test_oss201_recursive_helper(self):
        def spin(self):
            yield from self.spin()

        def run(self):
            yield
            while True:
                yield from self.spin()
                yield

        design = thread_module(run, extra={"spin": spin})
        assert "OSS201" in codes_of(design, design_lints=False)

    def test_oss201_recursive_hw_class_method(self):
        class Rec(HwClass):
            @classmethod
            def layout(cls):
                return {"x": unsigned(4)}

            def spin(self):
                return self.spin()

        def __init__(self, name, clk, rst):
            from repro.hdl import Module

            Module.__init__(self, name)
            self.obj = Rec()
            self.cthread(self.run, clock=clk, reset=rst)

        def run(self):
            yield
            while True:
                yield

        design = thread_module(run, extra={"__init__": __init__})
        assert "OSS201" in codes_of(design, design_lints=False)

    def test_oss202_wait_in_hw_class_method(self):
        class Waity(HwClass):
            @classmethod
            def layout(cls):
                return {"x": unsigned(4)}

            def bad(self):
                yield

        def __init__(self, name, clk, rst):
            from repro.hdl import Module

            Module.__init__(self, name)
            self.obj = Waity()
            self.cthread(self.run, clock=clk, reset=rst)

        def run(self):
            yield
            while True:
                yield

        design = thread_module(run, extra={"__init__": __init__})
        assert "OSS202" in codes_of(design, design_lints=False)

    def test_oss206_combinational_method_returning_value(self):
        def __init__(self, name, clk, rst):
            from repro.hdl import Module

            Module.__init__(self, name)
            self.cmethod(self.comb, [self.port("a")])

        def comb(self):
            return self.a.read()

        design = thread_module(
            comb, ports={"a": Input(bit()), "q": Output(bit())},
            extra={"__init__": __init__, "comb": comb},
        )
        assert "OSS206" in codes_of(design, design_lints=False)


class TestFailSlow:
    def test_three_violations_reported_in_one_pass(self):
        """The acceptance scenario: a subset break, a shared-object race
        and a width truncation all surface from a single analyzer run."""
        diagnostics = analyze_design(designs.build())
        codes = [d.code for d in diagnostics]
        assert "OSS102" in codes  # float constant in thread one
        assert codes.count("OSS301") >= 2  # call_direct in both threads
        assert "RTL401" in codes  # 16-bit product into 8-bit port
        errors = [d for d in diagnostics if d.severity == "error"]
        assert len(errors) >= 3

    def test_locations_point_into_the_fixture_file(self):
        diagnostics = analyze_design(designs.build())
        for diag in diagnostics:
            assert diag.file is not None
            assert diag.file.endswith("designs.py")
            assert diag.line is not None

    def test_clean_design_reports_nothing(self):
        assert codes_of(designs.build_clean()) == []


class TestSuppressionsInSource:
    def test_inline_comment_silences_the_code(self):
        def run(self):
            yield
            while True:
                x = 1.5  # repro: ignore[OSS102]  # noqa: F841
                yield

        assert codes_of(thread_module(run), design_lints=False) == []

    def test_other_codes_still_fire(self):
        def run(self):
            yield
            while True:
                x = [1.5]  # repro: ignore[OSS102]  # noqa: F841
                yield

        codes = codes_of(thread_module(run), design_lints=False)
        assert codes == ["OSS113"]
