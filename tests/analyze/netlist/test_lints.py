"""OSS5xx observability lints and the combined ``analyze_circuit``.

The seeded circuit triggers every code once, and its rendered reports
are pinned as golden files next to the source-level analyzer goldens —
the OSS5xx family flows through the same text/JSON/SARIF emitters that
back ``repro lint``.
"""

import json
from pathlib import Path

from repro.analyze import (
    DiagnosticCollector,
    analyze_circuit,
    netlist_lints,
    render_json,
    render_sarif,
    render_text,
    scoap_analysis,
)
from repro.netlist import Circuit

GOLDEN = Path(__file__).parents[1] / "golden"


def seeded_circuit() -> Circuit:
    """One deterministic netlist exhibiting every OSS5xx finding.

    * ``dead`` drives a net nothing consumes               → OSS501
    * ``masker`` ANDs ``mid`` with constant 0, so ``gated``
      can never be 1 (and ``live`` never 0)                → OSS502
    * ...which also makes ``mid`` unobservable, so neither
      stuck-at fault on ``redundant``'s output is testable → OSS503
    """
    circuit = Circuit("seeded")
    a, b = circuit.new_bus("x", 2)
    circuit.mark_input("x", [a, b])
    dead = circuit.new_net("deadnet")
    mid = circuit.new_net("mid")
    gated = circuit.new_net("gated")
    live = circuit.new_net("live")
    circuit.add_cell("dead", "OR2", i0=a, i1=b, y=dead)
    circuit.add_cell("redundant", "XOR2", i0=a, i1=b, y=mid)
    circuit.add_cell("masker", "AND2", i0=mid, i1=circuit.const_net(0),
                     y=gated)
    circuit.add_cell("keep", "NAND2", i0=a, i1=gated, y=live)
    circuit.mark_output("y", [live])
    circuit.validate()
    return circuit


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


class TestLints:
    def test_seeded_circuit_fires_every_code(self):
        circuit = seeded_circuit()
        collector = DiagnosticCollector()
        netlist_lints(circuit, scoap_analysis(circuit), collector)
        codes = _codes(collector.diagnostics())
        assert "OSS501" in codes   # the dead OR2
        assert "OSS502" in codes   # gated/mid can never reach 1
        assert "OSS503" in codes   # the XOR2 behind the constant AND

    def test_clean_circuit_is_quiet(self):
        circuit = Circuit("clean")
        a, b = circuit.new_bus("x", 2)
        circuit.mark_input("x", [a, b])
        y = circuit.new_net("y")
        circuit.add_cell("g", "AND2", i0=a, i1=b, y=y)
        circuit.mark_output("y", [y])
        collector = DiagnosticCollector()
        netlist_lints(circuit, scoap_analysis(circuit), collector)
        assert collector.diagnostics() == []

    def test_all_findings_are_warnings(self):
        circuit = seeded_circuit()
        collector = DiagnosticCollector()
        netlist_lints(circuit, scoap_analysis(circuit), collector)
        assert all(d.severity == "warning"
                   for d in collector.diagnostics())


class TestAnalyzeCircuit:
    def test_summary_shape(self):
        summary = analyze_circuit(seeded_circuit()).summary()
        assert summary["design"] == "seeded"
        assert summary["nets"] > 0
        assert summary["equivalence_classes"] >= 1
        assert summary["dominance_droppable"] >= 1
        assert set(summary["diagnostics"]) == {"OSS501", "OSS502",
                                               "OSS503"}

    def test_findings_merge_into_caller_collector(self):
        collector = DiagnosticCollector()
        collector.emit("OSS101", "pre-existing", where="elsewhere")
        analysis = analyze_circuit(seeded_circuit(), collector)
        merged = _codes(collector.diagnostics())
        assert "OSS101" in merged
        assert _codes(analysis.diagnostics) == \
            [c for c in merged if c != "OSS101"]

    def test_deterministic_across_runs(self):
        first = analyze_circuit(seeded_circuit())
        second = analyze_circuit(seeded_circuit())
        assert [d.render() for d in first.diagnostics] == \
            [d.render() for d in second.diagnostics]
        assert first.summary() == second.summary()


class TestGolden:
    """OSS5xx reports are byte-stable through the shared emitters."""

    def test_text_render(self):
        diagnostics = analyze_circuit(seeded_circuit()).diagnostics
        out = render_text(diagnostics)
        assert "OSS501" in out
        assert out.endswith(f"0 error(s), {len(diagnostics)} warning(s)")

    def test_json_matches_golden(self):
        rendered = render_json(analyze_circuit(seeded_circuit()).diagnostics)
        assert rendered == (GOLDEN / "netlist_seeded.json").read_text()

    def test_sarif_matches_golden(self):
        rendered = render_sarif(
            analyze_circuit(seeded_circuit()).diagnostics
        )
        assert rendered == (GOLDEN / "netlist_seeded.sarif").read_text()
        document = json.loads(rendered)
        rules = [r["id"]
                 for r in document["runs"][0]["tool"]["driver"]["rules"]]
        assert rules == ["OSS501", "OSS502", "OSS503"]
