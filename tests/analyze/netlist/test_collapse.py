"""Structural fault collapsing: equivalence classes, guards, dominance."""

from repro.analyze.netlist import FaultEquivalence, collapse_faults
from repro.netlist import Circuit


def _sites(circuit, *names):
    by_name = {net.name: net.uid for net in circuit.nets}
    return [by_name[name] for name in names]


class TestFaultEquivalence:
    def test_union_find_basics(self):
        eq = FaultEquivalence()
        eq.union((1, "sa0"), (2, "sa0"))
        eq.union((2, "sa0"), (3, "sa1"))
        assert eq.find((1, "sa0")) == eq.find((3, "sa1"))
        assert len(eq) == 2          # two merged-away sites
        (members,) = eq.classes().values()
        assert members == [(1, "sa0"), (2, "sa0"), (3, "sa1")]

    def test_disjoint_sites_stay_apart(self):
        eq = FaultEquivalence()
        eq.union((1, "sa0"), (2, "sa0"))
        eq.union((5, "sa1"), (6, "sa1"))
        assert eq.find((1, "sa0")) != eq.find((5, "sa1"))
        assert len(eq.classes()) == 2

    def test_deep_chain_path_compression(self):
        eq = FaultEquivalence()
        for k in range(50):
            eq.union((k, "sa0"), (k + 1, "sa0"))
        root = eq.find((0, "sa0"))
        assert all(eq.find((k, "sa0")) == root for k in range(51))
        (members,) = eq.classes().values()
        assert len(members) == 51


class TestGateEquivalence:
    def test_and_inputs_merge_into_output_sa0(self):
        circuit = Circuit("and2")
        a, b = circuit.new_bus("x", 2)
        circuit.mark_input("x", [a, b])
        y = circuit.new_net("y")
        circuit.add_cell("g", "AND2", i0=a, i1=b, y=y)
        circuit.mark_output("y", [y])
        classes = collapse_faults(circuit).equivalence.classes()
        (members,) = classes.values()
        assert sorted(members) == sorted(
            [(a.uid, "sa0"), (b.uid, "sa0"), (y.uid, "sa0")]
        )

    def test_inverter_chain_is_transitive(self):
        # a -INV- b -INV- c: sa0(a) ~ sa1(b) ~ sa0(c).
        circuit = Circuit("chain")
        (a,) = circuit.new_bus("x", 1)
        circuit.mark_input("x", [a])
        b = circuit.new_net("b")
        c = circuit.new_net("c")
        circuit.add_cell("g0", "INV", a=a, y=b)
        circuit.add_cell("g1", "INV", a=b, y=c)
        circuit.mark_output("y", [c])
        eq = collapse_faults(circuit).equivalence
        assert eq.find((a.uid, "sa0")) == eq.find((c.uid, "sa0"))
        assert eq.find((a.uid, "sa0")) == eq.find((b.uid, "sa1"))
        assert eq.find((a.uid, "sa1")) == eq.find((c.uid, "sa1"))
        assert eq.find((a.uid, "sa0")) != eq.find((a.uid, "sa1"))

    def test_multi_fanout_input_is_not_merged(self):
        circuit = Circuit("fanout")
        a, b = circuit.new_bus("x", 2)
        circuit.mark_input("x", [a, b])
        y0 = circuit.new_net("y0")
        y1 = circuit.new_net("y1")
        circuit.add_cell("g0", "AND2", i0=a, i1=b, y=y0)
        circuit.add_cell("g1", "OR2", i0=a, i1=b, y=y1)
        circuit.mark_output("y", [y0, y1])
        # a and b each feed two gates: clamping the wire differs from
        # clamping either single gate output, so nothing may merge.
        assert len(collapse_faults(circuit).equivalence) == 0

    def test_observed_input_wire_is_not_merged(self):
        circuit = Circuit("observed")
        a, b = circuit.new_bus("x", 2)
        circuit.mark_input("x", [a, b])
        mid = circuit.new_net("mid")
        y = circuit.new_net("y")
        circuit.add_cell("g0", "OR2", i0=a, i1=b, y=mid)
        circuit.add_cell("g1", "INV", a=mid, y=y)
        circuit.mark_output("y", [y, mid])   # mid is directly visible
        eq = collapse_faults(circuit).equivalence
        # g1's input (mid) is observed, so INV merges nothing; only the
        # OR2 inputs collapse into mid.
        assert eq.find((mid.uid, "sa0")) != eq.find((y.uid, "sa1"))
        assert eq.find((a.uid, "sa1")) == eq.find((mid.uid, "sa1"))

    def test_constant_input_is_not_merged(self):
        circuit = Circuit("const")
        (a,) = circuit.new_bus("x", 1)
        circuit.mark_input("x", [a])
        y = circuit.new_net("y")
        circuit.add_cell("g", "AND2", i0=a, i1=circuit.const_net(1), y=y)
        circuit.mark_output("y", [y])
        eq = collapse_faults(circuit).equivalence
        one = circuit.const_net(1).uid
        members = [site for sites in eq.classes().values()
                   for site in sites]
        assert all(site[0] != one for site in members)
        # The non-constant input still collapses into the output.
        assert eq.find((a.uid, "sa0")) == eq.find((y.uid, "sa0"))

    def test_xor_and_dff_collapse_nothing(self):
        circuit = Circuit("xor")
        a, b = circuit.new_bus("x", 2)
        circuit.mark_input("x", [a, b])
        n = circuit.new_net("n")
        q = circuit.new_net("q")
        circuit.add_cell("g", "XOR2", i0=a, i1=b, y=n)
        circuit.add_cell("ff", "DFF", d=n, q=q)
        circuit.mark_output("y", [q])
        assert len(collapse_faults(circuit).equivalence) == 0


class TestDominance:
    def test_and_output_sa1_is_dominated(self):
        circuit = Circuit("and2")
        a, b = circuit.new_bus("x", 2)
        circuit.mark_input("x", [a, b])
        y = circuit.new_net("y")
        circuit.add_cell("g", "AND2", i0=a, i1=b, y=y)
        circuit.mark_output("y", [y])
        analysis = collapse_faults(circuit)
        assert (y.uid, "sa1") in analysis.dominance_dropped
        assert (y.uid, "sa0") not in analysis.dominance_dropped

    def test_constant_fed_gate_dominates_nothing(self):
        circuit = Circuit("const")
        (a,) = circuit.new_bus("x", 1)
        circuit.mark_input("x", [a])
        y = circuit.new_net("y")
        circuit.add_cell("g", "AND2", i0=a, i1=circuit.const_net(1), y=y)
        circuit.mark_output("y", [y])
        assert collapse_faults(circuit).dominance_dropped == []
