"""SCOAP controllability/observability on hand-built netlists.

Every expected score is computed by hand from Goldstein's formulas, so a
regression here points at the exact rule that broke.
"""

from repro.analyze.netlist import INF, scoap_analysis
from repro.netlist import Circuit


def _and_circuit():
    circuit = Circuit("and2")
    a, b = circuit.new_bus("x", 2)
    circuit.mark_input("x", [a, b])
    y = circuit.new_net("y")
    circuit.add_cell("g", "AND2", i0=a, i1=b, y=y)
    circuit.mark_output("y", [y])
    circuit.validate()
    return circuit, a, b, y


class TestControllability:
    def test_primary_inputs_cost_one(self):
        circuit, a, b, _ = _and_circuit()
        report = scoap_analysis(circuit)
        assert report.cc0[a.uid] == report.cc1[a.uid] == 1
        assert report.cc0[b.uid] == report.cc1[b.uid] == 1

    def test_and_gate(self):
        circuit, _, _, y = _and_circuit()
        report = scoap_analysis(circuit)
        assert report.cc0[y.uid] == 2      # min(1, 1) + 1
        assert report.cc1[y.uid] == 3      # 1 + 1 + 1

    def test_inverter_swaps_scores(self):
        circuit = Circuit("inv")
        (a,) = circuit.new_bus("x", 1)
        circuit.mark_input("x", [a])
        n = circuit.new_net("n")
        y = circuit.new_net("y")
        circuit.add_cell("g0", "AND2", i0=a, i1=a, y=n)
        circuit.add_cell("g1", "INV", a=n, y=y)
        circuit.mark_output("y", [y])
        report = scoap_analysis(circuit)
        assert report.cc0[y.uid] == report.cc1[n.uid] + 1
        assert report.cc1[y.uid] == report.cc0[n.uid] + 1

    def test_tie_cells_are_one_sided(self):
        circuit = Circuit("tie")
        (a,) = circuit.new_bus("x", 1)
        circuit.mark_input("x", [a])
        zero = circuit.const_net(0)
        y = circuit.new_net("y")
        circuit.add_cell("g", "AND2", i0=a, i1=zero, y=y)
        circuit.mark_output("y", [y])
        report = scoap_analysis(circuit)
        assert report.cc0[zero.uid] == 1
        assert report.cc1[zero.uid] == INF
        # The AND output inherits the impossibility of its 1-side.
        assert report.cc1[y.uid] == INF
        assert report.cc0[y.uid] == 2

    def test_flop_adds_one_traversal(self):
        circuit = Circuit("dff")
        (a,) = circuit.new_bus("x", 1)
        circuit.mark_input("x", [a])
        q = circuit.new_net("q")
        circuit.add_cell("ff", "DFF", d=a, q=q)
        circuit.mark_output("y", [q])
        report = scoap_analysis(circuit)
        assert report.cc0[q.uid] == 2
        assert report.cc1[q.uid] == 2
        assert report.co[a.uid] == 1       # CO(q)=0 at the output, +1

    def test_sequential_loop_reaches_fixpoint(self):
        # q feeds itself back through a MUX: controllable only via the
        # loaded leg, so the loop needs a second relaxation sweep.
        circuit = Circuit("loop")
        load, data = circuit.new_bus("x", 2)
        circuit.mark_input("x", [load, data])
        q = circuit.new_net("q")
        d = circuit.new_net("d")
        circuit.add_cell("mux", "MUX2", d0=q, d1=data, s=load, y=d)
        circuit.add_cell("ff", "DFF", d=d, q=q)
        circuit.mark_output("y", [q])
        report = scoap_analysis(circuit)
        # CC(d) = CC1(load) + CC(data) + 1 = 3; CC(q) = CC(d) + 1.
        assert report.cc0[q.uid] == 4
        assert report.cc1[q.uid] == 4

    def test_uncontrollable_loop_stays_inf_and_terminates(self):
        # A free-running inverter ring has no controllable state.
        circuit = Circuit("ring")
        q = circuit.new_net("q")
        d = circuit.new_net("d")
        circuit.add_cell("inv", "INV", a=q, y=d)
        circuit.add_cell("ff", "DFF", d=d, q=q)
        circuit.mark_output("y", [q])
        report = scoap_analysis(circuit)
        assert report.cc0[q.uid] == INF
        assert report.cc1[q.uid] == INF


class TestObservability:
    def test_outputs_cost_zero(self):
        circuit, _, _, y = _and_circuit()
        report = scoap_analysis(circuit)
        assert report.co[y.uid] == 0

    def test_side_input_charges_non_controlling_value(self):
        circuit, a, b, _ = _and_circuit()
        report = scoap_analysis(circuit)
        # Propagating through AND2 needs the other input at 1.
        assert report.co[a.uid] == report.cc1[b.uid] + 1
        assert report.co[b.uid] == report.cc1[a.uid] + 1

    def test_unobservable_behind_constant_and(self):
        circuit = Circuit("deadend")
        a, b = circuit.new_bus("x", 2)
        circuit.mark_input("x", [a, b])
        n = circuit.new_net("n")
        z = circuit.new_net("z")
        circuit.add_cell("g0", "XOR2", i0=a, i1=b, y=n)
        circuit.add_cell("g1", "AND2", i0=n, i1=circuit.const_net(0), y=z)
        circuit.mark_output("y", [z])
        report = scoap_analysis(circuit)
        # n only reaches the output through an AND whose side input can
        # never be 1, so a change on n can never propagate.
        assert report.co[n.uid] == INF

    def test_stale_nets_keep_inf(self):
        circuit, _, _, _ = _and_circuit()
        stale = circuit.new_net("stale")
        report = scoap_analysis(circuit)
        assert report.cc0[stale.uid] == INF
        assert report.co[stale.uid] == INF


class TestScores:
    def test_sa_score_combines_control_and_observe(self):
        circuit, a, b, y = _and_circuit()
        report = scoap_analysis(circuit)
        # T(sa0) = CC1 + CO, T(sa1) = CC0 + CO.
        assert report.sa_score(y.uid, 0) == report.cc1[y.uid]
        assert report.sa_score(y.uid, 1) == report.cc0[y.uid]
        assert report.sa_score(a.uid, 0) == 1 + report.co[a.uid]
