"""The ``repro lint``/``repro analyze`` commands: exits, formats, files."""

import json

import pytest

from repro.cli import main

BAD = "tests.analyze.designs:build"
CLEAN = "tests.analyze.designs:build_clean"


class TestExitCodes:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["lint", "--design", CLEAN]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_seeded_design_exits_one(self, capsys):
        assert main(["lint", "--design", BAD]) == 1
        out = capsys.readouterr().out
        assert "OSS102" in out
        assert "OSS301" in out
        assert "RTL401" in out

    def test_strict_promotes_warnings(self, capsys):
        warny = "tests.analyze.designs:build_warny"
        assert main(["lint", "--design", warny]) == 0
        assert main(["lint", "--design", warny, "--strict"]) == 1

    def test_no_design_lints_keeps_hard_errors(self, capsys):
        assert main(["lint", "--design", BAD, "--no-design-lints"]) == 1
        assert "RTL401" not in capsys.readouterr().out

    def test_bad_design_spec_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["lint", "--design", "no-colon-here"])


class TestFormats:
    def test_json_format_parses(self, capsys):
        main(["lint", "--design", BAD, "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        codes = [d["code"] for d in document["diagnostics"]]
        assert "OSS102" in codes
        assert document["summary"]["errors"] >= 3

    def test_sarif_format_parses(self, capsys):
        main(["lint", "--design", BAD, "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"]

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.sarif"
        code = main(["lint", "--design", BAD, "--format", "sarif",
                     "--output", str(target)])
        assert code == 1
        document = json.loads(target.read_text())
        assert document["runs"][0]["results"]
        assert str(target) in capsys.readouterr().out


PROBE = "tests.store.test_fingerprint:make_probe"


class TestAnalyzeCommand:
    def test_text_summary(self, capsys):
        assert main(["analyze", "--design", PROBE, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "netlist analysis:" in out
        assert "equivalent fault sites merged:" in out

    def test_json_is_the_testability_schema(self, capsys):
        main(["analyze", "--design", PROBE, "--no-cache",
              "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-testability/v1"
        assert document["scores"]
        assert {"equivalence", "dominance", "diagnostics"} \
            <= set(document)

    def test_output_file_and_cache_counters(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        cache = tmp_path / "cache"
        assert main(["analyze", "--design", PROBE, "--cache-dir",
                     str(cache), "--format", "json", "--output",
                     str(target)]) == 0
        captured = capsys.readouterr()
        assert str(target) in captured.out
        assert "0 hit(s), 4 miss(es)" in captured.err
        cold = target.read_text()

        assert main(["analyze", "--design", PROBE, "--cache-dir",
                     str(cache), "--format", "json", "--output",
                     str(target)]) == 0
        assert "4 hit(s), 0 miss(es)" in capsys.readouterr().err
        assert target.read_text() == cold

