"""The on-disk content-addressed store: atomicity, corruption, maintenance."""

import json

import pytest

from repro.store import STORE_SCHEMA, ArtifactStore, StoreError


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        doc = {"b": [1, 2], "a": {"nested": True}}
        digest = store.put_object(doc)
        assert store.get_object(digest) == doc

    def test_put_is_idempotent(self, store):
        d1 = store.put_object([1, 2, 3])
        d2 = store.put_object([1, 2, 3])
        assert d1 == d2
        assert store.stats()["objects"] == 1

    def test_distinct_content_distinct_address(self, store):
        assert store.put_object([1]) != store.put_object([2])

    def test_unserializable_object_raises(self, store):
        with pytest.raises(StoreError):
            store.put_object({"bad": object()})

    def test_missing_object_is_none(self, store):
        assert store.get_object("0" * 64) is None

    def test_corrupt_object_detected_and_dropped(self, store):
        digest = store.put_object({"v": 1})
        path = store._object_path(digest)
        path.write_bytes(b'{"v":2}')  # valid JSON, wrong content
        assert store.get_object(digest) is None
        assert not path.exists(), "damaged blob must be removed"

    def test_truncated_object_detected(self, store):
        digest = store.put_object({"value": list(range(100))})
        path = store._object_path(digest)
        path.write_bytes(path.read_bytes()[:10])
        assert store.get_object(digest) is None


class TestStagePointers:
    def test_store_and_load(self, store):
        digest = store.store("opt", "k" * 64, {"cells": 5})
        assert store.probe("opt", "k" * 64) == digest
        assert store.load("opt", "k" * 64) == {"cells": 5}

    def test_probe_unknown_key(self, store):
        assert store.probe("opt", "nope") is None

    def test_probe_does_not_touch_object(self, store):
        digest = store.store("opt", "key1", {"big": True})
        store._object_path(digest).unlink()
        # The pointer still resolves — only load() notices the hole.
        assert store.probe("opt", "key1") == digest
        assert store.load("opt", "key1") is None

    def test_corrupt_pointer_dropped(self, store):
        store.store("opt", "key1", {"v": 1})
        pointer = store._pointer_path("opt", "key1")
        pointer.write_bytes(b"not json{")
        assert store.probe("opt", "key1") is None
        assert not pointer.exists()
        assert store.counters["corrupt"]["opt"] == 1

    def test_pointer_with_wrong_schema_dropped(self, store):
        store.store("opt", "key1", {"v": 1})
        pointer = store._pointer_path("opt", "key1")
        pointer.write_text(json.dumps({"schema": "other/v2", "object": "x"}))
        assert store.probe("opt", "key1") is None

    def test_load_of_corrupt_object_drops_pointer_too(self, store):
        digest = store.store("opt", "key1", {"v": 1})
        store._object_path(digest).write_bytes(b"garbage")
        assert store.load("opt", "key1") is None
        assert store.probe("opt", "key1") is None
        assert store.counters["corrupt"]["opt"] >= 1


class TestSchemaMarker:
    def test_marker_written_on_init(self, tmp_path):
        ArtifactStore(tmp_path / "c")
        marker = json.loads((tmp_path / "c" / "store.json").read_text())
        assert marker == {"schema": STORE_SCHEMA}

    def test_reopen_same_schema_ok(self, tmp_path):
        ArtifactStore(tmp_path / "c").store("opt", "k", {"v": 1})
        assert ArtifactStore(tmp_path / "c").load("opt", "k") == {"v": 1}

    def test_foreign_schema_rejected(self, tmp_path):
        root = tmp_path / "c"
        root.mkdir()
        (root / "store.json").write_text('{"schema": "repro-store/v99"}')
        with pytest.raises(StoreError, match="repro-store/v99"):
            ArtifactStore(root)


class TestMaintenance:
    def test_stats(self, store):
        store.store("opt", "k1", {"v": 1})
        store.store("opt", "k2", {"v": 2})
        store.store("sta", "k1", {"v": 1})  # shares the {"v": 1} object
        stats = store.stats()
        assert stats["stages"] == {"opt": 2, "sta": 1}
        assert stats["entries"] == 3
        assert stats["objects"] == 2
        assert stats["bytes"] > 0

    def test_gc_noop_on_healthy_store(self, store):
        store.store("opt", "k1", {"v": 1})
        assert store.gc() == {"removed_entries": 0, "removed_objects": 0}
        assert store.load("opt", "k1") == {"v": 1}

    def test_gc_drops_dangling_pointer(self, store):
        digest = store.store("opt", "k1", {"v": 1})
        store._object_path(digest).unlink()
        report = store.gc()
        assert report["removed_entries"] == 1
        assert store.probe("opt", "k1") is None

    def test_gc_drops_unreferenced_object(self, store):
        store.put_object({"orphan": True})
        report = store.gc()
        assert report["removed_objects"] == 1
        assert store.stats()["objects"] == 0

    def test_gc_max_age_expires_old_entries(self, store):
        import os

        digest = store.store("opt", "old", {"v": 1})
        pointer = store._pointer_path("opt", "old")
        os.utime(pointer, (1, 1))  # 1970: ancient
        store.store("opt", "new", {"v": 2})
        report = store.gc(max_age_s=3600)
        assert report["removed_entries"] == 1
        assert store.probe("opt", "old") is None
        assert store.load("opt", "new") == {"v": 2}

    def test_verify_healthy(self, store):
        store.store("opt", "k1", {"v": 1})
        report = store.verify()
        assert report["ok"]
        assert report["objects"] == 1 and report["entries"] == 1

    def test_verify_reports_corruption_without_repair(self, store):
        digest = store.store("opt", "k1", {"v": 1})
        path = store._object_path(digest)
        path.write_bytes(b"junk")
        report = store.verify()
        assert not report["ok"]
        assert report["corrupt_objects"] == 1
        assert path.exists(), "verify without --repair must not delete"

    def test_verify_repair_removes_damage(self, store):
        digest = store.store("opt", "k1", {"v": 1})
        store._object_path(digest).write_bytes(b"junk")
        report = store.verify(repair=True)
        assert report["corrupt_objects"] == 1
        assert not store._object_path(digest).exists()
        # Objects are checked before pointers, so the same pass already
        # drops the pointer left dangling by the object removal.
        assert report["dangling_entries"] == 1
        assert store.verify()["ok"]

    def test_clear_empties_store(self, store):
        store.store("opt", "k1", {"v": 1})
        store.store("sta", "k2", {"v": 2})
        store.clear()
        stats = store.stats()
        assert stats["entries"] == 0 and stats["objects"] == 0
        # The store stays usable after clearing.
        store.store("opt", "k1", {"v": 3})
        assert store.load("opt", "k1") == {"v": 3}

    def test_no_temp_files_left_behind(self, store):
        for k in range(5):
            store.store("opt", f"k{k}", {"v": k})
        leftovers = [p for p in store.root.rglob(".tmp-*")]
        assert leftovers == []
