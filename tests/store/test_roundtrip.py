"""Round-trip property tests: deserialized artifacts behave identically.

Two properties per serializer:

* **exactness** — ``serialize(deserialize(doc)) == doc`` byte-for-byte
  (the document is a canonical form, so the store can content-address it);
* **behaviour** — the deserialized artifact simulates identically to the
  original (reusing the random-circuit harness from
  ``tests/netlist/test_sim_oracle.py``).
"""

import random

import pytest

from repro.netlist import GateSimulator
from repro.rtl.simulate import RtlSimulator
from repro.store import (
    StoreError,
    canonical_json,
    deserialize_circuit,
    deserialize_rtl,
    serialize_circuit,
    serialize_rtl,
)
from tests.netlist.test_sim_oracle import _stimulus, random_circuit


class TestCircuitRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_document_is_exact(self, seed):
        circuit = random_circuit(seed)
        doc = serialize_circuit(circuit)
        again = serialize_circuit(deserialize_circuit(doc))
        assert canonical_json(doc) == canonical_json(again)

    @pytest.mark.parametrize("seed", range(8))
    def test_simulation_equivalence(self, seed):
        circuit = random_circuit(seed)
        restored = deserialize_circuit(serialize_circuit(circuit))
        original = GateSimulator(circuit)
        copy = GateSimulator(restored)
        for entry in _stimulus(seed, 4, cycles=30):
            assert original.step(**entry) == copy.step(**entry)
            assert original.peek_outputs() == copy.peek_outputs()

    def test_preserves_structure_counts(self):
        circuit = random_circuit(3)
        restored = deserialize_circuit(serialize_circuit(circuit))
        assert len(restored.nets) == len(circuit.nets)
        assert len(restored.cells) == len(circuit.cells)
        assert [c.ctype.name for c in restored.cells] == \
            [c.ctype.name for c in circuit.cells]
        assert sorted(restored.constant_nets()) == \
            sorted(circuit.constant_nets())

    def test_rejects_unknown_cell_type(self):
        doc = serialize_circuit(random_circuit(0))
        doc["cells"][0][1] = "FROB3"
        with pytest.raises(StoreError, match="FROB3"):
            deserialize_circuit(doc)

    def test_rejects_multiple_drivers(self):
        circuit = random_circuit(0)
        doc = serialize_circuit(circuit)
        comb = [c for c in doc["cells"] if not c[1].startswith(("DFF", "TIE"))]
        # Point two cells' outputs at the same net.
        comb[1][2][-1] = comb[0][2][-1]
        with pytest.raises(StoreError, match="multiple drivers"):
            deserialize_circuit(doc)

    def test_rejects_wrong_schema(self):
        with pytest.raises(StoreError, match="repro-netlist/v1"):
            deserialize_circuit({"schema": "repro-rtl/v1"})

    def test_rejects_mangled_document(self):
        doc = serialize_circuit(random_circuit(1))
        doc["cells"] = "oops"
        with pytest.raises(StoreError):
            deserialize_circuit(doc)


@pytest.fixture(scope="module")
def expocu_rtl_pair():
    """The synthesized ExpoCU RTL and its round-tripped twin."""
    from repro.cli import _default_design
    from repro.synth import synthesize

    rtl = synthesize(_default_design(), observe_children=False)
    doc = serialize_rtl(rtl)
    return rtl, deserialize_rtl(doc), doc


class TestExpoCuRtlRoundTrip:
    def test_document_is_exact(self, expocu_rtl_pair):
        _rtl, restored, doc = expocu_rtl_pair
        assert canonical_json(serialize_rtl(restored)) == canonical_json(doc)

    def test_preserves_stats_and_sharing(self, expocu_rtl_pair):
        rtl, restored, _doc = expocu_rtl_pair
        # stats() counts distinct nodes by identity, so equality proves
        # the node table preserved DAG sharing instead of expanding it.
        assert restored.stats() == rtl.stats()
        assert list(restored.inputs) == list(rtl.inputs)
        assert list(restored.outputs) == list(rtl.outputs)

    def test_simulation_equivalence(self, expocu_rtl_pair):
        rtl, restored, _doc = expocu_rtl_pair
        original = RtlSimulator(rtl)
        copy = RtlSimulator(restored)
        rng = random.Random(7)
        specs = {name: c.spec for name, c in rtl.inputs.items()}
        for _cycle in range(60):
            stimulus = {
                name: rng.randrange(1 << spec.width)
                for name, spec in specs.items()
            }
            assert original.step(**stimulus) == copy.step(**stimulus)

    def test_techmap_of_restored_rtl_is_byte_identical(self, expocu_rtl_pair):
        from repro.netlist import map_module

        rtl, restored, _doc = expocu_rtl_pair
        assert canonical_json(serialize_circuit(map_module(restored))) == \
            canonical_json(serialize_circuit(map_module(rtl)))


class TestBaselineRtlRoundTrip:
    def test_blackbox_rtl_and_circuit_roundtrip(self):
        from repro.baseline import expocu_rtl
        from repro.netlist import map_module

        rtl = expocu_rtl()
        restored = deserialize_rtl(serialize_rtl(rtl))
        pre = map_module(rtl)
        pre2 = map_module(restored)
        assert [b.ip_name for b in pre2.blackboxes] == \
            [b.ip_name for b in pre.blackboxes]
        doc = serialize_circuit(pre)
        assert canonical_json(serialize_circuit(pre2)) == canonical_json(doc)
        # The unlinked (black-box) circuit itself round-trips exactly.
        assert canonical_json(
            serialize_circuit(deserialize_circuit(doc))
        ) == canonical_json(doc)

    def test_rtl_rejects_wrong_schema(self):
        with pytest.raises(StoreError, match="repro-rtl/v1"):
            deserialize_rtl({"schema": "repro-netlist/v1"})
