"""Memoized flows: cold → warm equivalence, invalidation, resilience.

The acceptance properties of the design library, end to end:

* warm runs hit every stage and produce **byte-identical** summaries to
  cold and cache-disabled runs;
* changing the design misses (no false hits);
* a corrupted cache degrades to recompute — never a wrong artifact;
* concurrent writers into one store directory are safe.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.eval.flows import run_osss_flow, run_vhdl_flow
from repro.eval.sweep import sweep
from repro.store import ArtifactStore, canonical_json
from tests.store.test_fingerprint import make_probe

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

OSSS_STAGES = ("analyze", "synthesize", "lint", "techmap",
               "opt", "sta", "pnr", "sta_routed")
VHDL_STAGES = ("lint", "techmap", "link", "opt", "sta", "pnr", "sta_routed")


def reopen(store):
    """Same directory, fresh counters — a new process, effectively."""
    return ArtifactStore(store.root)


class TestOsssMemoization:
    def test_cold_misses_then_warm_hits_every_stage(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold = run_osss_flow(make_probe(), store=store)
        for stage in OSSS_STAGES:
            assert store.counters["miss"][stage] == 1, stage
            assert store.counters["store"][stage] == 1, stage
        assert sum(store.counters["hit"].values()) == 0

        store = reopen(store)
        warm = run_osss_flow(make_probe(), store=store)
        for stage in OSSS_STAGES:
            assert store.counters["hit"][stage] == 1, stage
        assert sum(store.counters["miss"].values()) == 0
        assert canonical_json(warm.summary()) == canonical_json(cold.summary())

    def test_warm_matches_cache_disabled_run(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_osss_flow(make_probe(), store=store)
        warm = run_osss_flow(make_probe(), store=reopen(store))
        plain = run_osss_flow(make_probe())
        assert canonical_json(warm.summary()) == \
            canonical_json(plain.summary())
        assert warm.diagnostics == plain.diagnostics

    def test_changed_design_misses(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_osss_flow(make_probe(period=10), store=store)
        store = reopen(store)
        run_osss_flow(make_probe(period=20), store=store)
        assert store.counters["miss"]["synthesize"] == 1
        assert store.counters["hit"]["synthesize"] == 0

    def test_corrupted_cache_degrades_to_recompute(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold = run_osss_flow(make_probe(), store=store)
        # Smash every object; pointers stay, so every stage still "hits".
        for path in store._iter_objects():
            path.write_bytes(b"this is not the artifact")
        store = reopen(store)
        warm = run_osss_flow(make_probe(), store=store)
        assert canonical_json(warm.summary()) == canonical_json(cold.summary())
        assert sum(store.counters["corrupt"].values()) > 0
        # The recompute healed the store: next run is a clean warm hit.
        store = reopen(store)
        run_osss_flow(make_probe(), store=store)
        assert sum(store.counters["corrupt"].values()) == 0
        for stage in OSSS_STAGES:
            assert store.counters["hit"][stage] == 1, stage


class TestVhdlMemoization:
    def test_cold_then_warm_including_link(self, tmp_path):
        from repro.baseline import expocu_rtl

        store = ArtifactStore(tmp_path / "cache")
        cold = run_vhdl_flow(expocu_rtl(), store=store)
        for stage in VHDL_STAGES:
            assert store.counters["miss"][stage] == 1, stage
        store = reopen(store)
        warm = run_vhdl_flow(expocu_rtl(), store=store)
        for stage in VHDL_STAGES:
            assert store.counters["hit"][stage] == 1, stage
        assert sum(store.counters["miss"].values()) == 0
        assert canonical_json(warm.summary()) == canonical_json(cold.summary())


class TestSweepReuse:
    def test_sweep_replays_entries_warmed_by_earlier_runs(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_osss_flow(make_probe(period=10), store=store)

        store = reopen(store)
        points = sweep(lambda period: make_probe(period=period),
                       [{"period": 10}, {"period": 20}], store=store)
        assert len(points) == 2
        # period=10 was warmed by the flow run above; period=20 is new.
        assert store.counters["hit"]["synthesize"] == 1
        assert store.counters["miss"]["synthesize"] == 1

        store = reopen(store)
        again = sweep(lambda period: make_probe(period=period),
                      [{"period": 10}, {"period": 20}], store=store)
        assert sum(store.counters["miss"].values()) == 0
        assert [p.row() for p in again] == [p.row() for p in points]

    def test_sweep_rejects_store_with_custom_flow(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        with pytest.raises(ValueError, match="store="):
            sweep(lambda: make_probe(), [{}], flow=lambda m: None,
                  store=store)


_WRITER = textwrap.dedent("""\
    import json, sys
    from repro.eval.flows import run_osss_flow
    from repro.store import ArtifactStore
    from tests.store.test_fingerprint import make_probe

    store = ArtifactStore(sys.argv[1])
    result = run_osss_flow(make_probe(), store=store)
    print(json.dumps(result.summary(), sort_keys=True))
""")


class TestConcurrentWriters:
    def test_parallel_builds_into_one_store_are_safe(self, tmp_path):
        script = tmp_path / "writer.py"
        script.write_text(_WRITER)
        cache = tmp_path / "cache"
        env = dict(
            os.environ,
            PYTHONPATH=os.pathsep.join([REPO_SRC, str(Path(REPO_SRC).parent)]),
        )
        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(cache)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        outputs = []
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            outputs.append(json.loads(out))
        assert outputs[0] == outputs[1]

        store = ArtifactStore(cache)
        assert store.verify()["ok"]
        # And the racy cold start left a fully warm cache behind.
        run_osss_flow(make_probe(), store=store)
        assert sum(store.counters["miss"].values()) == 0
