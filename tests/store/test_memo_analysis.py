"""The memoized ``testability`` stage and its serializer.

Mirrors ``test_memo_flow``: cold misses then warm hits, byte-identical
reports either way, plus the two serializer properties every artifact
format in the store upholds (exact round-trip, corrupt-document
rejection).
"""

import pytest

from repro.analyze import analyze_circuit
from repro.eval.flows import run_netlist_analysis
from repro.store import (
    ArtifactStore,
    StoreError,
    TESTABILITY_SCHEMA,
    canonical_json,
    deserialize_testability,
    serialize_testability,
    stage_version,
)
from tests.analyze.netlist.test_lints import seeded_circuit
from tests.netlist.test_sim_oracle import random_circuit
from tests.store.test_fingerprint import make_probe

ANALYSIS_STAGES = ("synthesize", "techmap", "opt", "testability")


class TestMemoizedAnalysis:
    def test_cold_misses_then_warm_hits_every_stage(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold_circuit, cold = run_netlist_analysis(make_probe(), store=store)
        for stage in ANALYSIS_STAGES:
            assert store.counters["miss"][stage] == 1, stage
            assert store.counters["store"][stage] == 1, stage
        assert sum(store.counters["hit"].values()) == 0

        store = ArtifactStore(store.root)
        warm_circuit, warm = run_netlist_analysis(make_probe(), store=store)
        for stage in ANALYSIS_STAGES:
            assert store.counters["hit"][stage] == 1, stage
        assert sum(store.counters["miss"].values()) == 0
        assert canonical_json(serialize_testability(warm, warm_circuit)) \
            == canonical_json(serialize_testability(cold, cold_circuit))

    def test_warm_matches_cache_disabled_run(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_netlist_analysis(make_probe(), store=store)
        warm_circuit, warm = run_netlist_analysis(
            make_probe(), store=ArtifactStore(store.root)
        )
        plain_circuit, plain = run_netlist_analysis(make_probe())
        assert canonical_json(serialize_testability(warm, warm_circuit)) \
            == canonical_json(serialize_testability(plain, plain_circuit))
        assert [d.as_dict() for d in warm.diagnostics] \
            == [d.as_dict() for d in plain.diagnostics]
        assert warm.summary() == plain.summary()

    def test_shares_prefix_stages_with_build_flow(self, tmp_path):
        from repro.eval.flows import run_osss_flow

        store = ArtifactStore(tmp_path / "cache")
        run_osss_flow(make_probe(), store=store)
        store = ArtifactStore(store.root)
        run_netlist_analysis(make_probe(), store=store)
        # Everything but the analysis itself was left warm by the build.
        for stage in ("synthesize", "techmap", "opt"):
            assert store.counters["hit"][stage] == 1, stage
        assert store.counters["miss"]["testability"] == 1

    def test_testability_stage_has_a_version(self):
        assert stage_version("testability")
        assert stage_version("testability") != stage_version("opt")


class TestTestabilityRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_document_is_exact(self, seed):
        circuit = random_circuit(seed)
        doc = serialize_testability(analyze_circuit(circuit), circuit)
        again = serialize_testability(
            deserialize_testability(doc, circuit), circuit
        )
        assert canonical_json(doc) == canonical_json(again)

    def test_restores_scores_classes_and_diagnostics(self):
        circuit = seeded_circuit()
        original = analyze_circuit(circuit)
        restored = deserialize_testability(
            serialize_testability(original, circuit), circuit
        )
        assert restored.design == original.design
        assert restored.testability.co == original.testability.co
        assert restored.testability.cc0 == original.testability.cc0
        # Roots are representation detail; the member sets must match.
        assert sorted(restored.collapse.equivalence.classes().values()) \
            == sorted(original.collapse.equivalence.classes().values())
        assert [d.as_dict() for d in restored.diagnostics] \
            == [d.as_dict() for d in original.diagnostics]
        assert restored.summary() == original.summary()

    def test_rejects_wrong_schema(self):
        circuit = seeded_circuit()
        doc = serialize_testability(analyze_circuit(circuit), circuit)
        doc["schema"] = "something/v0"
        with pytest.raises(StoreError, match=TESTABILITY_SCHEMA):
            deserialize_testability(doc, circuit)

    def test_rejects_mangled_document(self):
        circuit = seeded_circuit()
        doc = serialize_testability(analyze_circuit(circuit), circuit)
        doc["scores"] = [[999999, 1, 1, 1]]
        with pytest.raises(StoreError):
            deserialize_testability(doc, circuit)

    def test_rejects_foreign_nets(self):
        circuit = seeded_circuit()
        analysis = analyze_circuit(circuit)
        with pytest.raises(StoreError, match="outside the circuit"):
            serialize_testability(analysis, random_circuit(0))
