"""The ``repro build`` / ``repro cache`` commands and CLI error handling."""

import json

import pytest

from repro.cli import main
from repro.store import STORE_SCHEMA


def build(tmp_path, *extra):
    return main(["build", "--flow", "osss",
                 "--cache-dir", str(tmp_path / "cache"), "--json", *extra])


class TestBuildCommand:
    def test_cold_then_warm_json_is_byte_identical(self, tmp_path, capsys):
        assert build(tmp_path) == 0
        cold = capsys.readouterr()
        assert "miss" in cold.err
        assert build(tmp_path) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "0 miss(es)" in warm.err
        doc = json.loads(warm.out)
        assert [f["flow"] for f in doc["flows"]] == ["osss"]

    def test_no_cache_matches_cached_output(self, tmp_path, capsys):
        assert build(tmp_path) == 0
        cached = capsys.readouterr()
        assert build(tmp_path, "--no-cache") == 0
        plain = capsys.readouterr()
        assert plain.out == cached.out
        assert "cache:" not in plain.err

    def test_cold_flag_clears_before_building(self, tmp_path, capsys):
        assert build(tmp_path) == 0
        capsys.readouterr()
        assert build(tmp_path, "--cold") == 0
        err = capsys.readouterr().err
        assert "0 hit(s)" in err

    def test_text_mode_prints_table(self, tmp_path, capsys):
        assert main(["build", "--flow", "osss",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "fmax" in out and "osss" in out


class TestCacheCommand:
    @pytest.fixture
    def warmed(self, tmp_path, capsys):
        build(tmp_path)
        capsys.readouterr()
        return str(tmp_path / "cache")

    def test_stats(self, warmed, capsys):
        assert main(["cache", "--cache-dir", warmed, "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 8
        assert stats["objects"] > 0 and stats["bytes"] > 0

    def test_verify_ok_then_corruption_fails(self, warmed, capsys, tmp_path):
        assert main(["cache", "--cache-dir", warmed, "verify"]) == 0
        capsys.readouterr()
        from repro.store import ArtifactStore

        store = ArtifactStore(warmed)
        next(store._iter_objects()).write_bytes(b"junk")
        assert main(["cache", "--cache-dir", warmed, "verify"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt_objects"] == 1 and not report["ok"]
        assert main(["cache", "--cache-dir", warmed, "verify",
                     "--repair"]) == 1
        capsys.readouterr()
        assert main(["cache", "--cache-dir", warmed, "verify"]) == 0

    def test_gc_reports_removals(self, warmed, capsys):
        from repro.store import ArtifactStore

        ArtifactStore(warmed).put_object({"orphan": True})
        assert main(["cache", "--cache-dir", warmed, "gc"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed_objects"] == 1


class TestVersionAndErrors:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_synthesis_error_becomes_exit_code_2(self, monkeypatch, capsys,
                                                 tmp_path):
        import repro.serve.jobs
        from repro.synth import SynthesisError

        def explode():
            raise SynthesisError("shared object without guarded methods")

        monkeypatch.setattr(repro.serve.jobs, "default_design", explode)
        rc = main(["build", "--flow", "osss",
                   "--cache-dir", str(tmp_path / "c")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: shared object")
        assert "Traceback" not in err

    def test_netlist_error_becomes_exit_code_2(self, monkeypatch, capsys,
                                               tmp_path):
        import repro.eval
        from repro.netlist import NetlistError

        def explode(*args, **kwargs):
            raise NetlistError("unresolved black box ip_mult16")

        monkeypatch.setattr(repro.eval, "run_osss_flow", explode)
        rc = main(["build", "--flow", "osss",
                   "--cache-dir", str(tmp_path / "c")])
        assert rc == 2
        assert "repro: error: unresolved black box" in capsys.readouterr().err

    def test_store_error_becomes_exit_code_2(self, tmp_path, capsys):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "store.json").write_text('{"schema": "repro-store/v99"}')
        rc = main(["build", "--flow", "osss", "--cache-dir", str(root)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and STORE_SCHEMA in err
