"""Canonical fingerprints: stability within a process, sensitivity to change.

(Cross-process / ``PYTHONHASHSEED`` independence is covered by the
subprocess test in ``tests/synth/test_determinism.py``.)
"""

import pytest

from repro.cli import _default_design
from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.store import (
    StoreError,
    fingerprint_design,
    fingerprint_rtl,
    stage_key,
    stage_version,
)
from repro.types import Bit
from repro.types.spec import bit, unsigned


class Probe(Module):
    x = Input(unsigned(8))
    q = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.q.write(0)
        yield
        while True:
            self.q.write(self.x.read())
            yield


def make_probe(name="probe", period=10 * NS, rst_init=1):
    return Probe(name, Clock("clk", period),
                 Signal("rst", bit(), Bit(rst_init)))


class TestDesignFingerprint:
    def test_stable_across_instances(self):
        assert fingerprint_design(make_probe()) == \
            fingerprint_design(make_probe())

    def test_expocu_stable_across_instances(self):
        assert fingerprint_design(_default_design()) == \
            fingerprint_design(_default_design())

    def test_changes_with_instance_name(self):
        assert fingerprint_design(make_probe("a")) != \
            fingerprint_design(make_probe("b"))

    def test_changes_with_clock_period(self):
        assert fingerprint_design(make_probe(period=10 * NS)) != \
            fingerprint_design(make_probe(period=20 * NS))

    def test_changes_with_signal_initial_value(self):
        assert fingerprint_design(make_probe(rst_init=1)) != \
            fingerprint_design(make_probe(rst_init=0))

    def test_changes_with_template_arguments(self):
        from repro.expocu import ExpoCU

        def build(side):
            return ExpoCU[side, side]("expocu", Clock("clk", 15 * NS),
                                      Signal("rst", bit(), Bit(1)))

        assert fingerprint_design(build(8)) != fingerprint_design(build(16))

    def test_rejects_non_module(self):
        with pytest.raises(StoreError):
            fingerprint_design("not a module")


class TestRtlFingerprint:
    def test_matches_only_same_structure(self):
        from repro.rtl.ir import RtlModule

        def build(width):
            m = RtlModule("m")
            a = m.add_input("a", unsigned(width))
            m.add_output("y", a.read())
            return m

        assert fingerprint_rtl(build(8)) == fingerprint_rtl(build(8))
        assert fingerprint_rtl(build(8)) != fingerprint_rtl(build(9))


class TestStageKeys:
    def test_stage_version_is_stable(self):
        assert stage_version("opt") == stage_version("opt")
        assert len(stage_version("opt")) == 64

    def test_stage_versions_differ_between_stages(self):
        assert stage_version("opt") != stage_version("sta")

    def test_unknown_stage_rejected(self):
        with pytest.raises(StoreError, match="unknown flow stage"):
            stage_version("not_a_stage")

    def test_key_depends_on_inputs(self):
        assert stage_key("opt", "a") != stage_key("opt", "b")
        assert stage_key("opt", "a") == stage_key("opt", "a")

    def test_key_depends_on_stage(self):
        assert stage_key("sta", "a") != stage_key("pnr", "a")

    def test_key_separates_part_boundaries(self):
        # ("ab", "c") and ("a", "bc") must not collide.
        assert stage_key("opt", "ab", "c") != stage_key("opt", "a", "bc")
