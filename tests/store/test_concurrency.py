"""Concurrent use of the store layer: counters, locks, shared spans.

``repro serve`` runs memoized stages from several threads against one
:class:`ArtifactStore`, so the hit/miss/store counters are
read-modify-write races unless guarded (satellite: they now are), and
a wedged lock holder must surface as a clear :class:`StoreError`
instead of blocking a server thread forever.
"""

import threading

import pytest

from repro.obs import Tracer
from repro.obs.profiler import Span
from repro.store import ArtifactStore, StageRunner, StoreError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


THREADS = 8
ROUNDS = 25
KEYS = 4


class TestConcurrentCounters:
    def test_warm_hits_counted_exactly_under_contention(self, tmp_path):
        """T threads x R rounds x K warm keys -> exactly T*R*K hits."""
        store = ArtifactStore(tmp_path / "cache")
        runner = StageRunner(store)
        for k in range(KEYS):
            runner.run("opt", (f"k{k}",), compute=lambda k=k: {"v": k},
                       dump=lambda v: v, load=lambda d: d)
        assert store.counter_totals()["miss"] == KEYS

        barrier = threading.Barrier(THREADS)
        errors = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(ROUNDS):
                    for k in range(KEYS):
                        outcome = runner.run(
                            "opt", (f"k{k}",),
                            compute=lambda k=k: {"v": k},
                            dump=lambda v: v, load=lambda d: d)
                        assert outcome.hit
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        totals = store.counter_totals()
        # The exact totals are the regression: unguarded += on the
        # Counter loses increments under this contention.
        assert totals["hit"] == THREADS * ROUNDS * KEYS
        assert totals["miss"] == KEYS
        assert totals["store"] == KEYS
        assert store.counters["hit"]["opt"] == THREADS * ROUNDS * KEYS

    def test_counter_totals_snapshot_is_consistent(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store._count("hit", "opt")
        store._count("miss", "opt")
        totals = store.counter_totals()
        assert totals == {"hit": 1, "miss": 1, "store": 0, "corrupt": 0}


class TestConcurrentSpans:
    def test_span_count_never_loses_ticks(self):
        span = Span("shared", 0.0)
        barrier = threading.Barrier(THREADS)
        per_thread = 500

        def tick():
            barrier.wait()
            for _ in range(per_thread):
                span.count("events")

        threads = [threading.Thread(target=tick) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert span.meta["events"] == THREADS * per_thread

    def test_annotate_concurrent_with_snapshot(self):
        span = Span("shared", 0.0)
        stop = threading.Event()

        def annotate():
            n = 0
            while not stop.is_set():
                span.annotate(**{f"key{n % 7}": n})
                n += 1

        thread = threading.Thread(target=annotate)
        thread.start()
        try:
            for _ in range(200):
                snapshot = span.snapshot()  # must not raise mid-mutation
                assert isinstance(snapshot, dict)
        finally:
            stop.set()
            thread.join()

    def test_tracer_on_close_fires_per_span(self):
        closed = []
        tracer = Tracer("t", on_close=closed.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in closed] == ["inner", "outer"]


@pytest.mark.skipif(fcntl is None, reason="flock is POSIX-only")
class TestLockTimeout:
    def test_held_lock_times_out_with_clear_error(self, tmp_path):
        """A wedged lock holder -> StoreError, not an indefinite block."""
        import os

        store = ArtifactStore(tmp_path / "cache", lock_timeout_s=0.2)
        # flock is per open-file-description: a second fd on the lock
        # file conflicts even within one process.
        fd = os.open(store._lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            with pytest.raises(StoreError) as excinfo:
                store.store("opt", "k1", {"v": 1})
            message = str(excinfo.value)
            assert "timed out" in message
            assert str(store._lock_path) in message
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        # Lock released: the same operation now succeeds.
        assert store.store("opt", "k1", {"v": 1})

    def test_shared_readers_do_not_block_each_other(self, tmp_path):
        import os

        store = ArtifactStore(tmp_path / "cache", lock_timeout_s=0.5)
        store.store("opt", "k1", {"v": 1})
        fd = os.open(store._lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        fcntl.flock(fd, fcntl.LOCK_SH)  # a concurrent reader
        try:
            assert store.load("opt", "k1") == {"v": 1}
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def test_disabled_timeout_falls_back_to_blocking(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache", lock_timeout_s=None)
        assert store.store("opt", "k1", {"v": 1})
