"""Tests for the Fig. 7/8 procedural code generation (claim R3)."""

import random

import pytest

from repro.osss import HwClass, StateLayout, template
from repro.synth.codegen import generated_functions, resolve_class_text
from repro.types import Bit, BitVector, Unsigned
from repro.types.spec import bit, bits, unsigned


@template("REGSIZE", "RESETVALUE")
class ShiftReg(HwClass):
    @classmethod
    def layout(cls):
        return {"value": bits(cls.REGSIZE)}

    def construct(self):
        self.value = BitVector(self.REGSIZE, self.RESETVALUE)

    def reset(self) -> None:
        self.value = BitVector(self.REGSIZE, self.RESETVALUE)

    def write(self, new_value: bit()) -> None:
        self.value = self.value.range(self.REGSIZE - 2, 0).concat(
            Bit(new_value)
        )

    def rising_edge(self, index: int = 0) -> bit():
        return self.value.bit(index) & ~self.value.bit(index + 1)


class Counter(HwClass):
    @classmethod
    def layout(cls):
        return {"count": unsigned(8), "overflow": bit()}

    def step(self, amount: unsigned(8)) -> unsigned(8):
        total = self.count + amount
        if total > 255:
            self.overflow = Bit(1)
        self.count = total.resized(8)
        return self.count


class TestGeneratedText:
    def test_non_member_naming(self):
        text = resolve_class_text(ShiftReg[4, 0])
        assert "_ShiftReg_4_0_write_" in text
        assert "_this_" in text

    def test_layout_documented(self):
        text = resolve_class_text(ShiftReg[4, 0])
        assert "state vector of ShiftReg_4_0: 4 bit" in text

    def test_text_is_executable(self):
        namespace = {}
        exec(compile(resolve_class_text(ShiftReg[4, 0]), "<gen>", "exec"),
             namespace)
        assert callable(namespace["_ShiftReg_4_0_write_"])


class TestBehaviorPreservation:
    """The resolution adds nothing: generated functions == live objects."""

    def test_shiftreg_random_equivalence(self):
        cls = ShiftReg[6, 0]
        funcs = generated_functions(cls)
        layout = StateLayout.of(cls)
        live = cls()
        state = layout.pack(live).raw
        rng = random.Random(7)
        for _ in range(300):
            value = rng.randint(0, 1)
            live.write(Bit(value))
            state, _ = funcs["write"](state, value)
            assert state == layout.pack(live).raw
            state2, edge = funcs["rising_edge"](state)
            assert state2 == state
            assert edge == int(live.rising_edge(0))

    def test_counter_with_branch_and_return(self):
        funcs = generated_functions(Counter)
        layout = StateLayout.of(Counter)
        live = Counter()
        state = layout.pack(live).raw
        rng = random.Random(9)
        for _ in range(200):
            amount = rng.randint(0, 255)
            expected = live.step(Unsigned(8, amount))
            state, returned = funcs["step"](state, amount)
            assert state == layout.pack(live).raw
            assert returned == expected.value

    def test_reset_restores_template_value(self):
        cls = ShiftReg[4, 5]
        funcs = generated_functions(cls)
        state, _ = funcs["reset"](0xF)
        assert state == 5

    def test_static_default_parameters_specialize(self):
        funcs = generated_functions(ShiftReg[4, 0])
        # rising_edge generated with default index=0
        state = 0b0001
        _, edge = funcs["rising_edge"](state)
        assert edge == 1


class TestInheritanceResolution:
    def test_inherited_method_resolved_against_derived_layout(self):
        class Base(HwClass):
            @classmethod
            def layout(cls):
                return {"a": unsigned(4)}

            def bump(self) -> None:
                self.a = (self.a + 1).resized(4)

        class Derived(Base):
            @classmethod
            def layout(cls):
                return {"b": unsigned(4)}

            def both(self) -> None:
                self.bump()
                self.b = (self.b + self.a).resized(4)

        funcs = generated_functions(Derived)
        layout = StateLayout.of(Derived)
        live = Derived()
        state = layout.pack(live).raw
        for _ in range(5):
            live.both()
            state, _ = funcs["both"](state)
            assert state == layout.pack(live).raw
