"""Synthesis must be deterministic across processes.

Campaign reports embed generated net names, and ``run_campaign(jobs=N)``
workers rebuild the design in separate processes — so the synthesized
RTL (and everything downstream of it) must not depend on the per-process
string-hash seed.  Regression for the branch-merge in
``interp.merge_into``, which used to iterate a set of local names in
hash order.
"""

import os
import subprocess
import sys

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)

# A behavioral module whose dynamic `if` writes enough distinct locals
# that a hash-ordered branch merge reorders their holding registers.
PROBE = """
from repro.hdl import Clock, Module, Input, Output, NS, Signal
from repro.netlist import map_module, optimize
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Branchy(Module):
    x = Input(unsigned(8))
    q = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.q.write(Unsigned(8, 0))
        yield
        while True:
            # The locals below are written on one path only and read
            # after the merge: each needs a holding register, allocated
            # during the branch merge itself.
            if self.x.read() > Unsigned(8, 7):
                alpha = self.x.read()
                bravo = (alpha + alpha).resized(8)
                charlie = (bravo + alpha).resized(8)
                delta = (charlie + bravo).resized(8)
                echo = (delta + charlie).resized(8)
            else:
                alpha = Unsigned(8, 1)
            self.q.write(
                (alpha + bravo + charlie + delta + echo).resized(8)
            )
            yield


dut = Branchy("probe", Clock("clk", 10 * NS),
              Signal("rst", bit(), Bit(1)))
rtl = synthesize(dut, observe_children=False)
print("registers:", [r.name for r in rtl.registers])
circuit = map_module(rtl)
optimize(circuit)
print("nets:", [n.name for n in circuit.nets])
print("cells:", [c.name for c in circuit.cells])
"""


def _probe(script: str, hashseed: str) -> str:
    # A real file, not `-c`: the synthesizer reads method source via
    # inspect.getsource.
    env = dict(os.environ, PYTHONHASHSEED=hashseed,
               PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, script], env=env, capture_output=True,
        text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_synthesis_independent_of_string_hash_seed(tmp_path):
    script = tmp_path / "probe.py"
    script.write_text(PROBE)
    outputs = {_probe(str(script), seed) for seed in ("1", "2", "27")}
    assert len(outputs) == 1, "generated names differ across hash seeds"


# The design library extends the determinism contract to cache keys and
# stored artifacts: a fingerprint computed in one process must match one
# computed in another, or every warm rebuild silently goes cold.
STORE_PROBE = """
from repro.hdl import Clock, Module, Input, Output, NS, Signal
from repro.netlist import map_module
from repro.store import (
    digest_doc, fingerprint_design, serialize_circuit, serialize_rtl,
    stage_key,
)
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Probe(Module):
    x = Input(unsigned(8))
    q = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.q.write(Unsigned(8, 0))
        yield
        while True:
            self.q.write((self.x.read() + Unsigned(8, 3)).resized(8))
            yield


dut = Probe("probe", Clock("clk", 10 * NS),
            Signal("rst", bit(), Bit(1)))
fp = fingerprint_design(dut)
print("design:", fp)
print("key:", stage_key("synthesize", fp))
rtl = synthesize(dut, observe_children=False)
print("rtl:", digest_doc(serialize_rtl(rtl)))
print("netlist:", digest_doc(serialize_circuit(map_module(rtl))))
"""


def test_fingerprints_and_artifacts_independent_of_hash_seed(tmp_path):
    script = tmp_path / "store_probe.py"
    script.write_text(STORE_PROBE)
    outputs = {_probe(str(script), seed) for seed in ("1", "2", "27")}
    assert len(outputs) == 1, \
        "cache keys or serialized artifacts differ across hash seeds"
