"""Tests that non-synthesizable constructs are rejected with good errors."""

import pytest

from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.synth import SynthesisError, synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


def clkrst():
    return Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))


def synth_of(body_fn, ports=None):
    """Build a one-thread module around *body_fn* and synthesize it."""
    namespace = {"__init__": _init_with(body_fn), "run": body_fn}
    if ports:
        namespace.update(ports)
    cls = type("Dut", (Module,), namespace)
    clk, rst = clkrst()
    return synthesize(cls("dut", clk, rst))


def _init_with(body_fn):
    def __init__(self, name, clk, rst):
        Module.__init__(self, name)
        self.cthread(self.run, clock=clk, reset=rst)

    return __init__


class TestLoopRules:
    def test_dynamic_loop_without_yield_rejected(self):
        ports = {"seed": Input(unsigned(8))}

        def run(self):
            yield
            while True:
                value = self.seed.read()
                while value < 200:  # dynamic bound, no wait inside
                    value = (value + 1).resized(8)
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run, ports)
        assert excinfo.value.code == "OSS103"

    def test_constant_loop_without_yield_unrolls(self):
        ports = {"q": Output(unsigned(8))}

        def run(self):
            yield
            while True:
                value = Unsigned(8, 0)
                while value < 5:  # compile-time bound: legal, unrolls
                    value = (value + 1).resized(8)
                self.q.write(value)
                yield

        rtl = synth_of(run, ports)
        from repro.rtl import RtlSimulator

        sim = RtlSimulator(rtl)
        sim.step(reset=1)
        sim.step(reset=0)
        sim.step(reset=0)
        assert sim.peek_outputs()["q"] == 5

    def test_for_over_non_range_rejected(self):
        def run(self):
            yield
            for _ in [1, 2, 3]:
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run)
        assert excinfo.value.code == "OSS104"

    def test_yield_from_of_unknown_target_rejected(self):
        def run(self):
            yield
            while True:
                yield from range(3)  # not a port.call / helper
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run)
        assert excinfo.value.code == "OSS108"


class TestExpressionRules:
    def test_float_rejected(self):
        def run(self):
            yield
            while True:
                x = 1.5  # noqa: F841
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run)
        assert excinfo.value.code == "OSS102"

    def test_division_by_non_power_of_two_rejected(self):
        def run(self):
            yield
            value = Unsigned(8, 10)
            while True:
                value = (value // 3).resized(8)  # noqa: F841
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run)
        assert excinfo.value.code == "OSS105"

    def test_wide_condition_rejected(self):
        def run(self):
            yield
            value = Unsigned(8, 1)
            while True:
                if value:  # multi-bit truthiness is ambiguous
                    pass
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run)
        assert excinfo.value.code == "OSS110"

    def test_width_change_requires_resize(self):
        def run(self):
            yield
            value = Unsigned(8, 1)
            while True:
                value = value * value  # 16 bits into an 8-bit local
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run)
        assert excinfo.value.code == "OSS111"

    def test_chained_compare_rejected(self):
        def run(self):
            yield
            v = Unsigned(8, 1)
            while True:
                if 0 < v < 5:
                    pass
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run)
        assert excinfo.value.code == "OSS106"


class TestStructuralRules:
    def test_write_to_input_rejected(self):
        ports = {"data": Input(bit())}

        def run(self):
            yield
            while True:
                self.data.write(Bit(1))
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run, ports)
        assert excinfo.value.code == "OSS115"

    def test_two_drivers_rejected(self):
        class Dual(Module):
            out = Output(bit())

            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.cthread(self.one, clock=clk, reset=rst)
                self.cthread(self.two, clock=clk, reset=rst)

            def one(self):
                while True:
                    self.out.write(Bit(0))
                    yield

            def two(self):
                while True:
                    self.out.write(Bit(1))
                    yield

        clk, rst = clkrst()
        with pytest.raises(SynthesisError) as excinfo:
            synthesize(Dual("dual", clk, rst))
        assert excinfo.value.code == "OSS114"

    def test_clock_read_rejected(self):
        class ClockPeek(Module):
            out = Output(bit())

            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.clk_ref = clk
                self.cthread(self.run, clock=clk, reset=rst)

            def run(self):
                while True:
                    self.out.write(self.clk_ref.read())
                    yield

        clk, rst = clkrst()
        with pytest.raises(SynthesisError) as excinfo:
            synthesize(ClockPeek("peek", clk, rst))
        assert excinfo.value.code == "OSS115"

    def test_method_with_wait_rejected(self):
        from repro.osss import HwClass

        class Waity(HwClass):
            @classmethod
            def layout(cls):
                return {"x": unsigned(4)}

            def bad(self):
                yield  # waits are not allowed inside class methods

        class Host(Module):
            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.obj = Waity()
                self.cthread(self.run, clock=clk, reset=rst)

            def run(self):
                yield
                while True:
                    self.obj.bad()
                    yield

        clk, rst = clkrst()
        with pytest.raises(SynthesisError) as excinfo:
            synthesize(Host("host", clk, rst))
        assert excinfo.value.code == "OSS202"

    def test_combinational_method_cannot_hold_state(self):
        class Latchy(Module):
            a = Input(bit())
            q = Output(bit())

            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.cmethod(self.comb, [self.port("a")])

            def comb(self):
                if self.a.read():
                    self.q.write(Bit(1))
                # no else: q would hold -> latch

        clk, rst = clkrst()
        with pytest.raises(SynthesisError) as excinfo:
            synthesize(Latchy("latchy", clk, rst))
        assert excinfo.value.code == "OSS206"

    def test_recursion_rejected(self):
        from repro.osss import HwClass

        class Rec(HwClass):
            @classmethod
            def layout(cls):
                return {"x": unsigned(4)}

            def spin(self) -> None:
                self.spin()

        class Host(Module):
            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.obj = Rec()
                self.cthread(self.run, clock=clk, reset=rst)

            def run(self):
                yield
                while True:
                    self.obj.spin()
                    yield

        clk, rst = clkrst()
        with pytest.raises(SynthesisError) as excinfo:
            synthesize(Host("host", clk, rst))
        assert excinfo.value.code == "OSS201"

    def test_error_carries_line_number(self):
        def run(self):
            yield
            while True:
                x = 2.5  # noqa: F841
                yield

        with pytest.raises(SynthesisError) as excinfo:
            synth_of(run)
        assert "line" in str(excinfo.value)
        assert excinfo.value.code == "OSS102"
        assert excinfo.value.lineno is not None
