"""Tests for behavioral synthesis: FSM structure and cycle accuracy."""

import random

import pytest

from repro.hdl import Clock, Input, Module, NS, Output, Signal, Simulator
from repro.rtl import RtlSimulator
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


def clkrst():
    return Clock("clk", 10 * NS), Signal("rst", bit(), Bit(1))


def lockstep_check(factory, stimulus, observed, cycles=None):
    """Kernel-vs-RTL comparison helper for one module class."""
    clk, rst = clkrst()
    top = Module("top")
    top.clk, top.rst = clk, rst
    top.dut = factory(clk, rst)
    sim = Simulator(top)
    sim.run(20 * NS)
    rst.write(0)
    kernel = []
    for entry in stimulus:
        for name, value in entry.items():
            top.dut.port(name).drive(value)
        sim.run(10 * NS)
        kernel.append(tuple(int(top.dut.port(n).read()) for n in observed))
    clk2, rst2 = clkrst()
    rtl = synthesize(factory(clk2, rst2))
    rsim = RtlSimulator(rtl)
    rsim.step(reset=1)
    rsim.step(reset=1)
    generated = []
    for entry in stimulus:
        rsim.step(reset=0, **entry)
        outs = rsim.peek_outputs()
        generated.append(tuple(outs[n] for n in observed))
    assert kernel == generated
    return rtl


class Pipeline(Module):
    """Single-state dataflow: out = in1 * in2 registered once."""

    a = Input(unsigned(4))
    b = Input(unsigned(4))
    p = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.p.write(Unsigned(8, 0))
        yield
        while True:
            self.p.write(self.a.read() * self.b.read())
            yield


class Handshake(Module):
    """Control flow: wait for go, count n cycles, pulse done."""

    go = Input(bit())
    n = Input(unsigned(4))
    done = Output(bit())

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.done.write(Bit(0))
        yield
        while True:
            if not self.go.read():
                self.done.write(Bit(0))
                yield
                continue
            count = Unsigned(4, 0)
            limit = self.n.read()
            while count < limit:
                count = (count + 1).resized(4)
                yield
            self.done.write(Bit(1))
            yield


class Helpers(Module):
    """Behavioral helpers with parameters and return values."""

    x = Input(unsigned(8))
    y = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def _double_after_wait(self, value):
        yield
        return (value + value).resized(8)

    def run(self):
        self.y.write(Unsigned(8, 0))
        yield
        while True:
            doubled = yield from self._double_after_wait(self.x.read())
            self.y.write(doubled)
            yield


class TestCycleAccuracy:
    def test_pipeline(self, rng):
        stim = [dict(a=rng.randint(0, 15), b=rng.randint(0, 15))
                for _ in range(80)]
        lockstep_check(lambda c, r: Pipeline("p", c, r), stim, ["p"])

    def test_handshake_control_flow(self, rng):
        stim = []
        for _ in range(12):
            stim.append(dict(go=1, n=rng.randint(0, 10)))
            stim.extend(dict(go=0, n=0) for _ in range(14))
        lockstep_check(lambda c, r: Handshake("h", c, r), stim, ["done"])

    def test_behavioral_helpers(self, rng):
        stim = [dict(x=rng.randint(0, 255)) for _ in range(60)]
        lockstep_check(lambda c, r: Helpers("h", c, r), stim, ["y"])

    def test_reset_midstream(self):
        clk, rst = clkrst()
        top = Module("top")
        top.clk, top.rst = clk, rst
        top.dut = Handshake("h", clk, rst)
        sim = Simulator(top)
        sim.run(20 * NS)
        rst.write(0)
        top.dut.go.drive(1)
        top.dut.n.drive(9)
        sim.run(30 * NS)
        rst.write(1)  # yank reset mid-count
        sim.run(20 * NS)
        rst.write(0)
        sim.run(10 * NS)
        # RTL does the same
        clk2, rst2 = clkrst()
        rtl = synthesize(Handshake("h", clk2, rst2))
        rsim = RtlSimulator(rtl)
        rsim.step(reset=1)
        rsim.step(reset=1)
        for _ in range(3):
            rsim.step(reset=0, go=1, n=9)
        for _ in range(2):
            rsim.step(reset=1)
        rsim.step(reset=0, go=1, n=9)
        assert rsim.peek_outputs()["done"] == \
            int(top.dut.done.read())


class TestFsmStructure:
    def test_state_counts_recorded(self):
        clk, rst = clkrst()
        rtl = synthesize(Handshake("h", clk, rst))
        states = rtl.attributes["fsm_states"]["run"]
        assert 3 <= states <= 8  # entry, idle, count loop, done (+memo)

    def test_loop_states_memoized_not_unrolled(self):
        """The 15-iteration capable counter must not create 15 states."""
        clk, rst = clkrst()
        rtl = synthesize(Handshake("h", clk, rst))
        assert rtl.attributes["fsm_states"]["run"] < 10

    def test_static_for_with_yields_unrolls(self):
        class Unrolled(Module):
            q = Output(unsigned(4))

            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.cthread(self.run, clock=clk, reset=rst)

            def run(self):
                self.q.write(Unsigned(4, 0))
                yield
                while True:
                    for i in range(5):
                        self.q.write(Unsigned(4, i))
                        yield

        clk, rst = clkrst()
        rtl = synthesize(Unrolled("u", clk, rst))
        assert rtl.attributes["fsm_states"]["run"] >= 6

    def test_outputs_are_registered(self):
        clk, rst = clkrst()
        rtl = synthesize(Pipeline("p", clk, rst))
        assert any(r.name.endswith("_p") for r in rtl.registers)
