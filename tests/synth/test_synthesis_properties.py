"""Property-based synthesis checks: random programs stay cycle-accurate.

Hypothesis generates small synthesizable datapath programs; each is run on
the kernel and as generated RTL over random stimulus.  This is the fuzzing
counterpart to the hand-written equivalence tests, probing the symbolic
interpreter's operator coverage.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Clock, Module, NS, Signal, Simulator
from repro.rtl import RtlSimulator
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned

#: Statement templates over locals a, b and accumulator acc (all u8).
_STATEMENTS = [
    "acc = (acc + a).resized(8)",
    "acc = (acc - b).resized(8)",
    "acc = (a * b).resized(8)",
    "acc = (acc ^ a).resized(8)",
    "acc = (acc | b).resized(8)",
    "acc = (acc & a).resized(8)",
    "acc = (acc >> 1).resized(8)",
    "acc = (acc << 2).resized(8)",
    "acc = (~acc).resized(8)",
    "acc = acc.range(6, 0).concat(acc.bit(7)).to_unsigned()",
    "acc = (acc + 1).resized(8) if a > b else acc",
    "acc = a if acc.bit(0) else b",
    "acc = (acc // 4).resized(8)",
    "acc = (acc % 8).resized(8)",
]


def _build_module(statement_indices):
    lines = "\n            ".join(
        _STATEMENTS[i] for i in statement_indices
    )
    source = f"""
class GeneratedDut(Module):
    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.add_port("a", unsigned(8), "in")
        self.add_port("b", unsigned(8), "in")
        self.add_port("q", unsigned(8), "out")
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        acc = Unsigned(8, 0)
        self.q.write(acc)
        yield
        while True:
            a = self.a.read()
            b = self.b.read()
            {lines}
            self.q.write(acc)
            yield
"""
    namespace = {"Module": Module, "Unsigned": Unsigned, "Bit": Bit,
                 "unsigned": unsigned}
    filename = f"<generated:{tuple(statement_indices)}>"
    # Register the source with linecache so inspect.getsource (used by the
    # synthesizer's analyzer) can retrieve it.
    import linecache

    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    exec(compile(source, filename, "exec"), namespace)
    return namespace["GeneratedDut"]


@given(
    indices=st.lists(st.integers(0, len(_STATEMENTS) - 1), min_size=1,
                     max_size=6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_random_datapaths_cycle_accurate(indices, seed):
    dut_cls = _build_module(indices)
    rng = random.Random(seed)
    stim = [dict(a=rng.randint(0, 255), b=rng.randint(0, 255))
            for _ in range(25)]

    top = Module("top")
    top.clk = Clock("clk", 10 * NS)
    top.rst = Signal("rst", bit(), Bit(1))
    top.dut = dut_cls("dut", top.clk, top.rst)
    sim = Simulator(top)
    sim.run(20 * NS)
    top.rst.write(0)
    kernel = []
    for entry in stim:
        top.dut.port("a").drive(entry["a"])
        top.dut.port("b").drive(entry["b"])
        sim.run(10 * NS)
        kernel.append(int(top.dut.port("q").read()))

    rtl = synthesize(dut_cls("dut", Clock("clk", 10 * NS),
                             Signal("rst", bit(), Bit(1))))
    rsim = RtlSimulator(rtl)
    rsim.step(reset=1)
    rsim.step(reset=1)
    generated = []
    for entry in stim:
        rsim.step(reset=0, **entry)
        generated.append(rsim.peek_outputs()["q"])
    assert kernel == generated, (indices, seed)
