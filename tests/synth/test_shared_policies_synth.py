"""All scheduler policies through synthesis, plus combinational methods."""

import pytest

from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.osss import Fcfs, HwClass, RoundRobin, SharedObject, StaticPriority
from repro.rtl import RtlSimulator
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned

from tests.synth.test_fsm_synthesis import clkrst, lockstep_check


class Adder(HwClass):
    @classmethod
    def layout(cls):
        return {"uses": unsigned(8)}

    def add(self, a: unsigned(8), b: unsigned(8)) -> unsigned(9):
        self.uses = (self.uses + 1).resized(8)
        return a.resized(9) + b


def make_host(policy_factory):
    class Host(Module):
        go = Input(bit())
        out0 = Output(unsigned(9))
        out1 = Output(unsigned(9))

        def __init__(self, name, clk, rst):
            super().__init__(name)
            shared = SharedObject(f"{name}_srv", Adder(),
                                  scheduler=policy_factory())
            self.p0 = shared.client_port("p0")
            self.p1 = shared.client_port("p1")
            self.cthread(self.worker0, clock=clk, reset=rst)
            self.cthread(self.worker1, clock=clk, reset=rst)

        def worker0(self):
            self.out0.write(Unsigned(9, 0))
            yield
            while True:
                if self.go.read():
                    value = yield from self.p0.call(
                        "add", Unsigned(8, 5), Unsigned(8, 1))
                    self.out0.write(value)
                yield

        def worker1(self):
            self.out1.write(Unsigned(9, 0))
            yield
            while True:
                if self.go.read():
                    value = yield from self.p1.call(
                        "add", Unsigned(8, 9), Unsigned(8, 2))
                    self.out1.write(value)
                yield

    return Host


@pytest.mark.parametrize("policy", [RoundRobin, StaticPriority, Fcfs])
def test_policy_cycle_accuracy(policy, rng):
    stim = []
    for _ in range(10):
        stim.append(dict(go=1))
        stim.extend(dict(go=0) for _ in range(rng.randint(5, 10)))
    host = make_host(policy)
    lockstep_check(lambda c, r: host("h", c, r), stim, ["out0", "out1"])


@pytest.mark.parametrize("policy,name", [
    (RoundRobin, "round_robin"),
    (StaticPriority, "static_priority"),
    (Fcfs, "fcfs"),
])
def test_policy_recorded_in_arbiter(policy, name):
    clk, rst = clkrst()
    rtl = synthesize(make_host(policy)("h", clk, rst))
    arbiter = next(i for i in rtl.instances if i.name.startswith("arbiter"))
    assert arbiter.module.attributes["policy"] == name


class CombWrapper(Module):
    """A combinational method alongside a clocked thread."""

    a = Input(unsigned(8))
    b = Input(unsigned(8))
    larger = Output(unsigned(8))
    total = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cmethod(self.pick, [self.port("a"), self.port("b")])
        self.cthread(self.accumulate, clock=clk, reset=rst)

    def pick(self):
        if self.a.read() > self.b.read():
            self.larger.write(self.a.read())
        else:
            self.larger.write(self.b.read())

    def accumulate(self):
        total = Unsigned(8, 0)
        self.total.write(total)
        yield
        while True:
            total = (total + self.larger.read()).resized(8)
            self.total.write(total)
            yield


class TestCombinationalMethods:
    def test_comb_output_is_unregistered(self, rng):
        clk, rst = clkrst()
        rtl = synthesize(CombWrapper("c", clk, rst))
        sim = RtlSimulator(rtl)
        sim.step(reset=1)
        sim.drive(reset=0, a=9, b=4)
        # Combinational: visible in the same cycle, before any clock edge.
        assert sim.peek_outputs()["larger"] == 9

    def test_thread_reads_comb_wire(self, rng):
        stim = [dict(a=rng.randint(0, 200), b=rng.randint(0, 200))
                for _ in range(60)]
        lockstep_check(lambda c, r: CombWrapper("c", c, r), stim,
                       ["larger", "total"])
