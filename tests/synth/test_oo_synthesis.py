"""Tests for OO construct synthesis: objects, templates, polymorphism,
shared objects — each checked cycle-accurate against the kernel."""

import pytest

from repro.hdl import Clock, Input, Module, NS, Output, Signal, Simulator
from repro.osss import (
    HwClass,
    PolyVar,
    RoundRobin,
    SharedObject,
    StaticPriority,
    template,
)
from repro.rtl import RtlSimulator
from repro.synth import synthesize
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned

from tests.synth.test_fsm_synthesis import clkrst, lockstep_check


@template("WIDTH")
class Accumulator(HwClass):
    @classmethod
    def layout(cls):
        return {"total": unsigned(cls.WIDTH)}

    def add(self, amount):
        self.total = (self.total + amount).resized(self.WIDTH)

    def value(self):
        return self.total


class ObjHost(Module):
    inc = Input(unsigned(4))
    total = Output(unsigned(12))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.acc = Accumulator[12]()
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.total.write(Unsigned(12, 0))
        yield
        while True:
            self.acc.add(self.inc.read())
            self.total.write(self.acc.value())
            yield


class TestObjectSynthesis:
    def test_module_object_cycle_accurate(self, rng):
        stim = [dict(inc=rng.randint(0, 15)) for _ in range(100)]
        rtl = lockstep_check(lambda c, r: ObjHost("o", c, r), stim,
                             ["total"])
        assert any(r.name == "acc" for r in rtl.registers)

    def test_process_local_object(self, rng):
        class LocalObj(Module):
            inc = Input(unsigned(4))
            total = Output(unsigned(12))

            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.cthread(self.run, clock=clk, reset=rst)

            def run(self):
                acc = Accumulator[12]()
                self.total.write(Unsigned(12, 0))
                yield
                while True:
                    acc.add(self.inc.read())
                    self.total.write(acc.value())
                    yield

        stim = [dict(inc=rng.randint(0, 15)) for _ in range(60)]
        lockstep_check(lambda c, r: LocalObj("l", c, r), stim, ["total"])

    def test_object_reset_value_captured(self):
        clk, rst = clkrst()
        rtl = synthesize(ObjHost("o", clk, rst))
        reg = next(r for r in rtl.registers if r.name == "acc")
        assert reg.width == 12 and reg.reset_raw == 0


class PolyBase(HwClass):
    abstract = True

    @classmethod
    def layout(cls):
        return {"seen": unsigned(8)}

    def apply(self, a: unsigned(8)) -> unsigned(8):
        raise NotImplementedError


class Doubler(PolyBase):
    def apply(self, a: unsigned(8)) -> unsigned(8):
        self.seen = (self.seen + 1).resized(8)
        return (a + a).resized(8)


class Inverter(PolyBase):
    def apply(self, a: unsigned(8)) -> unsigned(8):
        return (~a).resized(8)


class PolyHost(Module):
    sel = Input(bit())
    x = Input(unsigned(8))
    y = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.op = PolyVar(PolyBase, [Doubler, Inverter])
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.y.write(Unsigned(8, 0))
        yield
        while True:
            if self.sel.read():
                self.op.assign(Inverter())
            else:
                self.op.assign(Doubler())
            yield
            self.y.write(self.op.apply(self.x.read()))
            yield


class TestPolymorphismSynthesis:
    def test_dispatch_cycle_accurate(self, rng):
        stim = [dict(sel=rng.randint(0, 1), x=rng.randint(0, 255))
                for _ in range(90)]
        rtl = lockstep_check(lambda c, r: PolyHost("p", c, r), stim, ["y"])
        names = {r.name for r in rtl.registers}
        assert "op_tag" in names and "op_state" in names

    def test_mux_inserted_for_dispatch(self):
        """§8: polymorphism synthesizes to selection multiplexers."""
        clk, rst = clkrst()
        rtl = synthesize(PolyHost("p", clk, rst))
        assert rtl.stats()["muxes"] > 0


class Server(HwClass):
    @classmethod
    def layout(cls):
        return {"count": unsigned(8)}

    def bump(self, amount: unsigned(8)) -> unsigned(8):
        self.count = (self.count + amount).resized(8)
        return self.count


class SharedHost(Module):
    """Two threads sharing one guarded object."""

    go = Input(bit())
    a_out = Output(unsigned(8))
    b_out = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        shared = SharedObject(f"{name}_srv", Server(),
                              scheduler=StaticPriority())
        self.pa = shared.client_port("a")
        self.pb = shared.client_port("b")
        self.cthread(self.worker_a, clock=clk, reset=rst)
        self.cthread(self.worker_b, clock=clk, reset=rst)

    def worker_a(self):
        self.a_out.write(Unsigned(8, 0))
        yield
        while True:
            if self.go.read():
                value = yield from self.pa.call("bump", Unsigned(8, 1))
                self.a_out.write(value)
            yield

    def worker_b(self):
        self.b_out.write(Unsigned(8, 0))
        yield
        while True:
            if self.go.read():
                value = yield from self.pb.call("bump", Unsigned(8, 2))
                self.b_out.write(value)
            yield


class TestSharedObjectSynthesis:
    def test_generated_arbiter_cycle_accurate(self, rng):
        stim = []
        for _ in range(15):
            stim.append(dict(go=1))
            stim.extend(dict(go=0) for _ in range(rng.randint(4, 9)))
        rtl = lockstep_check(lambda c, r: SharedHost("s", c, r), stim,
                             ["a_out", "b_out"])
        arbiters = [i for i in rtl.instances
                    if i.name.startswith("arbiter_")]
        assert len(arbiters) == 1
        assert arbiters[0].module.attributes["policy"] == "static_priority"

    def test_object_state_serialized_through_arbiter(self):
        stim = [dict(go=1)] + [dict(go=0)] * 12
        rtl = lockstep_check(lambda c, r: SharedHost("s", c, r), stim,
                             ["a_out", "b_out"])
        # Both clients observed distinct counter values: 1,3 or 2,3.
        sim = RtlSimulator(rtl)
        sim.step(reset=1)
        for entry in stim:
            sim.step(reset=0, **entry)
        outs = sim.peek_outputs()
        assert {outs["a_out"], outs["b_out"]} in ({1, 3}, {2, 3})
