"""Focused interpreter features: value methods, statics, fixed point."""

import pytest

from repro.hdl import Clock, Input, Module, NS, Output, Signal
from repro.rtl import RtlSimulator
from repro.synth import SynthesisError, synthesize
from repro.types import Bit, BitVector, FixedPoint, Unsigned
from repro.types.spec import bit, unsigned

from tests.synth.test_fsm_synthesis import clkrst, lockstep_check


class BitSurgery(Module):
    """with_bit / with_range / reductions / concat in one datapath."""

    x = Input(unsigned(8))
    q = Output(unsigned(8))
    parity = Output(bit())
    allset = Output(bit())

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.q.write(Unsigned(8, 0))
        self.parity.write(Bit(0))
        self.allset.write(Bit(0))
        yield
        while True:
            value = self.x.read().to_bits()
            value = value.with_bit(0, Bit(1))
            value = value.with_range(6, 4, BitVector(3, 0b101))
            self.q.write(value.to_unsigned())
            self.parity.write(value.reduce_xor())
            self.allset.write(value.reduce_and())
            yield


class StaticTricks(Module):
    """Compile-time helpers: min/max/len/abs, tuples, class constants."""

    x = Input(unsigned(8))
    q = Output(unsigned(8))

    WEIGHTS = (1, 3, 5)
    LIMIT = 2

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.q.write(Unsigned(8, 0))
        yield
        while True:
            total = Unsigned(16, 0)
            for i in range(min(len(self.WEIGHTS), 4)):
                weight = self.WEIGHTS[i]
                if i < self.LIMIT:
                    total = (total + self.x.read() * weight).resized(16)
            self.q.write(total.resized(8))
            yield


class TestValueMethods:
    def test_bit_surgery_cycle_accurate(self, rng):
        stim = [dict(x=rng.randint(0, 255)) for _ in range(80)]
        lockstep_check(lambda c, r: BitSurgery("b", c, r), stim,
                       ["q", "parity", "allset"])

    def test_static_helpers_fold(self, rng):
        stim = [dict(x=rng.randint(0, 255)) for _ in range(40)]
        rtl = lockstep_check(lambda c, r: StaticTricks("s", c, r), stim,
                             ["q"])
        # Only weights 1 and 3 are used (LIMIT=2): value = x*4 truncated.
        sim = RtlSimulator(rtl)
        sim.step(reset=1)
        sim.step(reset=0, x=10)
        sim.step(reset=0, x=10)
        assert sim.peek_outputs()["q"] == 40


class TestFixedPointPrototype:
    """Paper §6: fixed point is 'prototypic' — full simulation support,
    synthesis rejects it with a clear subset error."""

    def test_simulation_works(self):
        gain = FixedPoint(4, 4, 1.5)
        assert float(gain * FixedPoint(4, 4, 2.0)) == 3.0

    def test_synthesis_rejects_cleanly(self):
        class Fixy(Module):
            q = Output(bit())

            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.cthread(self.run, clock=clk, reset=rst)

            def run(self):
                yield
                while True:
                    k = FixedPoint(4, 4, 1.5)  # noqa: F841
                    self.q.write(Bit(0))
                    yield

        clk, rst = clkrst()
        with pytest.raises(SynthesisError):
            synthesize(Fixy("f", clk, rst))


class TestHelperDefaults:
    def test_helper_with_default_argument(self, rng):
        class Waiter(Module):
            q = Output(unsigned(8))

            def __init__(self, name, clk, rst):
                super().__init__(name)
                self.cthread(self.run, clock=clk, reset=rst)

            def _pause(self, n=3):
                count = Unsigned(4, 0)
                while count < n:
                    count = (count + 1).resized(4)
                    yield

            def run(self):
                value = Unsigned(8, 0)
                self.q.write(value)
                yield
                while True:
                    yield from self._pause()
                    value = (value + 1).resized(8)
                    self.q.write(value)
                    yield from self._pause(1)

        stim = [dict() for _ in range(40)]
        lockstep_check(lambda c, r: Waiter("w", c, r), stim, ["q"])
