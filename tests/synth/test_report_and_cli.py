"""Tests for the synthesis report and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.expocu import ExpoParamsUnit
from repro.hdl import Clock, NS, Signal
from repro.synth import class_inventory, design_report, rtl_inventory, synthesize
from repro.types import Bit
from repro.types.spec import bit


def params_pair():
    module = ExpoParamsUnit[128]("params", Clock("clk", 10 * NS),
                                 Signal("rst", bit(), Bit(1)))
    rtl = synthesize(module, observe_children=False)
    return module, rtl


class TestDesignReport:
    def test_class_inventory_finds_shared_object_class(self):
        module, _ = params_pair()
        names = {record["name"] for record in class_inventory(module)}
        assert "SharedMultiplier" in names

    def test_rtl_inventory_fields(self):
        module, rtl = params_pair()
        inventory = rtl_inventory(rtl)
        assert inventory["state_bits"] > 50
        assert "exposure_calc" in inventory["fsms"]
        assert inventory["arbiters"] and \
            inventory["arbiters"][0]["policy"] == "round_robin"

    def test_report_text(self):
        module, rtl = params_pair()
        text = design_report(module, rtl)
        assert "SharedMultiplier" in text
        assert "states" in text
        assert "arbiter" in text.lower()


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("demo", "synth", "flows", "resolve", "effort"):
            assert command in text

    def test_resolve_command(self, capsys):
        assert main(["resolve", "--regsize", "3"]) == 0
        out = capsys.readouterr().out
        assert "_SyncRegister_3_0_write_" in out

    def test_effort_command(self, capsys):
        assert main(["effort"]) == 0
        out = capsys.readouterr().out
        assert "vhdl_rtl" in out

    def test_synth_command_writes_verilog(self, tmp_path, capsys):
        verilog = tmp_path / "expocu.v"
        assert main(["synth", "--verilog", str(verilog)]) == 0
        assert verilog.exists()
        assert "module" in verilog.read_text()
        assert "OSSS synthesis report" in capsys.readouterr().out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
