"""Tests for VCD tracing, including object tracing (paper §9)."""

from repro.hdl import Clock, Module, NS, Signal, Simulator, VcdTrace
from repro.osss import HwClass
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Toggler(Module):
    def __init__(self, name, clk):
        super().__init__(name)
        self.out = Signal("out", bit())
        self.cthread(self.run, clock=clk)

    def run(self):
        level = Bit(0)
        while True:
            level = ~level
            self.out.write(level)
            yield


class Accumulator(HwClass):
    @classmethod
    def layout(cls):
        return {"total": unsigned(8), "last": unsigned(8)}

    def add(self, value):
        self.total = (self.total + value).resized(8)
        self.last = value


def build(trace_objects=False):
    top = Module("top")
    top.clk = Clock("clk", 10 * NS)
    top.t = Toggler("t", top.clk)
    sim = Simulator(top)
    trace = VcdTrace(sim)
    trace.trace_signal(top.t.out)
    return top, sim, trace


class TestSignalTracing:
    def test_changes_recorded(self):
        top, sim, trace = build()
        sim.run(50 * NS)
        assert trace.change_count >= 5

    def test_vcd_structure(self):
        top, sim, trace = build()
        sim.run(30 * NS)
        text = trace.render()
        assert "$timescale 1ps $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions" in text
        assert "#" in text

    def test_no_redundant_changes(self):
        top, sim, trace = build()
        sim.run(40 * NS)
        body = trace.render().split("$enddefinitions $end\n")[1]
        # Alternating 0/1 on one variable: consecutive values must differ.
        values = [line[0] for line in body.splitlines()
                  if line and line[0] in "01"]
        assert all(a != b for a, b in zip(values, values[1:]))

    def test_write_file(self, tmp_path):
        top, sim, trace = build()
        sim.run(20 * NS)
        path = tmp_path / "wave.vcd"
        trace.write(str(path))
        assert path.read_text().startswith("$timescale")


class TestObjectTracing:
    def test_object_members_traced(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)

        class Owner(Module):
            def __init__(self, name, clk):
                super().__init__(name)
                self.acc = Accumulator()
                self.cthread(self.run, clock=clk)

            def run(self):
                while True:
                    self.acc.add(Unsigned(8, 3))
                    yield

        top.o = Owner("o", top.clk)
        sim = Simulator(top)
        trace = VcdTrace(sim)
        trace.trace_object(top.o.acc, name="acc")
        sim.run(50 * NS)
        text = trace.render()
        assert "acc.total" in text and "acc.last" in text
        assert trace.change_count > 2

    def test_untraceable_object_rejected(self):
        top, sim, trace = build()
        import pytest

        with pytest.raises(TypeError):
            trace.trace_object(object())

    def test_trace_module_covers_signals(self):
        top, sim, trace = build()
        trace2 = VcdTrace(sim)
        trace2.trace_module(top)
        assert trace2.writer.var_count >= 2  # clk + out at least


def build_object_owner():
    top = Module("top")
    top.clk = Clock("clk", 10 * NS)

    class Owner(Module):
        def __init__(self, name, clk):
            super().__init__(name)
            self.acc = Accumulator()
            self.cthread(self.run, clock=clk)

        def run(self):
            while True:
                self.acc.add(Unsigned(8, 3))
                yield

    top.o = Owner("o", top.clk)
    sim = Simulator(top)
    return top, sim


class TestDetach:
    """Regression tests for the cycle-hook leak (satellite fix).

    ``VcdTrace`` used to leave ``_sample_objects`` on the simulator's
    ``cycle_hooks`` forever, so a discarded trace kept sampling (and
    kept its objects alive) for the simulator's lifetime.
    """

    def test_detach_releases_cycle_hook(self):
        top, sim = build_object_owner()
        trace = VcdTrace(sim)
        hooks_before = len(sim.cycle_hooks)
        trace.detach()
        assert len(sim.cycle_hooks) == hooks_before - 1
        assert not trace.attached

    def test_detach_is_idempotent(self):
        top, sim = build_object_owner()
        trace = VcdTrace(sim)
        other = VcdTrace(sim)  # its hook must survive trace's detaches
        trace.detach()
        trace.detach()
        trace.close()
        assert other.attached
        assert sim.cycle_hooks.count(other._sample_objects) == 1

    def test_detached_trace_stops_sampling(self):
        top, sim = build_object_owner()
        trace = VcdTrace(sim)
        trace.trace_object(top.o.acc, name="acc")
        sim.run(50 * NS)
        frozen = trace.change_count
        trace.detach()
        sim.run(50 * NS)
        assert trace.change_count == frozen
        # The document stays renderable after detach.
        assert "acc.total" in trace.render()

    def test_two_traces_do_not_double_sample(self):
        top, sim = build_object_owner()
        first = VcdTrace(sim)
        first.trace_object(top.o.acc, name="acc")
        first.detach()
        second = VcdTrace(sim)
        second.trace_object(top.o.acc, name="acc")
        sim.run(50 * NS)
        # Only the live trace accumulates; the detached one is frozen at
        # its initial sample.
        assert second.change_count > first.change_count

    def test_detach_releases_signal_hooks(self):
        top, sim, trace = build()
        sim.run(20 * NS)
        count = trace.change_count
        trace.detach()
        sim.run(20 * NS)
        assert trace.change_count == count
