"""Tests for signals, clocks and the delta-cycle update semantics."""

import pytest

from repro.hdl import Clock, Module, NS, Signal, Simulator, signal_like
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class TestSignalBasics:
    def test_initial_value(self):
        assert Signal("s", unsigned(8)).read() == Unsigned(8, 0)

    def test_explicit_init(self):
        assert Signal("s", bit(), Bit(1)).read() == Bit(1)

    def test_write_without_simulator_commits(self):
        sig = Signal("s", unsigned(8))
        import repro.hdl.kernel as kernel

        saved = kernel._CURRENT
        kernel._CURRENT = None
        try:
            sig.write(Unsigned(8, 42))
            assert sig.read().value == 42
        finally:
            kernel._CURRENT = saved

    def test_int_coercion_on_write(self):
        sig = Signal("s", unsigned(8))
        import repro.hdl.kernel as kernel

        saved = kernel._CURRENT
        kernel._CURRENT = None
        try:
            sig.write(300)  # wraps to 44
            assert sig.read().value == 44
            flag = Signal("f", bit())
            flag.write(True)
            assert flag.read() == Bit(1)
        finally:
            kernel._CURRENT = saved

    def test_type_check_on_write(self):
        sig = Signal("s", unsigned(8))
        with pytest.raises(ValueError):
            sig.write(Unsigned(4, 1))

    def test_signal_like(self):
        sig = signal_like(Unsigned(12, 7), "probe")
        assert sig.spec == unsigned(12) and sig.read().value == 7


class TestClock:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            Clock("clk", 0)
        with pytest.raises(ValueError):
            Clock("clk", 3)

    def test_half_period(self):
        assert Clock("clk", 10 * NS).half_period == 5 * NS

    def test_toggles_under_simulator(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        sim = Simulator(top)
        values = []
        for _ in range(4):
            sim.run(5 * NS)
            values.append(int(top.clk.read()))
        assert values == [1, 0, 1, 0]


class TestDeferredUpdate:
    def test_write_visible_next_delta(self):
        """Two threads exchanging through signals see old values (R6 base)."""
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.a = Signal("a", unsigned(8))
        top.b = Signal("b", unsigned(8))
        observed = []

        class Swap(Module):
            def __init__(self, name, clk, src, dst):
                super().__init__(name)
                self.src, self.dst = src, dst
                self.cthread(self.run, clock=clk)

            def run(self):
                while True:
                    self.dst.write((self.src.read() + 1).resized(8))
                    yield

        top.p1 = Swap("p1", top.clk, top.a, top.b)
        top.p2 = Swap("p2", top.clk, top.b, top.a)
        sim = Simulator(top)
        sim.run(40 * NS)  # rising edges at 5/15/25/35 ns
        # Each cycle both read committed values: a and b leapfrog.
        assert top.a.read().value == 4 and top.b.read().value == 4

    def test_edge_events_fire_in_order(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        seen = []

        class Watcher(Module):
            def __init__(self, name, clk):
                super().__init__(name)
                self.cmethod(self.on_pos, [(clk, "pos")],
                             run_at_start=False)
                self.cmethod(self.on_neg, [(clk, "neg")],
                             run_at_start=False)

            def on_pos(self):
                seen.append("pos")

            def on_neg(self):
                seen.append("neg")

        top.w = Watcher("w", top.clk)
        sim = Simulator(top)
        sim.run(20 * NS)
        assert seen == ["pos", "neg", "pos", "neg"]
