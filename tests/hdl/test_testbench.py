"""Tests for the testbench utilities (drivers, monitors, scoreboards)."""

from repro.hdl import (
    ChangeMonitor,
    Clock,
    Input,
    Module,
    NS,
    Output,
    Scoreboard,
    Signal,
    Simulator,
    StimulusDriver,
    collect_outputs,
)
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Doubler(Module):
    x = Input(unsigned(8))
    y = Output(unsigned(8))

    def __init__(self, name, clk, rst):
        super().__init__(name)
        self.cthread(self.run, clock=clk, reset=rst)

    def run(self):
        self.y.write(Unsigned(8, 0))
        yield
        while True:
            self.y.write((self.x.read() + self.x.read()).resized(8))
            yield


def build(program, expect=None):
    top = Module("tb")
    top.clk = Clock("clk", 10 * NS)
    top.rst = Signal("rst", bit(), Bit(0))
    top.dut = Doubler("dut", top.clk, top.rst)
    top.driver = StimulusDriver(
        "drv", top.clk, {"x": top.dut.port("x")}, program
    )
    top.monitor = ChangeMonitor("mon", top.clk, top.dut.port("y"))
    if expect is not None:
        top.score = Scoreboard("sb", top.clk, top.dut.port("y"), expect)
    sim = Simulator(top)
    return top, sim


class TestStimulusDriver:
    def test_program_applied_per_cycle(self):
        top, sim = build([{"x": 1}, {"x": 2}, {"x": 3}])
        sim.run(60 * NS)
        assert top.driver.finished
        assert top.driver.cycles_driven == 3
        assert top.dut.y.read().value == 6

    def test_missing_keys_hold(self):
        top, sim = build([{"x": 5}, {}, {}])
        sim.run(60 * NS)
        assert top.dut.y.read().value == 10


class TestChangeMonitor:
    def test_records_changes_only(self):
        top, sim = build([{"x": 1}, {"x": 1}, {"x": 4}, {"x": 4}])
        sim.run(80 * NS)
        assert top.monitor.values == [0, 2, 8]

    def test_cycle_stamps_monotonic(self):
        top, sim = build([{"x": v} for v in (1, 2, 3)])
        sim.run(80 * NS)
        stamps = [cycle for cycle, _ in top.monitor.log]
        assert stamps == sorted(stamps)


class TestScoreboard:
    def test_passing(self):
        # y lags x by two activations (driver write + dut register).
        expected = {2: 2, 3: 4, 4: 6}
        top, sim = build([{"x": 1}, {"x": 2}, {"x": 3}],
                         expect=lambda c: expected.get(c))
        sim.run(100 * NS)
        assert top.score.passed, top.score.failures
        assert top.score.checked == 3

    def test_failure_recorded(self):
        top, sim = build([{"x": 1}],
                         expect=lambda c: 99 if c == 3 else None)
        sim.run(80 * NS)
        assert not top.score.passed
        cycle, expected, actual = top.score.failures[0]
        assert (cycle, expected) == (3, 99) and actual != 99


class TestCollectOutputs:
    def test_snapshot(self):
        top, sim = build([{"x": 7}])
        sim.run(40 * NS)
        snap = collect_outputs(top.dut, ["y"])
        assert snap == {"y": 14}
