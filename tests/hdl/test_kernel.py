"""Tests for the simulation kernel: scheduling, resets, determinism."""

import pytest

from repro.hdl import (
    Clock,
    Module,
    NS,
    Signal,
    SimulationError,
    Simulator,
    format_time,
)
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Counter(Module):
    def __init__(self, name, clk, rst=None, reset_active=1):
        super().__init__(name)
        self.count = Signal("count", unsigned(8))
        self.cthread(self.run, clock=clk, reset=rst,
                     reset_active=reset_active)

    def run(self):
        value = Unsigned(8, 0)
        self.count.write(value)
        yield
        while True:
            value = (value + 1).resized(8)
            self.count.write(value)
            yield


def make_top(**counter_kwargs):
    top = Module("top")
    top.clk = Clock("clk", 10 * NS)
    top.rst = Signal("rst", bit(), Bit(1))
    top.ctr = Counter("ctr", top.clk, **counter_kwargs)
    return top


class TestScheduling:
    def test_thread_advances_per_edge(self):
        top = make_top()
        sim = Simulator(top)
        sim.run(55 * NS)  # edges at 5,15,25,35,45,55 -> 6 activations
        assert top.ctr.count.read().value == 5

    def test_run_until(self):
        top = make_top()
        sim = Simulator(top)
        reached = sim.run_until(
            lambda: top.ctr.count.read().value >= 3, max_time=1000 * NS
        )
        assert reached and top.ctr.count.read().value >= 3

    def test_run_until_timeout(self):
        top = make_top()
        sim = Simulator(top)
        assert not sim.run_until(lambda: False, max_time=50 * NS)

    def test_run_cycles(self):
        top = make_top()
        sim = Simulator(top)
        sim.run_cycles(top.clk, 4)
        assert sim.now == 40 * NS

    def test_cannot_schedule_in_past(self):
        sim = Simulator(make_top())
        sim.run(20 * NS)
        with pytest.raises(SimulationError):
            sim.at(5 * NS, lambda: None)

    def test_deterministic_across_runs(self):
        def trace():
            top = make_top()
            sim = Simulator(top)
            values = []
            for _ in range(10):
                sim.run(10 * NS)
                values.append(top.ctr.count.read().value)
            return values

        assert trace() == trace()


class TestReset:
    def test_sync_reset_restarts_thread(self):
        top = make_top(rst=None)
        top.ctr2 = Counter("ctr2", top.clk, rst=top.rst)
        sim = Simulator(top)
        sim.run(35 * NS)
        assert top.ctr2.count.read().value == 0  # held in reset
        top.rst.write(0)
        sim.run(30 * NS)
        assert top.ctr2.count.read().value == 3

    def test_reset_reassert(self):
        top = make_top(rst=None)
        top.ctr2 = Counter("ctr2", top.clk, rst=top.rst)
        sim = Simulator(top)
        top.rst.write(0)
        sim.run(40 * NS)
        before = top.ctr2.count.read().value
        assert before > 0
        top.rst.write(1)
        sim.run(20 * NS)
        assert top.ctr2.count.read().value == 0

    def test_active_low_reset(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.rst_n = Signal("rst_n", bit(), Bit(0))
        top.ctr = Counter("ctr", top.clk, rst=top.rst_n, reset_active=0)
        sim = Simulator(top)
        sim.run(30 * NS)
        assert top.ctr.count.read().value == 0
        top.rst_n.write(1)
        sim.run(30 * NS)
        assert top.ctr.count.read().value == 3


class TestProcessRules:
    def test_non_generator_body_rejected(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)

        class Bad(Module):
            def __init__(self, name, clk):
                super().__init__(name)
                self.cthread(self.run, clock=clk)

            def run(self):
                return 42  # not a generator

        top.bad = Bad("bad", top.clk)
        sim = Simulator(top)
        with pytest.raises(TypeError):
            sim.run(20 * NS)

    def test_terminating_thread_stops(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        ticks = []

        class Finite(Module):
            def __init__(self, name, clk):
                super().__init__(name)
                self.cthread(self.run, clock=clk)

            def run(self):
                ticks.append(1)
                yield
                ticks.append(2)

        top.f = Finite("f", top.clk)
        sim = Simulator(top)
        sim.run(100 * NS)
        assert ticks == [1, 2]
        assert top.f.processes[0].terminated


class TestFormatTime:
    def test_units(self):
        assert format_time(0) == "0s"
        assert format_time(15 * NS) == "15ns"
        assert format_time(1500) == "1.500ns"
