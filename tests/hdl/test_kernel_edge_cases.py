"""Edge-case kernel tests: delta limits, hooks, events, timing services."""

import pytest

from repro.hdl import (
    Clock,
    Event,
    Module,
    NS,
    Signal,
    SimulationError,
    Simulator,
)
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class TestDeltaCycleLimit:
    def test_combinational_loop_detected(self):
        top = Module("top")
        top.a = Signal("a", bit())
        top.b = Signal("b", bit())

        class Osc(Module):
            def __init__(self, name, src, dst):
                super().__init__(name)
                self.src, self.dst = src, dst
                self.cmethod(self.flip, [src])

            def flip(self):
                self.dst.write(~self.src.read())

        top.o1 = Osc("o1", top.a, top.b)
        top.o2 = Osc("o2", top.b, top.a)
        sim = Simulator(top, max_delta=50)
        top.a.write(Bit(1))
        with pytest.raises(SimulationError):
            sim.run(10 * NS)


class TestTimedServices:
    def test_after_callback(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        sim = Simulator(top)
        fired = []
        sim.after(23 * NS, lambda: fired.append(sim.now))
        sim.run(50 * NS)
        assert fired == [23 * NS]

    def test_cycle_hooks_called_per_timestep(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        sim = Simulator(top)
        ticks = []
        sim.cycle_hooks.append(lambda: ticks.append(sim.now))
        sim.run(40 * NS)
        assert len(ticks) == 8  # two hook calls per full period

    def test_pending_testbench_writes_settle_before_next_edge(self):
        """Writes between run() calls are visible to combinational logic
        before the following clock edge (regression for the comb-method
        sampling race)."""
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.a = Signal("a", unsigned(8))
        top.doubled = Signal("doubled", unsigned(8))
        top.seen = Signal("seen", unsigned(8))

        class Dut(Module):
            def __init__(self, name, clk, a, doubled, seen):
                super().__init__(name)
                self.a, self.doubled, self.seen = a, doubled, seen
                self.cmethod(self.comb, [a])
                self.cthread(self.reg, clock=clk)

            def comb(self):
                self.doubled.write(
                    (self.a.read() + self.a.read()).resized(8)
                )

            def reg(self):
                while True:
                    self.seen.write(self.doubled.read())
                    yield

        top.dut = Dut("dut", top.clk, top.a, top.doubled, top.seen)
        sim = Simulator(top)
        sim.run(10 * NS)
        top.a.write(Unsigned(8, 21))
        sim.run(10 * NS)  # one edge: thread must see doubled == 42
        assert top.seen.read().value == 42


class TestEvents:
    def test_subscribe_unsubscribe(self):
        event = Event("e")

        class FakeProcess:
            uid = 1

        process = FakeProcess()
        event.subscribe(process)
        event.subscribe(process)  # idempotent
        assert event.subscribers == (process,)
        event.unsubscribe(process)
        assert event.subscribers == ()
        event.unsubscribe(process)  # harmless

    def test_notify_without_simulator(self):
        import repro.hdl.kernel as kernel

        saved = kernel._CURRENT
        kernel._CURRENT = None
        try:
            Event("lonely").notify()  # must not raise
        finally:
            kernel._CURRENT = saved


class TestHwObjectRegistry:
    def test_register_and_list(self):
        from repro.osss import HwClass

        class Thing(HwClass):
            @classmethod
            def layout(cls):
                return {"v": unsigned(4)}

        module = Module("m")
        thing = module.register_hw_object("thing", Thing())
        assert module.hw_objects() == {"thing": thing}
