"""Tests for the module hierarchy, ports and port binding."""

import pytest

from repro.hdl import Clock, Input, Module, NS, Output, Signal, Simulator
from repro.types import Bit, Unsigned
from repro.types.spec import bit, unsigned


class Leaf(Module):
    data = Input(unsigned(8))
    result = Output(unsigned(8))

    def __init__(self, name, clk):
        super().__init__(name)
        self.cthread(self.run, clock=clk)

    def run(self):
        while True:
            self.result.write((self.data.read() + 1).resized(8))
            yield


class TestHierarchy:
    def test_adoption_and_full_name(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.leaf = Leaf("leaf", top.clk)
        assert top.leaf.parent is top
        assert top.leaf.full_name == "top.leaf"
        assert top.leaf in top.children

    def test_iter_modules(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.a = Leaf("a", top.clk)
        top.b = Leaf("b", top.clk)
        assert [m.name for m in top.iter_modules()] == ["top", "a", "b"]

    def test_signal_adoption_and_naming(self):
        top = Module("top")
        top.probe = Signal("probe", bit())
        Simulator(top)
        assert top.probe.name == "top.probe"


class TestPorts:
    def test_declared_ports_materialize(self):
        leaf = Leaf("leaf", Clock("clk", 10 * NS))
        assert set(leaf.ports()) == {"data", "result"}
        assert leaf.port("data").direction == "in"

    def test_port_reassignment_blocked(self):
        leaf = Leaf("leaf", Clock("clk", 10 * NS))
        with pytest.raises(AttributeError):
            leaf.data = Signal("x", unsigned(8))

    def test_input_write_rejected(self):
        leaf = Leaf("leaf", Clock("clk", 10 * NS))
        with pytest.raises(PermissionError):
            leaf.data.write(Unsigned(8, 1))

    def test_output_drive_rejected(self):
        leaf = Leaf("leaf", Clock("clk", 10 * NS))
        with pytest.raises(PermissionError):
            leaf.result.drive(Unsigned(8, 1))

    def test_bind_type_check(self):
        leaf = Leaf("leaf", Clock("clk", 10 * NS))
        with pytest.raises(TypeError):
            leaf.data.bind(Signal("narrow", unsigned(4)))

    def test_dynamic_add_port(self):
        module = Module("m")
        module.add_port("extra", unsigned(3), "in")
        assert module.extra.spec == unsigned(3)
        with pytest.raises(ValueError):
            module.add_port("extra", unsigned(3), "in")

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            Module("m").nonexistent


class TestPortBinding:
    def test_port_to_signal(self):
        leaf = Leaf("leaf", Clock("clk", 10 * NS))
        net = Signal("net", unsigned(8), Unsigned(8, 7))
        leaf.data.bind(net)
        assert leaf.data.read().value == 7

    def test_port_to_port_deferred(self):
        """Children may bind to a parent port before the parent is wired."""
        clk = Clock("clk", 10 * NS)

        class Wrapper(Module):
            data = Input(unsigned(8))

            def __init__(self, name):
                super().__init__(name)
                self.leaf = Leaf("leaf", clk)
                self.leaf.port("data").bind(self.port("data"))

        wrapper = Wrapper("w")
        external = Signal("ext", unsigned(8), Unsigned(8, 9))
        wrapper.port("data").bind(external)  # rebinding after children
        assert wrapper.leaf.data.read().value == 9
        assert wrapper.leaf.data.signal is external

    def test_unbound_port_lazily_creates_signal(self):
        leaf = Leaf("leaf", Clock("clk", 10 * NS))
        assert not leaf.data.bound
        assert leaf.data.signal is leaf.data.signal

    def test_end_to_end_through_hierarchy(self):
        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.leaf = Leaf("leaf", top.clk)
        sim = Simulator(top)
        top.leaf.data.drive(Unsigned(8, 41))
        sim.run(20 * NS)
        assert top.leaf.result.read().value == 42
