"""Tests for the hand-written VHDL-flow baseline modules."""

import pytest

from repro.baseline import (
    cam_ctrl_rtl,
    expocu_rtl,
    histogram_rtl,
    i2c_rtl,
    ip_library,
    multiplier_ip_circuit,
    params_rtl,
    resetctl_rtl,
    sync_rtl,
    threshold_rtl,
)
from repro.netlist import GateSimulator, link, map_module, optimize
from repro.rtl import RtlSimulator, lint_module


class TestLintAll:
    @pytest.mark.parametrize("factory", [
        sync_rtl, histogram_rtl, threshold_rtl, resetctl_rtl,
        params_rtl, i2c_rtl, cam_ctrl_rtl,
    ])
    def test_units_lint_clean_of_errors(self, factory):
        lint_module(factory())  # raises on structural errors

    def test_top_validates(self):
        expocu_rtl().validate()


class TestSyncRtl:
    def test_edge_pulse(self):
        sim = RtlSimulator(sync_rtl())
        sim.step(reset=1)
        pulses = []
        for level in [0, 1, 1, 0, 0, 0]:
            sim.step(reset=0, frame_strobe=level, pix_valid=0,
                     line_strobe=0)
            pulses.append(sim.peek_outputs()["frame_start"])
        assert sum(pulses) == 1


class TestHistogramRtl:
    def test_count_latch_clear(self):
        sim = RtlSimulator(histogram_rtl(10))
        sim.step(reset=1)
        for pix in (3, 10, 250):
            sim.step(reset=0, pix=pix, pix_valid=1, frame_start=0)
        sim.step(reset=0, pix=0, pix_valid=0, frame_start=1)
        sim.step(reset=0, pix=0, pix_valid=0, frame_start=0)
        outs = sim.peek_outputs()
        assert outs["hist0"] == 2 and outs["hist7"] == 1
        assert outs["hist_valid"] == 0  # pulse has passed


class TestThresholdRtl:
    def test_mean_matches_osss_math(self):
        sim = RtlSimulator(threshold_rtl(10, 256))
        sim.step(reset=1)
        hist = {f"hist{i}": 32 for i in range(8)}
        sim.step(reset=0, hist_valid=1, **hist)
        for _ in range(12):
            sim.step(reset=0, hist_valid=0, **hist)
        assert sim.peek_outputs()["mean"] == 128


class TestParamsRtl:
    def run_update(self, sim, mean):
        sim.step(reset=0, mean=mean, stats_valid=1)
        for _ in range(60):
            sim.step(reset=0, mean=mean, stats_valid=0)
            if sim.peek_outputs()["params_valid"]:
                break
        return sim.peek_outputs()

    def test_dark_raises_exposure(self):
        sim = RtlSimulator(params_rtl(128))
        sim.step(reset=1)
        outs = self.run_update(sim, 40)
        assert outs["exposure"] > 128

    def test_gain_iir_step(self):
        sim = RtlSimulator(params_rtl(128))
        sim.step(reset=1)
        outs = self.run_update(sim, 64)
        assert outs["gain"] == 80  # (3*64 + 128) >> 2

    def test_matches_osss_params_result(self):
        """Same algorithm: final values agree with the OSSS unit."""
        from repro.expocu import ExpoParamsUnit
        from tests.conftest import Bench

        bench = Bench(lambda c, r: ExpoParamsUnit[128]("p", c, r))
        bench.cycle(mean=40, stats_valid=1)
        for _ in range(70):
            bench.cycle(mean=40, stats_valid=0)
            if bench.out("params_valid"):
                break
        sim = RtlSimulator(params_rtl(128))
        sim.step(reset=1)
        outs = self.run_update(sim, 40)
        assert outs["exposure"] == bench.out("exposure")
        assert outs["gain"] == bench.out("gain")


class TestI2cRtl:
    def test_produces_clock_activity(self):
        sim = RtlSimulator(i2c_rtl(2))
        sim.step(reset=1)
        sim.step(reset=0, start=1, dev_addr=0x21, reg_addr=0x10,
                 data=0x55, sda_in=0)
        edges = 0
        prev = 1
        for _ in range(400):
            sim.step(reset=0, start=0, dev_addr=0x21, reg_addr=0x10,
                     data=0x55, sda_in=0)
            scl = sim.peek_outputs()["scl"]
            edges += int(scl != prev)
            prev = scl
            if sim.peek_outputs()["done"]:
                break
        assert sim.peek_outputs()["done"] == 1
        assert edges >= 54  # 27 bits clocked

    def test_slave_decodes_baseline_master(self):
        """Protocol compatibility with the camera model's slave."""
        from repro.eval.cosim import RtlCosimModule
        from repro.expocu import CameraModel
        from repro.hdl import Clock, Module, NS, Signal, Simulator
        from repro.types import Bit
        from repro.types.spec import bit

        top = Module("top")
        top.clk = Clock("clk", 10 * NS)
        top.rst = Signal("rst", bit(), Bit(1))
        top.cam = CameraModel("cam", top.clk, top.rst)
        top.i2c = RtlCosimModule("i2c", i2c_rtl(2), top.clk, top.rst)
        top.cam.port("scl").bind(top.i2c.port("scl"))
        top.cam.port("sda_master").bind(top.i2c.port("sda_out"))
        top.cam.port("sda_oe").bind(top.i2c.port("sda_oe"))
        top.i2c.port("sda_in").bind(top.cam.port("sda_in"))
        sim = Simulator(top)
        sim.run(20 * NS)
        top.rst.write(0)
        top.i2c.port("dev_addr").drive(0x21)
        top.i2c.port("reg_addr").drive(0x10)
        top.i2c.port("data").drive(0x42)
        top.i2c.port("start").drive(1)
        sim.run_until(lambda: int(top.i2c.port("busy").read()),
                      300 * 10 * NS)
        top.i2c.port("start").drive(0)
        assert sim.run_until(lambda: int(top.i2c.port("done").read()),
                             5000 * 10 * NS)
        assert top.cam.exposure == 0x42


class TestVhdlIp:
    def test_ip_circuit_multiplies(self):
        circuit = multiplier_ip_circuit(16, 8)
        sim = GateSimulator(circuit)
        sim.drive(a=1234, b=200)
        sim._settle_all()
        assert sim.peek_outputs()["p"] == 246800

    def test_linked_top_simulates(self):
        circuit = map_module(expocu_rtl())
        assert circuit.blackboxes, "top must use IP black boxes"
        link(circuit, ip_library())
        optimize(circuit)
        circuit.validate()
        sim = GateSimulator(circuit)
        sim.step(reset=1)
        sim.step(reset=0, pix=0, pix_valid=0, line_strobe=0,
                 frame_strobe=0, sda_in=1)
        assert sim.peek_outputs()["scl"] == 1  # idle bus
