"""The serve job model: spec validation, fingerprints, rendering."""

import json

import pytest

from repro.dse.evaluate import POINT_ERRORS
from repro.serve.jobs import (
    JOB_KINDS,
    JOB_PARAMS,
    JobCancelled,
    JobError,
    make_spec,
    render_result,
    run_job,
)


class TestMakeSpec:
    def test_defaults_mirror_the_one_shot_cli(self):
        assert make_spec("build").params == {"flow": "both"}
        assert make_spec("analyze").params == {}
        assert make_spec("inject").params == {
            "flow": "rtl", "faults": 50, "seed": 1, "hardening": "none",
            "backend": "event", "collapse": False,
        }
        dse = make_spec("dse").params
        assert dse["space"] == "tiny" and dse["side"] == 4
        assert dse["strategy"] == "factorial" and dse["fraction"] == 1
        assert dse["faults"] == 24 and dse["campaign_seed"] == 2004
        assert dse["backend"] == "bitparallel"

    def test_every_kind_has_a_schema(self):
        assert set(JOB_KINDS) == {"build", "analyze", "inject", "dse"}
        assert set(JOB_PARAMS) == set(JOB_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError, match="unknown job kind"):
            make_spec("compile")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(JobError, match="unknown parameter"):
            make_spec("build", {"flows": "osss"})

    def test_bad_choice_rejected(self):
        with pytest.raises(JobError, match="build.flow must be one of"):
            make_spec("build", {"flow": "verilog"})

    def test_bad_integer_rejected(self):
        with pytest.raises(JobError, match="inject.faults must be"):
            make_spec("inject", {"faults": "many"})
        with pytest.raises(JobError, match="inject.faults must be"):
            make_spec("inject", {"faults": True})  # bool is not an int

    def test_bad_boolean_rejected(self):
        with pytest.raises(JobError, match="inject.collapse must be"):
            make_spec("inject", {"collapse": 1})


class TestFingerprint:
    def test_stable_across_param_order_and_defaults(self):
        explicit = make_spec("inject", {"seed": 1, "flow": "rtl"})
        defaulted = make_spec("inject", {})
        assert explicit.fingerprint() == defaulted.fingerprint()

    def test_sensitive_to_params_and_kind(self):
        base = make_spec("inject").fingerprint()
        assert make_spec("inject", {"seed": 2}).fingerprint() != base
        assert make_spec("build").fingerprint() != base

    def test_as_dict_round_trips_through_make_spec(self):
        spec = make_spec("dse", {"faults": 8})
        clone = make_spec(**spec.as_dict())
        assert clone.fingerprint() == spec.fingerprint()


class TestRendering:
    def test_render_is_the_cli_json_convention(self):
        payload = {"flows": [{"flow": "osss"}]}
        assert render_result("build", payload) == \
            json.dumps(payload, indent=2) + "\n"

    def test_cancellation_is_not_a_recoverable_point_error(self):
        # A cancelled dse job must unwind the whole exploration, not be
        # recorded as one failed design point and carry on.
        assert not issubclass(JobCancelled, POINT_ERRORS)


class TestRunJob:
    def test_build_job_is_deterministic_and_store_backed(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "cache")
        spec = make_spec("build", {"flow": "osss"})
        cold = run_job(spec, store=store)
        assert [f["flow"] for f in cold["flows"]] == ["osss"]
        assert store.counter_totals()["miss"] > 0
        warm = run_job(spec, store=store)
        assert render_result("build", warm) == render_result("build", cold)
        assert store.counter_totals()["hit"] > 0

    def test_guard_sees_every_stage(self, tmp_path):
        stages = []
        run_job(make_spec("build", {"flow": "osss"}), guard=stages.append)
        assert "synthesize" in stages and "opt" in stages

    def test_guard_abort_raises_out_of_the_job(self):
        class Abort(RuntimeError):
            pass

        def guard(stage):
            if stage == "techmap":
                raise Abort(stage)

        with pytest.raises(Abort):
            run_job(make_spec("build", {"flow": "osss"}), guard=guard)
