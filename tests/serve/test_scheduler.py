"""Scheduler behaviour: dedup, lifecycle, cancel, drain, events.

These tests run the scheduler in thread mode (``workers=1``) so the
full submit -> run -> finish path executes in-process and the store
counters can prove the dedup satellite: two identical submissions do
the expensive stage work exactly once, and both callers receive
byte-identical renderings.
"""

import time

import pytest

from repro.serve.jobs import render_result
from repro.serve.scheduler import Scheduler, SchedulerClosed
from repro.store import ArtifactStore


def wait_for(predicate, timeout_s=30.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    pytest.fail("condition not reached in time")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestDedup:
    def test_identical_submissions_coalesce_to_one_computation(self, store):
        """Satellite: concurrent identical jobs -> one synthesize run."""
        scheduler = Scheduler(store, workers=1)
        try:
            # Submit twice before the executor starts: both are provably
            # concurrent, so the second must coalesce onto the first.
            first, deduped_a = scheduler.submit("build", {"flow": "osss"})
            second, deduped_b = scheduler.submit("build", {"flow": "osss"})
            assert not deduped_a and deduped_b
            assert first.id == second.id
            assert first.dedup_count == 1
            assert scheduler.counters["deduped"] == 1

            scheduler.start()
            job = scheduler.wait_result(first.id, wait_s=120.0)
            assert job.state == "done"
            # One job ran, so every stage was computed exactly once.
            assert store.counters["miss"]["synthesize"] == 1
            # Both clients read the same payload -> identical bytes.
            text_a = render_result(job.spec.kind, job.payload)
            text_b = render_result(job.spec.kind, job.payload)
            assert text_a == text_b
        finally:
            scheduler.stop()

    def test_resubmit_after_completion_is_a_new_warm_job(self, store):
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            first, _ = scheduler.submit("build", {"flow": "osss"})
            done = scheduler.wait_result(first.id, wait_s=120.0)
            assert done.state == "done"
            misses = store.counters["miss"]["synthesize"]

            second, deduped = scheduler.submit("build", {"flow": "osss"})
            assert not deduped and second.id != first.id
            redone = scheduler.wait_result(second.id, wait_s=120.0)
            assert redone.state == "done"
            # Warm from the store: no new stage computation...
            assert store.counters["miss"]["synthesize"] == misses
            # ...and byte-identical output to the first run.
            assert render_result("build", redone.payload) == \
                render_result("build", done.payload)
        finally:
            scheduler.stop()

    def test_force_bypasses_dedup(self, store):
        scheduler = Scheduler(store, workers=1)
        try:
            first, _ = scheduler.submit("build", {"flow": "osss"})
            forced, deduped = scheduler.submit("build", {"flow": "osss"},
                                               force=True)
            assert not deduped and forced.id != first.id
        finally:
            scheduler.stop()


class TestLifecycle:
    def test_job_runs_to_done_with_events(self, store):
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            job, _ = scheduler.submit("build", {"flow": "osss"})
            done = scheduler.wait_result(job.id, wait_s=120.0)
            assert done.state == "done"
            kinds = [event["kind"] for event in done.events]
            assert kinds[0] == "queued"
            assert "running" in kinds
            assert kinds[-1] == "done"
            # Tracer spans streamed into the event log as progress.
            assert any(event["kind"] == "span" for event in done.events)
            doc = scheduler.events_since(job.id, since=0, wait_s=0.0)
            assert doc["state"] == "done"
            assert doc["events"] == done.events
            assert doc["dropped"] == 0
        finally:
            scheduler.stop()

    def test_failed_job_reports_the_exception(self, store, monkeypatch):
        def explode(spec, **kwargs):
            raise ValueError("synthetic failure")

        monkeypatch.setattr("repro.serve.scheduler.run_job", explode)
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            job, _ = scheduler.submit("build", {"flow": "osss"})
            done = scheduler.wait_result(job.id, wait_s=30.0)
            assert done.state == "failed"
            assert "ValueError: synthetic failure" in done.error
            assert scheduler.counters["failed"] == 1
        finally:
            scheduler.stop()

    def test_unknown_job_raises_key_error(self, store):
        scheduler = Scheduler(store, workers=0)
        with pytest.raises(KeyError):
            scheduler.get("j999999")
        with pytest.raises(KeyError):
            scheduler.cancel("j999999")

    def test_stats_shape(self, store):
        scheduler = Scheduler(store, workers=1)
        try:
            scheduler.submit("build", {"flow": "osss"})
            doc = scheduler.stats()
            assert doc["workers"] == 1
            assert doc["counters"]["submitted"] == 1
            assert doc["jobs"] == {"queued": 1}
            assert doc["store"] == store.counter_totals()
        finally:
            scheduler.stop()


class TestCancel:
    def test_cancel_queued_job(self, store):
        scheduler = Scheduler(store, workers=1)  # never started: stays queued
        try:
            job, _ = scheduler.submit("build", {"flow": "osss"})
            assert scheduler.cancel(job.id)
            assert job.state == "cancelled"
            assert scheduler.counters["cancelled"] == 1
            assert not scheduler.cancel(job.id)  # already terminal
            # The fingerprint slot is free again.
            again, deduped = scheduler.submit("build", {"flow": "osss"})
            assert not deduped and again.id != job.id
        finally:
            scheduler.stop()

    def test_cancel_running_job_at_stage_boundary(self, store, monkeypatch):
        entered = []

        def crawl(spec, store=None, tracer=None, guard=None,
                  use_journal=False):
            entered.append(spec.kind)
            for _ in range(600):  # ~30s unless the guard aborts us
                guard("synthesize")
                time.sleep(0.05)
            return {"flows": []}

        monkeypatch.setattr("repro.serve.scheduler.run_job", crawl)
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            job, _ = scheduler.submit("build", {"flow": "osss"})
            wait_for(lambda: entered)
            assert scheduler.cancel(job.id)
            done = scheduler.wait_result(job.id, wait_s=10.0)
            assert done.state == "cancelled"
            assert "cancelled" in done.error
        finally:
            scheduler.stop()

    def test_job_timeout_cancels_at_stage_boundary(self, store, monkeypatch):
        def crawl(spec, store=None, tracer=None, guard=None,
                  use_journal=False):
            for _ in range(600):
                guard("synthesize")
                time.sleep(0.05)
            return {"flows": []}

        monkeypatch.setattr("repro.serve.scheduler.run_job", crawl)
        scheduler = Scheduler(store, workers=1, job_timeout=0.2)
        scheduler.start()
        try:
            job, _ = scheduler.submit("build", {"flow": "osss"})
            done = scheduler.wait_result(job.id, wait_s=30.0)
            assert done.state == "cancelled"
            assert "deadline" in done.error
        finally:
            scheduler.stop()


class TestDrain:
    def test_draining_refuses_new_submissions(self, store):
        scheduler = Scheduler(store, workers=1)
        try:
            scheduler.begin_drain()
            with pytest.raises(SchedulerClosed):
                scheduler.submit("build", {"flow": "osss"})
        finally:
            scheduler.stop()

    def test_drain_waits_for_inflight_then_cancels_leftovers(
            self, store, monkeypatch):
        def crawl(spec, store=None, tracer=None, guard=None,
                  use_journal=False):
            for _ in range(600):
                guard("synthesize")
                time.sleep(0.05)
            return {"flows": []}

        monkeypatch.setattr("repro.serve.scheduler.run_job", crawl)
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            job, _ = scheduler.submit("build", {"flow": "osss"})
            wait_for(lambda: job.state == "running")
            cancelled = scheduler.drain(grace_s=0.2)
            assert cancelled == 1
            done = scheduler.wait_result(job.id, wait_s=10.0)
            assert done.state == "cancelled"
        finally:
            scheduler.stop()

    def test_drain_with_no_inflight_is_clean(self, store):
        scheduler = Scheduler(store, workers=1)
        scheduler.start()
        try:
            assert scheduler.drain(grace_s=0.1) == 0
        finally:
            scheduler.stop()
