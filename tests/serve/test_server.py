"""The HTTP surface of ``repro serve`` plus end-to-end identity checks.

A real server runs on a Unix socket for the whole module; jobs execute
in thread mode against a shared :class:`ArtifactStore` so the tests
can assert the hard invariant of the subsystem: bytes fetched from the
server are identical to what the one-shot CLI prints, and concurrent
identical submissions pay for the stage work exactly once.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.serve import Scheduler, ServeClient, ServeError, build_server
from repro.store import ArtifactStore


REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One live server on a Unix socket, thread-mode, shared store."""
    root = tmp_path_factory.mktemp("serve")
    store = ArtifactStore(root / "cache")
    scheduler = Scheduler(store, workers=1)
    scheduler.start()
    socket_path = str(root / "repro.sock")
    server = build_server(scheduler, socket_path=socket_path)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield SimpleNamespace(
            store=store,
            scheduler=scheduler,
            client=ServeClient(socket_path=socket_path),
            socket_path=socket_path,
            cache_dir=str(root / "cache"),
        )
    finally:
        server.shutdown()
        server.server_close()
        scheduler.stop()


class TestEndpoints:
    def test_health(self, served):
        doc = served.client.health()
        assert doc == {"ok": True, "draining": False}

    def test_stats_include_store_and_uptime(self, served):
        doc = served.client.stats()
        assert doc["mode"].startswith("thread")
        assert "uptime_s" in doc and "store" in doc

    def test_submit_rejects_unknown_kind(self, served):
        with pytest.raises(ServeError) as excinfo:
            served.client.submit("compile")
        assert excinfo.value.status == 400

    def test_submit_rejects_unknown_parameter(self, served):
        with pytest.raises(ServeError) as excinfo:
            served.client.submit("build", {"flows": "osss"})
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, served):
        with pytest.raises(ServeError) as excinfo:
            served.client.job("j999999")
        assert excinfo.value.status == 404

    def test_unknown_path_is_404(self, served):
        with pytest.raises(ServeError) as excinfo:
            served.client._decode(*served.client._request("GET", "/nope"))
        assert excinfo.value.status == 404

    def test_jobs_listing_grows(self, served):
        before = len(served.client.jobs())
        served.client.submit("build", {"flow": "osss"})
        assert len(served.client.jobs()) >= before


class TestByteIdentity:
    """Server results must equal the one-shot CLI output, byte for byte."""

    def test_build_matches_cli(self, served, capsys):
        text = served.client.run("build", {"flow": "osss"})
        assert main(["build", "--json", "--flow", "osss",
                     "--cache-dir", served.cache_dir]) == 0
        assert text == capsys.readouterr().out

    def test_analyze_matches_cli(self, served, capsys):
        text = served.client.run("analyze")
        assert main(["analyze", "--format", "json",
                     "--cache-dir", served.cache_dir]) == 0
        assert text == capsys.readouterr().out

    def test_inject_matches_cli(self, served, capsys, tmp_path):
        text = served.client.run("inject", {"faults": 8})
        assert main(["inject", "--format", "json", "--faults", "8",
                     "--cache-dir", served.cache_dir,
                     "--output", str(tmp_path / "report.json")]) == 0
        assert text == capsys.readouterr().out

    def test_dse_matches_cli(self, served, capsys, tmp_path):
        text = served.client.run("dse", {"faults": 8})
        assert main(["dse", "--format", "json", "--faults", "8",
                     "--cache-dir", served.cache_dir,
                     "--output", str(tmp_path / "dse.json")]) == 0
        assert text == capsys.readouterr().out


class TestDedupOverHttp:
    def test_concurrent_identical_clients_share_one_computation(self, served):
        """Satellite: two clients, one testability analysis, same bytes."""
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def submit(name):
            try:
                barrier.wait()
                client = ServeClient(socket_path=served.socket_path)
                results[name] = client.run("analyze", timeout_s=300.0)
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(n,))
                   for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Byte-identical responses to both clients...
        assert results["a"] == results["b"]
        json.loads(results["a"])  # ...and well-formed JSON.
        # ...from exactly one testability computation, whether the
        # submissions coalesced or the second hit the warm store.
        assert served.store.counters["miss"]["testability"] == 1

    def test_dedup_counter_visible_in_stats(self, served):
        first = served.client.submit("inject", {"faults": 9})
        second = served.client.submit("inject", {"faults": 9})
        if second["id"] == first["id"]:  # coalesced while still active
            assert second["deduped"]
            assert served.client.stats()["counters"]["deduped"] >= 1
        served.client.result_text(first["id"], timeout_s=300.0)


class TestCancelOverHttp:
    def test_cancel_queued_job(self, served):
        # The single worker is busy with a forced long-ish job, so the
        # second forced submission is deterministically queued.
        blocker = served.client.submit("inject", {"faults": 40, "seed": 3},
                                       force=True)
        victim = served.client.submit("inject", {"faults": 40, "seed": 4},
                                      force=True)
        doc = served.client.cancel(victim["id"])
        assert doc["cancelled"]
        assert doc["job"]["state"] == "cancelled"
        with pytest.raises(ServeError) as excinfo:
            served.client.result_text(victim["id"], timeout_s=10.0)
        assert excinfo.value.status == 409
        served.client.result_text(blocker["id"], timeout_s=300.0)

    def test_cancel_finished_job_reports_no_change(self, served):
        job = served.client.submit("build", {"flow": "osss"})
        served.client.result_text(job["id"], timeout_s=300.0)
        doc = served.client.cancel(job["id"])
        assert not doc["cancelled"]


class TestDraining:
    def test_draining_server_refuses_submissions(self, tmp_path):
        # Draining is sticky, so this test gets its own server.
        scheduler = Scheduler(None, workers=1)
        scheduler.start()
        socket_path = str(tmp_path / "drain.sock")
        server = build_server(scheduler, socket_path=socket_path)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        client = ServeClient(socket_path=socket_path)
        try:
            scheduler.begin_drain()
            server.draining = True
            assert client.health()["draining"]
            with pytest.raises(ServeError) as excinfo:
                client.submit("build", {"flow": "osss"})
            assert excinfo.value.status == 503
        finally:
            server.shutdown()
            server.server_close()
            scheduler.stop()


class TestSignalShutdown:
    """Satellite: SIGTERM drains in-flight work and exits 0."""

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_daemon_exits_cleanly_on_signal(self, tmp_path, signum):
        socket_path = str(tmp_path / "daemon.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", socket_path,
             "--cache-dir", str(tmp_path / "cache"),
             "--workers", "1", "--grace", "5"],
            cwd=str(tmp_path), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            deadline = time.monotonic() + 30.0
            while not os.path.exists(socket_path):
                assert proc.poll() is None, proc.stdout.read()
                assert time.monotonic() < deadline, "socket never appeared"
                time.sleep(0.05)
            client = ServeClient(socket_path=socket_path)
            assert client.health()["ok"]
            job = client.submit("build", {"flow": "osss"})

            proc.send_signal(signum)
            # While draining the server may still answer (refusing new
            # work) or may already have closed the socket.
            try:
                with pytest.raises(ServeError) as excinfo:
                    client.submit("build", {"flow": "vhdl"})
                assert excinfo.value.status == 503
            except (ConnectionError, FileNotFoundError, OSError):
                pass

            out, _ = proc.communicate(timeout=60.0)
            assert proc.returncode == 0, out
            assert "listening on" in out
            assert "drained and stopped" in out
            assert not os.path.exists(socket_path)
            assert job["id"].startswith("j")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
